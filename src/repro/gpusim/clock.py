"""Simulated time base for a device.

The simulator never reads wall-clock time: every kernel launch, memory
transfer and allocation advances a :class:`SimClock` by a model-computed
duration.  Experiment harnesses read the clock to report "elapsed seconds"
exactly the way the paper reports nvprof timings.

The clock also supports nested named sections (:meth:`SimClock.section`) so
the per-step breakdowns of Figure 5 can be collected without threading a
profiler handle through every call site.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["SimClock"]


@dataclass
class SimClock:
    """A monotonically advancing simulated clock with named sections.

    The clock can optionally *trace*: between :meth:`begin_trace` and
    :meth:`end_trace` every advance is also appended to a list of
    ``(section, seconds, dynamic)`` tuples.  Launch-graph capture
    (:mod:`repro.gpusim.graph`) uses this to record and validate the exact
    charge sequence of a steady-state iteration; tracing costs one ``is not
    None`` check per advance when off, and never changes the float
    accumulation itself.
    """

    now: float = 0.0
    section_totals: dict[str, float] = field(default_factory=dict)
    _stack: list[str] = field(default_factory=list, repr=False)
    _trace: "list[tuple[str | None, float, bool]] | None" = field(
        default=None, repr=False
    )

    def advance(self, seconds: float) -> float:
        """Advance simulated time by *seconds* (must be non-negative).

        The duration is attributed to the innermost active section, if any.
        Returns the new simulated time.
        """
        if seconds < 0.0:
            raise ValueError(f"cannot advance clock by negative time {seconds}")
        self.now += seconds
        label = None
        if self._stack:
            label = self._stack[-1]
            self.section_totals[label] = (
                self.section_totals.get(label, 0.0) + seconds
            )
        if self._trace is not None:
            self._trace.append((label, seconds, False))
        return self.now

    def advance_dynamic(self, seconds: float) -> float:
        """:meth:`advance`, but traced as a *dynamic* (data-dependent) charge.

        Identical float accumulation; the only difference is the marker in
        the capture trace, which tells graph validation that this slot's
        duration legitimately varies between iterations (e.g. the
        pbest-position copy, whose size is the number of improved
        particles).
        """
        if seconds < 0.0:
            raise ValueError(f"cannot advance clock by negative time {seconds}")
        self.now += seconds
        label = None
        if self._stack:
            label = self._stack[-1]
            self.section_totals[label] = (
                self.section_totals.get(label, 0.0) + seconds
            )
        if self._trace is not None:
            self._trace.append((label, seconds, True))
        return self.now

    def begin_trace(self) -> None:
        """Start recording every advance (see class docstring)."""
        self._trace = []

    def end_trace(self) -> list[tuple[str | None, float, bool]]:
        """Stop recording and return the captured charge sequence."""
        trace, self._trace = self._trace, None
        return trace if trace is not None else []

    @property
    def current_section(self) -> str | None:
        """Label of the innermost active section, or ``None`` outside any."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def section(self, label: str) -> Iterator[None]:
        """Attribute clock advances inside the ``with`` body to *label*.

        Sections nest; time is charged to the innermost label only, so a
        parent section's total excludes its children (the harness sums them
        explicitly when it wants inclusive totals).
        """
        self._stack.append(label)
        try:
            yield
        finally:
            popped = self._stack.pop()
            assert popped == label, "section stack corrupted"

    def reset(self) -> None:
        """Zero the clock and drop all section totals."""
        self.now = 0.0
        self.section_totals.clear()
        self._stack.clear()
        self._trace = None

    def total(self, label: str) -> float:
        """Total seconds attributed to *label* (0.0 if never entered)."""
        return self.section_totals.get(label, 0.0)
