"""Simulated GPU device model.

A :class:`DeviceSpec` captures the architectural parameters that FastPSO's
performance depends on — SM count, warp width, memory bandwidth, shared
memory size, tensor cores — and a :class:`Device` is a runtime instance that
owns global memory, an allocator, a simulated clock and a profiler.

The specs for the presets come from NVIDIA's published datasheets; the paper
evaluates on a 16 GB Tesla V100, which is the default preset
(:func:`tesla_v100`).  *Effective* (as opposed to peak) throughput factors
live in :mod:`repro.gpusim.costmodel`, not here: the spec describes the
hardware, the cost model describes how well a kernel exploits it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

from repro.errors import ConfigurationError, InvalidLaunchError
from repro.utils.units import GIB

__all__ = [
    "DeviceSpec",
    "Device",
    "tesla_v100",
    "tesla_a100",
    "laptop_gpu",
    "get_preset",
    "PRESETS",
]


@dataclass(frozen=True)
class DeviceSpec:
    """Architectural description of a simulated CUDA device.

    All byte quantities are in bytes, frequencies in GHz, bandwidths in
    bytes/second.  ``max_resident_threads`` and friends are *per device*
    derived properties.
    """

    name: str
    sm_count: int
    cores_per_sm: int
    clock_ghz: float
    dram_bandwidth: float  # bytes/s, peak
    global_mem_bytes: int
    shared_mem_per_sm: int
    shared_mem_per_block_max: int
    registers_per_sm: int
    max_threads_per_sm: int
    max_threads_per_block: int
    max_blocks_per_sm: int
    warp_size: int = 32
    tensor_cores_per_sm: int = 8
    # One tensor core retires one 4x4x4 FMA matrix op per cycle on Volta;
    # we express it as fp16 FLOP/s per tensor core at the spec clock.
    tensor_core_flops_per_cycle: int = 128
    pcie_bandwidth: float = 12.0e9  # bytes/s, effective PCIe 3.0 x16
    kernel_launch_overhead_s: float = 4.0e-6
    malloc_overhead_s: float = 4.5e-6
    free_overhead_s: float = 2.5e-6
    dram_latency_s: float = 450e-9
    # -- memory hierarchy (cost model v2) -----------------------------------
    # All default to 0, which disables the L1/L2 hit-rate model and makes
    # kernel_cost reproduce the flat v1 roofline bit for bit — the in-code
    # presets stay flat so existing goldens hold; hierarchy-enabled specs
    # live in the repro.devices catalog machine files.
    l1_cache_per_sm: int = 0  # bytes of L1/tex cache per SM
    l2_cache_bytes: int = 0  # device-wide L2 capacity in bytes
    l2_bandwidth: float = 0.0  # bytes/s, peak L2 read bandwidth
    # Hardware allocation granularities consumed by the occupancy model.
    register_alloc_unit: int = 256
    smem_alloc_unit: int = 256

    def __post_init__(self) -> None:
        # ConfigurationError (which is a ReproError, not a ValueError) per
        # the construction-time validation contract shared with Budget /
        # Problem: a bad spec fails with one friendly message up front.
        if self.sm_count <= 0 or self.cores_per_sm <= 0:
            raise ConfigurationError(
                "device must have positive SM and core counts, got "
                f"sm_count={self.sm_count}, cores_per_sm={self.cores_per_sm}"
            )
        if self.warp_size <= 0:
            raise ConfigurationError(
                f"warp_size must be positive, got {self.warp_size}"
            )
        if self.max_threads_per_block % self.warp_size:
            raise ConfigurationError(
                "max_threads_per_block must be a positive multiple of "
                f"warp_size, got {self.max_threads_per_block} with "
                f"warp_size={self.warp_size}"
            )
        if self.dram_bandwidth <= 0 or self.clock_ghz <= 0:
            raise ConfigurationError(
                "bandwidth and clock must be positive, got "
                f"dram_bandwidth={self.dram_bandwidth}, clock_ghz={self.clock_ghz}"
            )
        if self.global_mem_bytes <= 0:
            raise ConfigurationError(
                f"global_mem_bytes must be positive, got {self.global_mem_bytes}"
            )
        if min(self.l1_cache_per_sm, self.l2_cache_bytes) < 0 or self.l2_bandwidth < 0:
            raise ConfigurationError("cache capacities and bandwidth must be >= 0")
        if self.register_alloc_unit <= 0 or self.smem_alloc_unit <= 0:
            raise ConfigurationError("allocation granularities must be positive")

    def __hash__(self) -> int:
        # Device specs key the memoized occupancy/cost caches; hash the
        # field tuple once per instance instead of on every lookup.
        try:
            return self._hash  # type: ignore[attr-defined]
        except AttributeError:
            h = hash(tuple(getattr(self, f.name) for f in fields(self)))
            object.__setattr__(self, "_hash", h)
            return h

    # -- derived capacities -------------------------------------------------
    @property
    def total_cores(self) -> int:
        """FP32 lanes across the whole device."""
        return self.sm_count * self.cores_per_sm

    @property
    def max_resident_threads(self) -> int:
        """Hardware limit on simultaneously resident threads."""
        return self.sm_count * self.max_threads_per_sm

    @property
    def max_warps_per_sm(self) -> int:
        return self.max_threads_per_sm // self.warp_size

    @property
    def fp32_flops(self) -> float:
        """Peak FP32 throughput in FLOP/s (FMA counted as 2)."""
        return self.total_cores * self.clock_ghz * 1e9 * 2.0

    @property
    def has_memory_hierarchy(self) -> bool:
        """Whether this spec enables the L1/L2 hit-rate model (v2)."""
        return self.l2_cache_bytes > 0 and self.l2_bandwidth > 0

    @property
    def tensor_flops(self) -> float:
        """Peak mixed-precision tensor-core throughput in FLOP/s."""
        return (
            self.sm_count
            * self.tensor_cores_per_sm
            * self.tensor_core_flops_per_cycle
            * self.clock_ghz
            * 1e9
        )

    def validate_block(self, threads_per_block: int, shared_mem: int = 0) -> None:
        """Raise :class:`InvalidLaunchError` if a block shape is illegal."""
        if threads_per_block <= 0:
            raise InvalidLaunchError(
                f"block must have at least one thread, got {threads_per_block}"
            )
        if threads_per_block > self.max_threads_per_block:
            raise InvalidLaunchError(
                f"{threads_per_block} threads/block exceeds device limit "
                f"{self.max_threads_per_block}"
            )
        if shared_mem < 0 or shared_mem > self.shared_mem_per_block_max:
            raise InvalidLaunchError(
                f"{shared_mem} bytes of shared memory per block exceeds limit "
                f"{self.shared_mem_per_block_max}"
            )

    def with_overrides(self, **kwargs: object) -> "DeviceSpec":
        """Return a copy of this spec with selected fields replaced."""
        return replace(self, **kwargs)  # type: ignore[arg-type]


def tesla_v100() -> DeviceSpec:
    """The paper's testbed: Tesla V100 SXM2 16 GB (Volta, GV100)."""
    return DeviceSpec(
        name="Tesla V100-16GB",
        sm_count=80,
        cores_per_sm=64,
        clock_ghz=1.53,
        dram_bandwidth=900.0e9,
        global_mem_bytes=16 * GIB,
        shared_mem_per_sm=96 * 1024,
        shared_mem_per_block_max=96 * 1024,
        registers_per_sm=65536,
        max_threads_per_sm=2048,
        max_threads_per_block=1024,
        max_blocks_per_sm=32,
        tensor_cores_per_sm=8,
    )


def tesla_a100() -> DeviceSpec:
    """A100 SXM4 40 GB (Ampere), for scaling studies beyond the paper."""
    return DeviceSpec(
        name="Tesla A100-40GB",
        sm_count=108,
        cores_per_sm=64,
        clock_ghz=1.41,
        dram_bandwidth=1555.0e9,
        global_mem_bytes=40 * GIB,
        shared_mem_per_sm=164 * 1024,
        shared_mem_per_block_max=163 * 1024,
        registers_per_sm=65536,
        max_threads_per_sm=2048,
        max_threads_per_block=1024,
        max_blocks_per_sm=32,
        tensor_cores_per_sm=4,
        tensor_core_flops_per_cycle=512,
    )


def laptop_gpu() -> DeviceSpec:
    """A small mobile part (GTX 1650-class) to exercise low-resource paths."""
    return DeviceSpec(
        name="Laptop-GTX1650",
        sm_count=14,
        cores_per_sm=64,
        clock_ghz=1.49,
        dram_bandwidth=128.0e9,
        global_mem_bytes=4 * GIB,
        shared_mem_per_sm=64 * 1024,
        shared_mem_per_block_max=48 * 1024,
        registers_per_sm=65536,
        max_threads_per_sm=1024,
        max_threads_per_block=1024,
        max_blocks_per_sm=16,
        tensor_cores_per_sm=0,
    )


PRESETS = {
    "v100": tesla_v100,
    "a100": tesla_a100,
    "laptop": laptop_gpu,
}


def get_preset(name: str) -> DeviceSpec:
    """Look up a device spec by short name.

    Thin shim over :func:`repro.devices.resolve_device`: the in-code presets
    (``v100``, ``a100``, ``laptop``) resolve to their flat specs exactly as
    before, and every entry of the :mod:`repro.devices` machine-file catalog
    (``h100``, ``cpu-xeon``, hierarchy-enabled variants, …) is reachable too.
    Unknown names raise :class:`repro.errors.UnknownDeviceError` — a
    ``ValueError`` subclass, so historical ``except ValueError`` call sites
    keep working — with a did-you-mean suggestion.
    """
    from repro.devices import resolve_device  # local: devices imports us

    return resolve_device(name)


@dataclass
class Device:
    """A runtime device: spec + global memory + clock + profiler.

    Constructed via :func:`repro.gpusim.make_device` in normal use.  The
    pieces are attached lazily by that factory to avoid circular imports
    between the memory/profiler modules and this one.
    """

    spec: DeviceSpec
    memory: object = field(default=None, repr=False)
    allocator: object = field(default=None, repr=False)
    profiler: object = field(default=None, repr=False)
    clock: object = field(default=None, repr=False)

    @property
    def name(self) -> str:
        return self.spec.name
