"""Simulated device global memory and host<->device transfers.

Device buffers are backed by host NumPy arrays (the *semantics*), while the
capacity accounting and transfer timing reproduce the *behaviour* of a real
16 GB card: allocations fail with :class:`DeviceOutOfMemoryError` once the
modelled capacity is exhausted, and every H2D/D2H copy advances the device
clock by ``bytes / pcie_bandwidth`` plus a fixed submission latency.

Buffer lifetime is checked: touching a freed buffer raises
:class:`MemoryAccessError`, which catches the class of use-after-free bug
that the paper's caching allocator could otherwise mask.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.errors import DeviceOutOfMemoryError, MemoryAccessError
from repro.gpusim.clock import SimClock
from repro.gpusim.device import DeviceSpec

__all__ = ["GlobalMemory", "DeviceBuffer", "TransferEngine"]

_buffer_ids = itertools.count(1)

# Fixed cost to enqueue a cudaMemcpy, independent of size.
_TRANSFER_SUBMIT_OVERHEAD_S = 6.0e-6


@dataclass
class GlobalMemory:
    """Capacity accounting for a device's global (DRAM) memory."""

    total_bytes: int
    used_bytes: int = 0
    high_water_bytes: int = 0

    @property
    def free_bytes(self) -> int:
        return self.total_bytes - self.used_bytes

    @property
    def pressure(self) -> float:
        """Occupied fraction of capacity (0.0 empty .. 1.0 full).

        The admission-control layer samples this before placing work, so a
        fleet near capacity can shed or degrade low-priority jobs instead
        of dying on a mid-run :class:`DeviceOutOfMemoryError`.
        """
        if self.total_bytes <= 0:
            return 1.0
        return self.used_bytes / self.total_bytes

    def reserve(self, nbytes: int) -> None:
        """Claim *nbytes*; raises :class:`DeviceOutOfMemoryError` if over capacity."""
        if nbytes < 0:
            raise ValueError("cannot reserve a negative byte count")
        if nbytes > self.free_bytes:
            raise DeviceOutOfMemoryError(nbytes, self.free_bytes, self.total_bytes)
        self.used_bytes += nbytes
        self.high_water_bytes = max(self.high_water_bytes, self.used_bytes)

    def release(self, nbytes: int) -> None:
        """Return *nbytes* to the free pool."""
        if nbytes < 0:
            raise ValueError("cannot release a negative byte count")
        if nbytes > self.used_bytes:
            raise MemoryAccessError(
                f"releasing {nbytes} bytes but only {self.used_bytes} in use"
            )
        self.used_bytes -= nbytes


class DeviceBuffer:
    """A typed, shaped region of simulated device memory.

    The backing store is a NumPy array.  ``nbytes`` is the *reserved* size,
    which may exceed ``shape``'s logical size when the buffer came from a
    pooling allocator's size class.
    """

    __slots__ = ("buffer_id", "nbytes", "dtype", "shape", "_data", "_alive")

    def __init__(self, nbytes: int, shape: tuple[int, ...], dtype: np.dtype) -> None:
        self.buffer_id = next(_buffer_ids)
        self.nbytes = int(nbytes)
        self.dtype = np.dtype(dtype)
        self.shape = tuple(int(s) for s in shape)
        logical = int(np.prod(self.shape, dtype=np.int64)) * self.dtype.itemsize
        if logical > self.nbytes:
            raise ValueError(
                f"shape {self.shape} of {self.dtype} needs {logical} bytes "
                f"but buffer holds only {self.nbytes}"
            )
        self._data = np.zeros(self.shape, dtype=self.dtype)
        self._alive = True

    @property
    def alive(self) -> bool:
        return self._alive

    def array(self) -> np.ndarray:
        """The device-resident contents; raises if the buffer was freed."""
        if not self._alive:
            raise MemoryAccessError(
                f"buffer #{self.buffer_id} used after free"
            )
        return self._data

    def retire(self) -> None:
        """Mark the buffer dead (called by allocators on free)."""
        self._alive = False

    def reshape_view(self, shape: tuple[int, ...], dtype: np.dtype) -> None:
        """Re-type a pooled buffer for reuse without reallocating.

        Used by the caching allocator when a pool block is handed out for a
        request with a different shape than its previous tenant.
        """
        dtype = np.dtype(dtype)
        logical = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if logical > self.nbytes:
            raise ValueError(
                f"reuse shape {shape} of {dtype} needs {logical} bytes "
                f"but pooled block holds {self.nbytes}"
            )
        self.shape = tuple(int(s) for s in shape)
        self.dtype = dtype
        self._data = np.zeros(self.shape, dtype=dtype)
        self._alive = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "alive" if self._alive else "freed"
        return (
            f"DeviceBuffer(#{self.buffer_id}, shape={self.shape}, "
            f"dtype={self.dtype}, nbytes={self.nbytes}, {state})"
        )


@dataclass
class TransferEngine:
    """Models PCIe host<->device copies, charging time to the device clock."""

    spec: DeviceSpec
    clock: SimClock
    bytes_h2d: int = 0
    bytes_d2h: int = 0

    def _transfer_time(self, nbytes: int) -> float:
        return _TRANSFER_SUBMIT_OVERHEAD_S + nbytes / self.spec.pcie_bandwidth

    def htod(self, buffer: DeviceBuffer, host_array: np.ndarray) -> None:
        """Copy *host_array* into *buffer*, advancing the clock."""
        dest = buffer.array()
        src = np.asarray(host_array, dtype=buffer.dtype)
        if src.shape != dest.shape:
            raise MemoryAccessError(
                f"H2D shape mismatch: host {src.shape} vs device {dest.shape}"
            )
        dest[...] = src
        self.bytes_h2d += src.nbytes
        self.clock.advance(self._transfer_time(src.nbytes))

    def dtoh(self, buffer: DeviceBuffer) -> np.ndarray:
        """Copy *buffer* back to the host, advancing the clock."""
        src = buffer.array()
        self.bytes_d2h += src.nbytes
        self.clock.advance(self._transfer_time(src.nbytes))
        return src.copy()
