"""Optional native (C) backend for the Philox hot path.

The per-iteration weight regeneration is the single largest host cost of a
steady-state FastPSO run: two ``n x d`` uniform draws per iteration, each a
full Philox4x32-10 pass.  The NumPy uint64-lane pipeline in
:mod:`repro.gpusim.rng` already avoids allocation, but each round is ~10
full-array ufunc sweeps; a scalar C loop keeps each counter block in
registers and runs ~6x faster.

This module compiles ``_philox.c`` with the system C compiler the first time
it is needed, caches the shared object in a per-user temp directory keyed by
a source hash, and binds it through :mod:`ctypes` — no third-party build
dependency.  Everything is best-effort:

* set ``REPRO_NO_NATIVE_RNG=1`` to disable it;
* no compiler, a failed compile, or a failed known-answer self-test all
  silently fall back to the NumPy path (the two paths are bit-identical, so
  which one runs is invisible except in wall-clock time).

:func:`load` returns the bound library handle or ``None``; the result is
cached for the life of the process.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np

__all__ = ["load", "available", "unit_f32", "unit_f64"]

_SOURCE = Path(__file__).with_name("_philox.c")

#: Tri-state cache: unset sentinel / None (unavailable) / ctypes.CDLL.
_UNSET = object()
_lib: object = _UNSET


def _compiler() -> str | None:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _build(source: Path) -> ctypes.CDLL | None:
    cc = _compiler()
    if cc is None:
        return None
    src = source.read_bytes()
    tag = hashlib.sha256(src).hexdigest()[:16]
    cache_dir = (
        Path(tempfile.gettempdir()) / f"repro-philox-{os.getuid()}"
    )
    so_path = cache_dir / f"philox-{tag}.so"
    if not so_path.exists():
        cache_dir.mkdir(mode=0o700, parents=True, exist_ok=True)
        # Build next to the final name and rename: concurrent processes
        # (pytest-xdist, batch workers) never load a half-written object.
        with tempfile.NamedTemporaryFile(
            dir=cache_dir, suffix=".so", delete=False
        ) as tmp:
            tmp_path = Path(tmp.name)
        cmd = [
            cc,
            "-O3",
            "-march=native",
            "-funroll-loops",
            "-shared",
            "-fPIC",
            "-o",
            str(tmp_path),
            str(source),
        ]
        try:
            subprocess.run(
                cmd,
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(tmp_path, so_path)
        except (OSError, subprocess.SubprocessError):
            tmp_path.unlink(missing_ok=True)
            return None
    try:
        lib = ctypes.CDLL(str(so_path))
    except OSError:
        return None
    for fn_name, out_type in (
        ("philox_unit_f32", ctypes.c_float),
        ("philox_unit_f64", ctypes.c_double),
    ):
        fn = getattr(lib, fn_name)
        fn.restype = None
        # Raw addresses instead of typed pointers: callers pass
        # ``arr.ctypes.data`` ints, skipping the per-call ``data_as``
        # wrapper objects — this function is the hottest ctypes call in
        # the per-iteration weight draw.
        fn.argtypes = [
            ctypes.c_uint64,
            ctypes.c_uint64,
            ctypes.c_uint64,
            ctypes.c_void_p,
            ctypes.c_void_p,
        ]
    return lib


def _self_test(lib: ctypes.CDLL) -> bool:
    """Known-answer check against the reference bijection before first use."""
    from repro.gpusim.rng import PHILOX_ROUNDS, _key_schedule, philox4x32

    seed, sid, block0, n_blocks = 0x1234_5678_9ABC_DEF0, 7, 3, 8
    keys = np.array(
        [
            half
            for pair in _key_schedule(
                seed & 0xFFFFFFFF, (seed >> 32) & 0xFFFFFFFF, PHILOX_ROUNDS
            )
            for half in pair
        ],
        dtype=np.uint32,
    )
    got = np.empty(4 * n_blocks, dtype=np.float64)
    lib.philox_unit_f64(block0, sid, n_blocks, keys.ctypes.data, got.ctypes.data)
    idx = np.arange(block0, block0 + n_blocks, dtype=np.uint64)
    ctr = np.empty((n_blocks, 4), dtype=np.uint32)
    ctr[:, 0] = (idx & np.uint64(0xFFFFFFFF)).astype(np.uint32)
    ctr[:, 1] = (idx >> np.uint64(32)).astype(np.uint32)
    ctr[:, 2] = np.uint32(sid)
    ctr[:, 3] = 0
    words = philox4x32(
        ctr,
        np.array(
            [seed & 0xFFFFFFFF, (seed >> 32) & 0xFFFFFFFF], dtype=np.uint32
        ),
    )
    want = (words.reshape(-1).astype(np.float64) + 0.5) * 2.0**-32
    return bool(np.array_equal(got, want))


def load() -> ctypes.CDLL | None:
    """The bound native library, or ``None`` when unavailable/disabled."""
    global _lib
    if _lib is not _UNSET:
        return _lib  # type: ignore[return-value]
    lib = None
    if not os.environ.get("REPRO_NO_NATIVE_RNG") and _SOURCE.exists():
        try:
            lib = _build(_SOURCE)
            if lib is not None and not _self_test(lib):
                lib = None
        except Exception:
            lib = None
    _lib = lib
    return lib


def available() -> bool:
    return load() is not None


def unit_f32(
    lib: ctypes.CDLL,
    block0: int,
    stream_id: int,
    n_blocks: int,
    keys: np.ndarray,
    out: np.ndarray,
) -> None:
    """Fill *out* (flat float32, ``4 * n_blocks`` long) with unit uniforms."""
    lib.philox_unit_f32(
        block0,
        stream_id,
        n_blocks,
        keys.ctypes.data,
        out.ctypes.data,
    )


def unit_f64(
    lib: ctypes.CDLL,
    block0: int,
    stream_id: int,
    n_blocks: int,
    keys: np.ndarray,
    out: np.ndarray,
) -> None:
    """Fill *out* (flat float64, ``4 * n_blocks`` long) with unit uniforms."""
    lib.philox_unit_f64(
        block0,
        stream_id,
        n_blocks,
        keys.ctypes.data,
        out.ctypes.data,
    )
