"""Optional native (C) backend for the Philox hot path.

The per-iteration weight regeneration is the single largest host cost of a
steady-state FastPSO run: two ``n x d`` uniform draws per iteration, each a
full Philox4x32-10 pass.  The NumPy uint64-lane pipeline in
:mod:`repro.gpusim.rng` already avoids allocation, but each round is ~10
full-array ufunc sweeps; a scalar C loop keeps each counter block in
registers and runs ~6x faster.

The compile/cache/bind machinery lives in :mod:`repro.gpusim.native`
(shared with ``_fastpath.c``); this module contributes the source file, the
ctypes signatures and the known-answer self-test.  Everything is
best-effort:

* set ``REPRO_NO_NATIVE_RNG=1`` to disable it (checked on every call);
* no compiler, a failed compile, or a failed known-answer self-test all
  silently fall back to the NumPy path (the two paths are bit-identical, so
  which one runs is invisible except in wall-clock time).

:func:`load` returns the bound library handle or ``None``; the result is
cached for the life of the process (modulo the environment gate).
"""

from __future__ import annotations

import ctypes
from pathlib import Path

import numpy as np

from repro.gpusim import native

__all__ = ["load", "available", "unit_f32", "unit_f64"]

_SOURCE = Path(__file__).with_name("_philox.c")

#: Compat aliases (the loader now owns the cache; see repro.gpusim.native).
_UNSET = native._UNSET
_lib: object = _UNSET

# Raw addresses instead of typed pointers: callers pass ``arr.ctypes.data``
# ints, skipping the per-call ``data_as`` wrapper objects — these are the
# hottest ctypes calls in the per-iteration weight draw.
_UNIT_ARGTYPES = [
    ctypes.c_uint64,
    ctypes.c_uint64,
    ctypes.c_uint64,
    ctypes.c_void_p,
    ctypes.c_void_p,
]


def _self_test(lib: ctypes.CDLL) -> bool:
    """Known-answer check against the reference bijection before first use."""
    from repro.gpusim.rng import PHILOX_ROUNDS, _key_schedule, philox4x32

    seed, sid, block0, n_blocks = 0x1234_5678_9ABC_DEF0, 7, 3, 8
    keys = np.array(
        [
            half
            for pair in _key_schedule(
                seed & 0xFFFFFFFF, (seed >> 32) & 0xFFFFFFFF, PHILOX_ROUNDS
            )
            for half in pair
        ],
        dtype=np.uint32,
    )
    got = np.empty(4 * n_blocks, dtype=np.float64)
    lib.philox_unit_f64(block0, sid, n_blocks, keys.ctypes.data, got.ctypes.data)
    idx = np.arange(block0, block0 + n_blocks, dtype=np.uint64)
    ctr = np.empty((n_blocks, 4), dtype=np.uint32)
    ctr[:, 0] = (idx & np.uint64(0xFFFFFFFF)).astype(np.uint32)
    ctr[:, 1] = (idx >> np.uint64(32)).astype(np.uint32)
    ctr[:, 2] = np.uint32(sid)
    ctr[:, 3] = 0
    words = philox4x32(
        ctr,
        np.array(
            [seed & 0xFFFFFFFF, (seed >> 32) & 0xFFFFFFFF], dtype=np.uint32
        ),
    )
    want = (words.reshape(-1).astype(np.float64) + 0.5) * 2.0**-32
    return bool(np.array_equal(got, want))


_MODULE = native.NativeModule(
    "philox",
    [_SOURCE],
    env_gate="REPRO_NO_NATIVE_RNG",
    fn_specs={
        "philox_unit_f32": (None, _UNIT_ARGTYPES),
        "philox_unit_f64": (None, _UNIT_ARGTYPES),
    },
    self_test=_self_test,
)


def load() -> ctypes.CDLL | None:
    """The bound native library, or ``None`` when unavailable/disabled."""
    global _lib
    lib = _MODULE.load()
    _lib = lib
    return lib


def available() -> bool:
    return load() is not None


def unit_f32(
    lib: ctypes.CDLL,
    block0: int,
    stream_id: int,
    n_blocks: int,
    keys: np.ndarray,
    out: np.ndarray,
) -> None:
    """Fill *out* (flat float32, ``4 * n_blocks`` long) with unit uniforms."""
    lib.philox_unit_f32(
        block0,
        stream_id,
        n_blocks,
        keys.ctypes.data,
        out.ctypes.data,
    )


def unit_f64(
    lib: ctypes.CDLL,
    block0: int,
    stream_id: int,
    n_blocks: int,
    keys: np.ndarray,
    out: np.ndarray,
) -> None:
    """Fill *out* (flat float64, ``4 * n_blocks`` long) with unit uniforms."""
    lib.philox_unit_f64(
        block0,
        stream_id,
        n_blocks,
        keys.ctypes.data,
        out.ctypes.data,
    )
