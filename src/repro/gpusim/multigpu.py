"""Multi-GPU execution strategies from Section 3.5 of the paper.

Two ways to extend FastPSO across devices are described:

* **particle splitting** — the swarm is partitioned into sub-swarms, one per
  device; each sub-swarm optimises independently with its own local gbest,
  and the global gbest is reconciled *asynchronously* every
  ``exchange_interval`` iterations over PCIe.  Devices never stall on each
  other between exchanges.
* **tile matrix** — every iteration's element-wise update is sharded across
  devices by rows; devices synchronise every iteration (the gbest reduction
  needs all pbest values), paying an all-gather each step.

This module provides the *coordination* layer: device timelines, exchange
costs, and the composition of per-device step times into an end-to-end
elapsed time.  The per-device step costs are supplied by the engine (the
same kernels as single-GPU FastPSO, on smaller shards).  The ablation bench
compares the two strategies' scaling, reproducing the paper's argument for
why particle splitting tolerates slow interconnects better.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidParameterError
from repro.gpusim.device import DeviceSpec

__all__ = [
    "partition_particles",
    "partition_rows",
    "ExchangeCost",
    "particle_split_time",
    "tile_matrix_time",
]


def partition_particles(n: int, n_devices: int) -> list[int]:
    """Split *n* particles into per-device sub-swarm sizes (balanced).

    The first ``n % n_devices`` devices receive one extra particle, so sizes
    differ by at most one — the balance property the scheduler tests assert.
    """
    if n_devices <= 0:
        raise InvalidParameterError("need at least one device")
    if n < n_devices:
        raise InvalidParameterError(
            f"cannot split {n} particles over {n_devices} devices"
        )
    base, extra = divmod(n, n_devices)
    return [base + (1 if i < extra else 0) for i in range(n_devices)]


def partition_rows(n_rows: int, n_devices: int) -> list[tuple[int, int]]:
    """Row ranges ``[start, stop)`` assigned to each device (tile-matrix)."""
    sizes = partition_particles(n_rows, n_devices)
    ranges: list[tuple[int, int]] = []
    start = 0
    for s in sizes:
        ranges.append((start, start + s))
        start += s
    return ranges


@dataclass(frozen=True)
class ExchangeCost:
    """Cost model for inter-device gbest/pbest traffic over PCIe."""

    spec: DeviceSpec
    latency_s: float = 10e-6  # per-message submission + driver latency

    def transfer_time(self, nbytes: int) -> float:
        if nbytes < 0:
            raise InvalidParameterError("cannot transfer a negative byte count")
        return self.latency_s + nbytes / self.spec.pcie_bandwidth

    def gbest_broadcast(self, n_devices: int, gbest_bytes: int) -> float:
        """Gather candidates to device 0 and broadcast the winner back."""
        if n_devices < 1:
            raise InvalidParameterError("need at least one device")
        if n_devices == 1:
            return 0.0
        gather = (n_devices - 1) * self.transfer_time(gbest_bytes)
        scatter = (n_devices - 1) * self.transfer_time(gbest_bytes)
        return gather + scatter


def particle_split_time(
    per_device_iter_times: list[float],
    iterations: int,
    exchange_interval: int,
    exchange: ExchangeCost,
    gbest_bytes: int,
) -> float:
    """End-to-end time of the particle-splitting strategy.

    Devices run independently between exchanges; each exchange is a barrier
    (slowest device arrives last) plus the broadcast cost.
    """
    if iterations < 0:
        raise InvalidParameterError("iterations must be non-negative")
    if exchange_interval <= 0:
        raise InvalidParameterError("exchange_interval must be positive")
    if not per_device_iter_times:
        raise InvalidParameterError("need at least one device time")
    slowest = max(per_device_iter_times)
    n_devices = len(per_device_iter_times)
    n_exchanges = iterations // exchange_interval
    return (
        iterations * slowest
        + n_exchanges * exchange.gbest_broadcast(n_devices, gbest_bytes)
    )


def tile_matrix_time(
    per_device_iter_times: list[float],
    iterations: int,
    exchange: ExchangeCost,
    shard_bytes: int,
) -> float:
    """End-to-end time of the tile-matrix strategy.

    Every iteration barriers on the slowest shard and all-gathers the pbest
    values needed for the global reduction (ring all-gather: each device
    sends its shard once per step).
    """
    if iterations < 0:
        raise InvalidParameterError("iterations must be non-negative")
    if not per_device_iter_times:
        raise InvalidParameterError("need at least one device time")
    slowest = max(per_device_iter_times)
    n_devices = len(per_device_iter_times)
    allgather = (
        (n_devices - 1) * exchange.transfer_time(shard_bytes)
        if n_devices > 1
        else 0.0
    )
    return iterations * (slowest + allgather)
