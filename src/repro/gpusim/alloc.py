"""Device memory allocators: direct (cudaMalloc-like) and caching.

The paper's technique (iii) replaces per-iteration ``cudaMalloc``/``cudaFree``
with a pooling allocator that grabs memory once and recycles it.  Table 4
measures the end-to-end effect at 3.7-5 %.  Two allocators reproduce the
choice:

* :class:`DirectAllocator` — every ``alloc`` pays the driver's synchronous
  malloc latency, every ``free`` pays the free latency.  This models the
  "w/ reallocation" configuration.
* :class:`CachingAllocator` — requests are rounded up to power-of-two size
  classes; freed blocks go back to a per-class free list and subsequent
  allocations of the same class are pool hits that cost only a table lookup.
  This models the "w/ caching" configuration.

Both allocators share the :class:`GlobalMemory` capacity model, so an OOM is
raised identically regardless of pooling.  The pooling logic itself is real
(exercised and unit-tested), not just a timing annotation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import AllocationError
from repro.gpusim.clock import SimClock
from repro.gpusim.device import DeviceSpec
from repro.gpusim.memory import DeviceBuffer, GlobalMemory

__all__ = [
    "AllocatorStats",
    "DirectAllocator",
    "CachingAllocator",
    "size_class",
]

# A pool hit is a host-side hash-table lookup: tens of nanoseconds.
_POOL_HIT_OVERHEAD_S = 0.05e-6
# Returning a block to the pool is likewise a host-side list push.
_POOL_RELEASE_OVERHEAD_S = 0.05e-6

_MIN_CLASS_BYTES = 256  # CUDA allocations are 256-byte aligned.


def size_class(nbytes: int) -> int:
    """Round *nbytes* up to the allocator's size class (power of two >= 256)."""
    if nbytes < 0:
        raise ValueError("allocation size must be non-negative")
    c = _MIN_CLASS_BYTES
    while c < nbytes:
        c <<= 1
    return c


@dataclass
class AllocatorStats:
    """Counters exposed by both allocators for tests and EXPERIMENTS.md."""

    allocs: int = 0
    frees: int = 0
    pool_hits: int = 0
    pool_misses: int = 0
    bytes_requested: int = 0
    bytes_reserved: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.pool_hits + self.pool_misses
        return self.pool_hits / total if total else 0.0


class _AllocatorBase:
    """Shared bookkeeping for both allocator flavours."""

    def __init__(self, spec: DeviceSpec, memory: GlobalMemory, clock: SimClock):
        self.spec = spec
        self.memory = memory
        self.clock = clock
        self.stats = AllocatorStats()
        self._live: dict[int, DeviceBuffer] = {}
        #: Optional :class:`repro.reliability.faults.FaultInjector` consulted
        #: before every allocation (may raise an injected OOM).
        self.fault_injector = None

    def _register(self, buf: DeviceBuffer) -> DeviceBuffer:
        self._live[buf.buffer_id] = buf
        return buf

    def _unregister(self, buf: DeviceBuffer) -> None:
        if buf.buffer_id not in self._live:
            raise AllocationError(
                f"free of unknown or already-freed buffer #{buf.buffer_id}"
            )
        del self._live[buf.buffer_id]

    @property
    def live_buffers(self) -> int:
        return len(self._live)

    @property
    def pressure(self) -> float:
        """Device-memory pressure as this allocator sees it (0..1).

        For the caching flavour, pooled blocks are *reserved* on the device
        but instantly reusable, so they don't count as pressure — see
        :attr:`headroom_bytes`.
        """
        if self.memory.total_bytes <= 0:
            return 1.0
        return 1.0 - self.headroom_bytes / self.memory.total_bytes

    @property
    def headroom_bytes(self) -> int:
        """Bytes this allocator could still serve without an OOM."""
        return self.memory.free_bytes

    def alloc_like(self, shape: tuple[int, ...], dtype: np.dtype) -> DeviceBuffer:
        """Allocate a buffer sized for ``shape`` of ``dtype``."""
        nbytes = int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
        return self.alloc(nbytes, shape=shape, dtype=dtype)

    # subclasses implement alloc/free
    def alloc(
        self, nbytes: int, *, shape: tuple[int, ...] | None = None, dtype=np.float32
    ) -> DeviceBuffer:  # pragma: no cover - abstract
        raise NotImplementedError

    def free(self, buf: DeviceBuffer) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class DirectAllocator(_AllocatorBase):
    """cudaMalloc/cudaFree semantics: every call hits the (modelled) driver."""

    def alloc(
        self, nbytes: int, *, shape: tuple[int, ...] | None = None, dtype=np.float32
    ) -> DeviceBuffer:
        if self.fault_injector is not None:
            self.fault_injector.on_alloc(nbytes, self.memory)
        reserved = size_class(nbytes)
        self.memory.reserve(reserved)
        self.clock.advance(self.spec.malloc_overhead_s)
        self.stats.allocs += 1
        self.stats.bytes_requested += nbytes
        self.stats.bytes_reserved += reserved
        if shape is None:
            shape = (nbytes // np.dtype(dtype).itemsize,)
        return self._register(DeviceBuffer(reserved, shape, np.dtype(dtype)))

    def free(self, buf: DeviceBuffer) -> None:
        self._unregister(buf)
        buf.retire()
        self.memory.release(buf.nbytes)
        self.clock.advance(self.spec.free_overhead_s)
        self.stats.frees += 1


class CachingAllocator(_AllocatorBase):
    """Pooling allocator reproducing the paper's memory-caching technique.

    Freed blocks are kept, grouped by size class; an allocation first tries
    its class's free list (a *pool hit*, effectively free) and only falls
    back to the driver on a miss.  ``release_all`` returns every pooled block
    to the device, e.g. between experiments.
    """

    def __init__(self, spec: DeviceSpec, memory: GlobalMemory, clock: SimClock):
        super().__init__(spec, memory, clock)
        self._pools: dict[int, list[DeviceBuffer]] = {}

    def alloc(
        self, nbytes: int, *, shape: tuple[int, ...] | None = None, dtype=np.float32
    ) -> DeviceBuffer:
        if self.fault_injector is not None:
            self.fault_injector.on_alloc(nbytes, self.memory)
        reserved = size_class(nbytes)
        dtype = np.dtype(dtype)
        if shape is None:
            shape = (nbytes // dtype.itemsize,)
        self.stats.allocs += 1
        self.stats.bytes_requested += nbytes

        pool = self._pools.get(reserved)
        if pool:
            buf = pool.pop()
            buf.reshape_view(tuple(shape), dtype)
            self.stats.pool_hits += 1
            self.clock.advance(_POOL_HIT_OVERHEAD_S)
            return self._register(buf)

        self.memory.reserve(reserved)
        self.clock.advance(self.spec.malloc_overhead_s)
        self.stats.pool_misses += 1
        self.stats.bytes_reserved += reserved
        return self._register(DeviceBuffer(reserved, tuple(shape), dtype))

    def free(self, buf: DeviceBuffer) -> None:
        self._unregister(buf)
        buf.retire()
        self._pools.setdefault(buf.nbytes, []).append(buf)
        self.clock.advance(_POOL_RELEASE_OVERHEAD_S)
        self.stats.frees += 1

    @property
    def pooled_bytes(self) -> int:
        """Bytes held in free lists (reserved on device but reusable)."""
        return sum(b.nbytes for pool in self._pools.values() for b in pool)

    @property
    def headroom_bytes(self) -> int:
        """Free device bytes plus pooled blocks (reusable on demand)."""
        return self.memory.free_bytes + self.pooled_bytes

    def release_all(self) -> None:
        """Return all pooled blocks to the device (cudaFree each)."""
        for pool in self._pools.values():
            for buf in pool:
                self.memory.release(buf.nbytes)
                self.clock.advance(self.spec.free_overhead_s)
        self._pools.clear()
