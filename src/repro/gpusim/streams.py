"""CUDA-style streams and events on the simulated timeline.

A :class:`Stream` is an ordered work queue with its own completion horizon;
work enqueued on different streams of the same device overlaps, and
:class:`Event` objects provide the record/wait synchronisation primitive.
The multi-GPU strategies (:mod:`repro.gpusim.multigpu`) use streams to model
asynchronous gbest exchange: the particle-splitting approach lets sub-swarms
run ahead and reconciles on event boundaries, which is what makes it cheaper
than the per-iteration synchronisation of the tile-matrix approach.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import StreamError
from repro.gpusim.clock import SimClock

__all__ = ["Stream", "Event"]

_stream_ids = itertools.count(1)
_event_ids = itertools.count(1)


@dataclass
class Event:
    """A marker in a stream's timeline; unrecorded until a stream records it."""

    event_id: int = field(default_factory=lambda: next(_event_ids))
    timestamp: float | None = None

    @property
    def recorded(self) -> bool:
        return self.timestamp is not None


@dataclass
class Stream:
    """An asynchronous work queue bound to a device clock.

    ``horizon`` is the simulated time at which all currently enqueued work
    completes.  Enqueueing starts no earlier than the current clock time
    (the host must have issued the work) and no earlier than the stream's
    own horizon (streams are FIFO).
    """

    clock: SimClock
    stream_id: int = field(default_factory=lambda: next(_stream_ids))
    horizon: float = 0.0

    def enqueue(self, duration: float) -> float:
        """Append *duration* seconds of device work; returns completion time."""
        if duration < 0:
            raise StreamError(f"cannot enqueue negative duration {duration}")
        start = max(self.horizon, self.clock.now)
        self.horizon = start + duration
        return self.horizon

    def record_event(self, event: Event | None = None) -> Event:
        """Record an event capturing the stream's current horizon."""
        ev = event or Event()
        ev.timestamp = self.horizon
        return ev

    def wait_event(self, event: Event) -> None:
        """Make subsequent work on this stream wait for *event*."""
        if not event.recorded:
            raise StreamError(
                f"stream {self.stream_id} waiting on unrecorded event "
                f"#{event.event_id}"
            )
        self.horizon = max(self.horizon, float(event.timestamp))

    def synchronize(self) -> None:
        """Block the host until this stream drains (advances the clock)."""
        if self.horizon > self.clock.now:
            self.clock.advance(self.horizon - self.clock.now)
