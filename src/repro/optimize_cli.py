"""``python -m repro.optimize`` — run FastPSO from the command line.

Examples::

    python -m repro.optimize sphere --dim 200 --particles 5000 --iters 2000
    python -m repro.optimize griewank --engine fastpso-seq --seed 7
    python -m repro.optimize rastrigin --backend tensorcore --json out.json
"""

from __future__ import annotations

import argparse
import sys

from repro.core.fastpso import FastPSO
from repro.core.parameters import PSOParams
from repro.core.schedules import make_schedule
from repro.engines import BACKENDS, ENGINE_NAMES
from repro.functions import available_functions
from repro.io import save_result_json
from repro.utils.units import format_seconds

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.optimize",
        description="Minimise a built-in benchmark function with FastPSO "
        "on the simulated GPU.",
    )
    parser.add_argument("function", choices=available_functions())
    parser.add_argument("--dim", type=int, default=50)
    parser.add_argument("--particles", type=int, default=2000)
    parser.add_argument("--iters", type=int, default=500)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--engine",
        choices=ENGINE_NAMES,
        default="fastpso",
        help="execution engine (default: the GPU FastPSO)",
    )
    parser.add_argument(
        "--backend",
        choices=BACKENDS,
        default="global",
        help="FastPSO memory backend (ignored for other engines)",
    )
    parser.add_argument("--inertia", type=float, default=0.9)
    parser.add_argument("--cognitive", type=float, default=2.0)
    parser.add_argument("--social", type=float, default=2.0)
    parser.add_argument(
        "--topology", choices=("global", "ring"), default="global"
    )
    parser.add_argument(
        "--inertia-schedule",
        choices=("constant", "linear", "chaotic"),
        default="constant",
    )
    parser.add_argument(
        "--no-caching",
        action="store_true",
        help="disable the memory-caching allocator (Table 4's baseline)",
    )
    parser.add_argument(
        "--json", metavar="PATH", help="also write the result as JSON"
    )
    parser.add_argument(
        "--history",
        action="store_true",
        help="record the per-iteration gbest trace",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    schedule = (
        None
        if args.inertia_schedule == "constant"
        else make_schedule(args.inertia_schedule)
    )
    params = PSOParams(
        inertia=args.inertia,
        cognitive=args.cognitive,
        social=args.social,
        seed=args.seed,
        topology=args.topology,
        inertia_schedule=schedule,
    )

    if args.engine == "fastpso":
        pso = FastPSO(
            n_particles=args.particles,
            backend=args.backend,
            caching=not args.no_caching,
        )
    else:
        pso = FastPSO(n_particles=args.particles, engine=args.engine)
    pso.params = params

    result = pso.minimize(
        args.function,
        dim=args.dim,
        max_iter=args.iters,
        record_history=args.history,
    )

    print(result.summary())
    print(f"simulated time : {format_seconds(result.elapsed_seconds)}")
    print(f"per iteration  : {format_seconds(result.iteration_seconds)}")
    for step, seconds in result.step_times.as_dict().items():
        print(f"  {step:6s} {format_seconds(seconds)}")
    if args.json:
        path = save_result_json(result, args.json)
        print(f"result written : {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
