"""Shifted and rotated benchmark-function transforms (CEC-style).

The raw Molga & Smutnicki functions all put their optimum at a trivially
guessable point (the origin or the all-ones vector), which flatters
centre-biased initialisers.  The standard remedy — used by every CEC
competition suite — is composing them with an affine transform:

* :class:`Shifted` moves the optimum to ``x* + offset`` (f values
  unchanged: ``g(x) = f(x - offset)``);
* :class:`Rotated` evaluates ``f(Q (x - c) + c)`` for an orthogonal ``Q``
  about the domain centre ``c``, destroying separability while preserving
  the optimum *value*.

Both wrap any :class:`BenchmarkFunction` and remain benchmark functions
themselves (domain, profile, reference value all flow through), so they
compose with every engine and the schema machinery untouched.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidProblemError
from repro.functions.base import BenchmarkFunction, EvalProfile
from repro.utils.arrays import as_float_vector

__all__ = ["Shifted", "Rotated", "random_rotation"]


def random_rotation(dim: int, seed: int = 0) -> np.ndarray:
    """A uniformly random orthogonal matrix (QR of a Gaussian matrix)."""
    if dim <= 0:
        raise InvalidProblemError(f"dimension must be positive, got {dim}")
    rng = np.random.default_rng(seed)
    q, r = np.linalg.qr(rng.normal(size=(dim, dim)))
    # Fix the signs so the distribution is Haar-uniform.
    q *= np.sign(np.diag(r))
    return q


class Shifted(BenchmarkFunction):
    """``g(x) = f(x - offset)``: the optimum moves by *offset*."""

    def __init__(self, inner: BenchmarkFunction, offset) -> None:
        if not isinstance(inner, BenchmarkFunction):
            raise TypeError("inner must be a BenchmarkFunction")
        self.inner = inner
        self.offset = np.asarray(offset, dtype=np.float64)
        if self.offset.ndim != 1:
            raise InvalidProblemError("offset must be a 1-D vector")
        self.name = f"shifted_{inner.name}"
        self.domain = inner.domain

    def _offset_for(self, dim: int) -> np.ndarray:
        return as_float_vector(self.offset, name="offset", dim=dim)

    def evaluate(self, positions: np.ndarray) -> np.ndarray:
        p = self._validated(positions)
        return self.inner.evaluate(p - self._offset_for(p.shape[1]))

    def profile(self) -> EvalProfile:
        prof = self.inner.profile()
        # One extra subtraction per element for the shift.
        return EvalProfile(
            flops_per_elem=prof.flops_per_elem + 1.0,
            sfu_per_elem=prof.sfu_per_elem,
            reduction_flops_per_elem=prof.reduction_flops_per_elem,
        )

    def true_minimum_value(self, dim: int) -> float:
        return self.inner.true_minimum_value(dim)

    def true_minimum_position(self, dim: int) -> np.ndarray:
        return self.inner.true_minimum_position(dim) + self._offset_for(dim)

    def reference_value(self, dim: int) -> float:
        return self.inner.reference_value(dim)


class Rotated(BenchmarkFunction):
    """``g(x) = f(Q (x - c) + c)`` for an orthogonal *Q* about the centre.

    Rotation about the domain centre keeps the search box meaningful; the
    optimum value is preserved, its position moves to
    ``c + Q^T (x* - c)``.
    """

    def __init__(self, inner: BenchmarkFunction, rotation: np.ndarray) -> None:
        if not isinstance(inner, BenchmarkFunction):
            raise TypeError("inner must be a BenchmarkFunction")
        q = np.asarray(rotation, dtype=np.float64)
        if q.ndim != 2 or q.shape[0] != q.shape[1]:
            raise InvalidProblemError("rotation must be a square matrix")
        if not np.allclose(q @ q.T, np.eye(q.shape[0]), atol=1e-8):
            raise InvalidProblemError("rotation matrix must be orthogonal")
        self.inner = inner
        self.rotation = q
        self.name = f"rotated_{inner.name}"
        self.domain = inner.domain

    def _centre(self) -> float:
        lo, hi = self.domain
        return (lo + hi) / 2.0

    def evaluate(self, positions: np.ndarray) -> np.ndarray:
        p = self._validated(positions)
        if p.shape[1] != self.rotation.shape[0]:
            raise InvalidProblemError(
                f"rotation is {self.rotation.shape[0]}-dimensional but "
                f"positions have dimension {p.shape[1]}"
            )
        c = self._centre()
        return self.inner.evaluate((p - c) @ self.rotation.T + c)

    def profile(self) -> EvalProfile:
        prof = self.inner.profile()
        d = self.rotation.shape[0]
        # The rotation is a d x d matvec per particle: ~2d flops/element.
        return EvalProfile(
            flops_per_elem=prof.flops_per_elem + 2.0 * d,
            sfu_per_elem=prof.sfu_per_elem,
            reduction_flops_per_elem=prof.reduction_flops_per_elem,
        )

    def true_minimum_value(self, dim: int) -> float:
        return self.inner.true_minimum_value(dim)

    def true_minimum_position(self, dim: int) -> np.ndarray:
        c = self._centre()
        x_star = self.inner.true_minimum_position(dim)
        return c + self.rotation.T @ (x_star - c)

    def reference_value(self, dim: int) -> float:
        return self.inner.reference_value(dim)
