"""The Rosenbrock (banana valley) function.

.. math::
   f(x) = \\sum_{i=1}^{d-1}\\big[100(x_{i+1}-x_i^2)^2 + (1-x_i)^2\\big]

Non-separable with a long curved valley; global minimum 0 at the all-ones
point (requires d >= 2).  Standard domain ``(-2.048, 2.048)``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidProblemError
from repro.functions.base import BenchmarkFunction, EvalProfile, register

__all__ = ["Rosenbrock"]


@register
class Rosenbrock(BenchmarkFunction):
    name = "rosenbrock"
    domain = (-2.048, 2.048)

    def evaluate(self, positions: np.ndarray) -> np.ndarray:
        p = self._validated(positions)
        if p.shape[1] < 2:
            raise InvalidProblemError("rosenbrock requires dimension >= 2")
        head, tail = p[:, :-1], p[:, 1:]
        return np.sum(
            100.0 * (tail - head * head) ** 2 + (1.0 - head) ** 2, axis=1
        )

    def profile(self) -> EvalProfile:
        return EvalProfile(flops_per_elem=8.0)

    def true_minimum_position(self, dim: int) -> np.ndarray:
        return np.ones(dim)
