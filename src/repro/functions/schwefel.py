"""The Schwefel function.

.. math:: f(x) = 418.9829\\,d - \\sum_{i=1}^{d} x_i\\sin(\\sqrt{|x_i|})

Deceptive: the second-best region lies far from the global minimum at
``x_i = 420.9687``.  Domain ``(-500, 500)``; minimum value ~0 (the constant
418.9829 per dimension cancels the optimum's contribution).
"""

from __future__ import annotations

import numpy as np

from repro.functions.base import BenchmarkFunction, EvalProfile, register

__all__ = ["Schwefel"]

_OPT_COORD = 420.968746


@register
class Schwefel(BenchmarkFunction):
    name = "schwefel"
    domain = (-500.0, 500.0)

    def evaluate(self, positions: np.ndarray) -> np.ndarray:
        p = self._validated(positions)
        d = p.shape[1]
        return 418.9829 * d - np.sum(p * np.sin(np.sqrt(np.abs(p))), axis=1)

    def profile(self) -> EvalProfile:
        return EvalProfile(flops_per_elem=3.0, sfu_per_elem=2.0)

    def true_minimum_position(self, dim: int) -> np.ndarray:
        return np.full(dim, _OPT_COORD)
