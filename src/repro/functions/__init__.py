"""Built-in swarm evaluation functions (paper Section 3.2).

Importing this package registers every built-in function; build one with
:func:`make_function` (or resolve a name with :func:`resolve_function`) and
enumerate them with :func:`available_functions`.  :func:`get_function` is
the deprecated pre-rename spelling of :func:`make_function`.
The paper's evaluation set is ``sphere``, ``griewank`` and ``easom``; the
rest are the wider Molga & Smutnicki collection FastPSO ships as built-ins.
"""

from repro.functions.ackley import Ackley
from repro.functions.base import (
    BenchmarkFunction,
    EvalProfile,
    available_functions,
    get_function,
    make_function,
    register,
    resolve_function,
)
from repro.functions.dixon_price import DixonPrice
from repro.functions.easom import Easom
from repro.functions.griewank import Griewank
from repro.functions.levy import Levy
from repro.functions.michalewicz import Michalewicz
from repro.functions.rastrigin import Rastrigin
from repro.functions.rosenbrock import Rosenbrock
from repro.functions.schwefel import Schwefel
from repro.functions.sphere import Sphere
from repro.functions.styblinski_tang import StyblinskiTang
from repro.functions.zakharov import Zakharov

#: The three functions the paper's Tables 1-4 and Figures 4-6 use.
PAPER_FUNCTIONS = ("sphere", "griewank", "easom")

__all__ = [
    "BenchmarkFunction",
    "EvalProfile",
    "available_functions",
    "get_function",
    "make_function",
    "resolve_function",
    "register",
    "PAPER_FUNCTIONS",
    "Sphere",
    "Griewank",
    "Easom",
    "Rastrigin",
    "Rosenbrock",
    "Ackley",
    "Schwefel",
    "Levy",
    "Zakharov",
    "StyblinskiTang",
    "Michalewicz",
    "DixonPrice",
]
