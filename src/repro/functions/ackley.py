"""The Ackley function.

.. math::
   f(x) = -20\\exp\\!\\Big(-0.2\\sqrt{\\tfrac1d\\sum x_i^2}\\Big)
          - \\exp\\!\\Big(\\tfrac1d\\sum\\cos(2\\pi x_i)\\Big) + 20 + e

Nearly flat outer region with a deep central funnel; global minimum 0 at the
origin.  Standard domain ``(-32.768, 32.768)``.
"""

from __future__ import annotations

import numpy as np

from repro.functions.base import BenchmarkFunction, EvalProfile, register

__all__ = ["Ackley"]


@register
class Ackley(BenchmarkFunction):
    name = "ackley"
    domain = (-32.768, 32.768)

    def evaluate(self, positions: np.ndarray) -> np.ndarray:
        p = self._validated(positions)
        d = p.shape[1]
        rms = np.sqrt(np.einsum("ij,ij->i", p, p) / d)
        mean_cos = np.mean(np.cos(2.0 * np.pi * p), axis=1)
        return -20.0 * np.exp(-0.2 * rms) - np.exp(mean_cos) + 20.0 + np.e

    def profile(self) -> EvalProfile:
        return EvalProfile(
            flops_per_elem=3.0, sfu_per_elem=1.0, reduction_flops_per_elem=3.0
        )
