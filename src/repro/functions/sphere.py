"""The Sphere function (paper problem #1).

.. math:: f(x) = \\sum_{i=1}^{d} x_i^2

Convex, separable, minimised at the origin with value 0.  The paper searches
on the domain ``(-5.12, 5.12)`` — the classic De Jong F1 setting — and uses
Sphere as the cheapest-evaluation workload, which makes it the purest
measurement of swarm-update throughput.
"""

from __future__ import annotations

import numpy as np

from repro.functions.base import BenchmarkFunction, EvalProfile, register

__all__ = ["Sphere"]


@register
class Sphere(BenchmarkFunction):
    name = "sphere"
    domain = (-5.12, 5.12)

    def evaluate(self, positions: np.ndarray) -> np.ndarray:
        p = self._validated(positions)
        # einsum avoids the (n, d) temporary that p**2 would materialise.
        return np.einsum("ij,ij->i", p, p)

    def profile(self) -> EvalProfile:
        # One multiply per element; the row sum is the reduction.
        return EvalProfile(flops_per_elem=1.0, sfu_per_elem=0.0)
