"""The Levy function.

.. math::
   f(x) = \\sin^2(\\pi w_1) + \\sum_{i=1}^{d-1}(w_i-1)^2
          \\big[1+10\\sin^2(\\pi w_i+1)\\big]
          + (w_d-1)^2\\big[1+\\sin^2(2\\pi w_d)\\big],
   \\quad w_i = 1 + \\tfrac{x_i-1}{4}

Global minimum 0 at the all-ones point.  Standard domain ``(-10, 10)``.
"""

from __future__ import annotations

import numpy as np

from repro.functions.base import BenchmarkFunction, EvalProfile, register

__all__ = ["Levy"]


@register
class Levy(BenchmarkFunction):
    name = "levy"
    domain = (-10.0, 10.0)

    def evaluate(self, positions: np.ndarray) -> np.ndarray:
        p = self._validated(positions)
        w = 1.0 + (p - 1.0) / 4.0
        term1 = np.sin(np.pi * w[:, 0]) ** 2
        wi = w[:, :-1]
        middle = np.sum(
            (wi - 1.0) ** 2 * (1.0 + 10.0 * np.sin(np.pi * wi + 1.0) ** 2),
            axis=1,
        )
        wd = w[:, -1]
        term3 = (wd - 1.0) ** 2 * (1.0 + np.sin(2.0 * np.pi * wd) ** 2)
        return term1 + middle + term3

    def profile(self) -> EvalProfile:
        return EvalProfile(flops_per_elem=9.0, sfu_per_elem=1.0)

    def true_minimum_position(self, dim: int) -> np.ndarray:
        return np.ones(dim)
