"""The Michalewicz function.

.. math::
   f(x) = -\\sum_{i=1}^{d}\\sin(x_i)\\,
          \\sin^{2m}\\!\\Big(\\frac{i\\,x_i^2}{\\pi}\\Big),\\quad m = 10

Steep ridges and valleys whose number grows factorially with dimension; the
minimum value depends on *d* and has no closed form, so
:meth:`true_minimum_value` returns a documented lower bound (-d) and error
reporting for this function is relative to that bound.  Domain ``(0, pi)``.
"""

from __future__ import annotations

import numpy as np

from repro.functions.base import BenchmarkFunction, EvalProfile, register

__all__ = ["Michalewicz"]

_STEEPNESS_M = 10


@register
class Michalewicz(BenchmarkFunction):
    name = "michalewicz"
    domain = (0.0, np.pi)

    def evaluate(self, positions: np.ndarray) -> np.ndarray:
        p = self._validated(positions)
        d = p.shape[1]
        i = np.arange(1, d + 1, dtype=np.float64)
        ridge = np.sin(i * p * p / np.pi) ** (2 * _STEEPNESS_M)
        return -np.sum(np.sin(p) * ridge, axis=1)

    def profile(self) -> EvalProfile:
        return EvalProfile(flops_per_elem=6.0, sfu_per_elem=2.0)

    def true_minimum_value(self, dim: int) -> float:
        # Each summand lies in [-1, 0]; -d is a valid (loose) lower bound.
        return -float(dim)
