"""The Griewank function (paper problem #2).

.. math::
   f(x) = \\frac{1}{4000}\\sum_{i=1}^{d} x_i^2
          - \\prod_{i=1}^{d} \\cos\\!\\left(\\frac{x_i}{\\sqrt{i}}\\right) + 1

Many regularly spaced local minima superimposed on a parabolic bowl; global
minimum 0 at the origin.  The paper searches ``(-600, 600)``.  The cosine
product makes its evaluation kernel transcendental-bound on CPUs.
"""

from __future__ import annotations

import numpy as np

from repro.functions.base import BenchmarkFunction, EvalProfile, register

__all__ = ["Griewank"]


@register
class Griewank(BenchmarkFunction):
    name = "griewank"
    domain = (-600.0, 600.0)

    def evaluate(self, positions: np.ndarray) -> np.ndarray:
        p = self._validated(positions)
        d = p.shape[1]
        quad = np.einsum("ij,ij->i", p, p) / 4000.0
        denom = np.sqrt(np.arange(1, d + 1, dtype=np.float64))
        trig = np.prod(np.cos(p / denom), axis=1)
        return quad - trig + 1.0

    def profile(self) -> EvalProfile:
        # square+scale and the divide by sqrt(i); one cos per element; the
        # row product and row sum form the reduction.
        return EvalProfile(
            flops_per_elem=3.0, sfu_per_elem=1.0, reduction_flops_per_elem=2.0
        )
