"""In-place, batch-stackable evaluator fast paths for the benchmark suite.

The fused multi-swarm batch path (:mod:`repro.batch.fused`) evaluates the
row-stacked positions of ``m`` swarms in one call.  The standard evaluator
bodies allocate fresh temporaries every call; these factories perform the
*same IEEE operations in the same order* on preallocated scratch, so the
returned fitness rows are bitwise equal to the standard
``BenchmarkFunction.evaluate`` output — the property the fused path's
per-swarm parity contract rests on (and which the fused runner additionally
self-verifies at group start before trusting a stacked evaluator).

Every factory closes over buffers sized for a fixed ``(rows, dim)`` and
returns ``fn(p) -> values`` where ``p`` is the float64 validated position
matrix (the caller performs the ``_validated`` cast once into its own
buffer).  Bit-identity notes mirror the originals:

* ``x ** k`` is replicated with ``np.power(x, k, out=...)`` — *not* with
  repeated multiplies, which round differently for ``k=4`` (zakharov).
* Scalar-array products keep the original operand order only up to
  commutativity (IEEE multiply and add are commutative bitwise).
* Row reductions (``einsum``, ``sum``/``prod``/``mean`` over ``axis=1``)
  reduce each row independently, so stacking more rows cannot change a
  row's result.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_inplace_evaluator", "INPLACE_FUNCTIONS"]


def _sphere(rows: int, dim: int):
    vals = np.empty(rows, np.float64)

    def fn(p: np.ndarray) -> np.ndarray:
        return np.einsum("ij,ij->i", p, p, out=vals)

    return fn


def _griewank(rows: int, dim: int):
    o1 = np.empty((rows, dim), np.float64)
    vals = np.empty(rows, np.float64)
    trig = np.empty(rows, np.float64)
    denom = np.sqrt(np.arange(1, dim + 1, dtype=np.float64))

    def fn(p: np.ndarray) -> np.ndarray:
        np.einsum("ij,ij->i", p, p, out=vals)
        np.divide(vals, 4000.0, out=vals)
        np.divide(p, denom, out=o1)
        np.cos(o1, out=o1)
        np.prod(o1, axis=1, out=trig)
        np.subtract(vals, trig, out=vals)
        np.add(vals, 1.0, out=vals)
        return vals

    return fn


def _rastrigin(rows: int, dim: int):
    o1 = np.empty((rows, dim), np.float64)
    o2 = np.empty((rows, dim), np.float64)
    vals = np.empty(rows, np.float64)

    def fn(p: np.ndarray) -> np.ndarray:
        np.multiply(2.0 * np.pi, p, out=o1)
        np.cos(o1, out=o1)
        np.multiply(10.0, o1, out=o1)
        np.multiply(p, p, out=o2)
        np.subtract(o2, o1, out=o2)
        np.sum(o2, axis=1, out=vals)
        np.add(10.0 * dim, vals, out=vals)
        return vals

    return fn


def _levy(rows: int, dim: int):
    w = np.empty((rows, dim), np.float64)
    o2 = np.empty((rows, dim - 1), np.float64)
    o3 = np.empty((rows, dim - 1), np.float64)
    vals = np.empty(rows, np.float64)
    t1 = np.empty(rows, np.float64)
    t3 = np.empty(rows, np.float64)
    t4 = np.empty(rows, np.float64)

    def fn(p: np.ndarray) -> np.ndarray:
        np.subtract(p, 1.0, out=w)
        np.divide(w, 4.0, out=w)
        np.add(1.0, w, out=w)
        # term1 = sin(pi * w[:, 0]) ** 2
        np.multiply(np.pi, w[:, 0], out=t1)
        np.sin(t1, out=t1)
        np.power(t1, 2, out=t1)
        # middle = sum((wi - 1)^2 * (1 + 10 sin(pi wi + 1)^2), axis=1)
        wi = w[:, :-1]
        np.multiply(np.pi, wi, out=o3)
        np.add(o3, 1.0, out=o3)
        np.sin(o3, out=o3)
        np.power(o3, 2, out=o3)
        np.multiply(10.0, o3, out=o3)
        np.add(1.0, o3, out=o3)
        np.subtract(wi, 1.0, out=o2)
        np.power(o2, 2, out=o2)
        np.multiply(o2, o3, out=o2)
        np.sum(o2, axis=1, out=vals)
        # term3 = (wd - 1)^2 * (1 + sin(2 pi wd)^2)
        wd = w[:, -1]
        np.multiply(2.0 * np.pi, wd, out=t3)
        np.sin(t3, out=t3)
        np.power(t3, 2, out=t3)
        np.add(1.0, t3, out=t3)
        np.subtract(wd, 1.0, out=t4)
        np.power(t4, 2, out=t4)
        np.multiply(t4, t3, out=t3)
        # term1 + middle + term3, left to right
        np.add(t1, vals, out=vals)
        np.add(vals, t3, out=vals)
        return vals

    return fn


def _rosenbrock(rows: int, dim: int):
    o1 = np.empty((rows, dim - 1), np.float64)
    o2 = np.empty((rows, dim - 1), np.float64)
    vals = np.empty(rows, np.float64)

    def fn(p: np.ndarray) -> np.ndarray:
        head, tail = p[:, :-1], p[:, 1:]
        np.multiply(head, head, out=o1)
        np.subtract(tail, o1, out=o1)
        np.power(o1, 2, out=o1)
        np.multiply(100.0, o1, out=o1)
        np.subtract(1.0, head, out=o2)
        np.power(o2, 2, out=o2)
        np.add(o1, o2, out=o1)
        np.sum(o1, axis=1, out=vals)
        return vals

    return fn


def _zakharov(rows: int, dim: int):
    vals = np.empty(rows, np.float64)
    lin = np.empty(rows, np.float64)
    l2 = np.empty(rows, np.float64)
    l4 = np.empty(rows, np.float64)
    weights = 0.5 * np.arange(1, dim + 1, dtype=np.float64)

    def fn(p: np.ndarray) -> np.ndarray:
        np.einsum("ij,ij->i", p, p, out=vals)
        np.matmul(p, weights, out=lin)
        np.power(lin, 2, out=l2)
        np.power(lin, 4, out=l4)
        np.add(vals, l2, out=vals)
        np.add(vals, l4, out=vals)
        return vals

    return fn


def _ackley(rows: int, dim: int):
    o1 = np.empty((rows, dim), np.float64)
    vals = np.empty(rows, np.float64)
    mean_cos = np.empty(rows, np.float64)

    def fn(p: np.ndarray) -> np.ndarray:
        np.einsum("ij,ij->i", p, p, out=vals)
        np.divide(vals, dim, out=vals)
        np.sqrt(vals, out=vals)
        np.multiply(-0.2, vals, out=vals)
        np.exp(vals, out=vals)
        np.multiply(-20.0, vals, out=vals)
        np.multiply(2.0 * np.pi, p, out=o1)
        np.cos(o1, out=o1)
        np.mean(o1, axis=1, out=mean_cos)
        np.exp(mean_cos, out=mean_cos)
        np.subtract(vals, mean_cos, out=vals)
        # Two separate adds, as in the original `... + 20.0 + np.e`.
        np.add(vals, 20.0, out=vals)
        np.add(vals, np.e, out=vals)
        return vals

    return fn


def _schwefel(rows: int, dim: int):
    o1 = np.empty((rows, dim), np.float64)
    o2 = np.empty((rows, dim), np.float64)
    vals = np.empty(rows, np.float64)

    def fn(p: np.ndarray) -> np.ndarray:
        np.abs(p, out=o1)
        np.sqrt(o1, out=o1)
        np.sin(o1, out=o1)
        np.multiply(p, o1, out=o2)
        np.sum(o2, axis=1, out=vals)
        np.subtract(418.9829 * dim, vals, out=vals)
        return vals

    return fn


#: Factories keyed by benchmark name; each needs ``dim >= 2`` (levy and
#: rosenbrock slice off one column) which every registered benchmark
#: already enforces.
INPLACE_FUNCTIONS = {
    "sphere": _sphere,
    "griewank": _griewank,
    "rastrigin": _rastrigin,
    "levy": _levy,
    "rosenbrock": _rosenbrock,
    "zakharov": _zakharov,
    "ackley": _ackley,
    "schwefel": _schwefel,
}


def make_inplace_evaluator(name: str, rows: int, dim: int):
    """An in-place evaluator for *name* over ``(rows, dim)`` float64
    positions, or ``None`` when the function has no fast path (callers fall
    back to the standard evaluator)."""
    factory = INPLACE_FUNCTIONS.get(name)
    if factory is None:
        return None
    if dim < 2:
        return None
    return factory(rows, dim)
