"""The Styblinski-Tang function.

.. math:: f(x) = \\tfrac12\\sum_{i=1}^{d}\\big(x_i^4 - 16x_i^2 + 5x_i\\big)

Separable and polynomial; global minimum ``-39.16599 d`` at
``x_i = -2.903534``.  Domain ``(-5, 5)``.  Exercises the non-zero-optimum
code paths in error reporting.
"""

from __future__ import annotations

import numpy as np

from repro.functions.base import BenchmarkFunction, EvalProfile, register

__all__ = ["StyblinskiTang"]

_OPT_COORD = -2.903534
_OPT_VALUE_PER_DIM = -39.16616570377142


@register
class StyblinskiTang(BenchmarkFunction):
    name = "styblinski_tang"
    domain = (-5.0, 5.0)

    def evaluate(self, positions: np.ndarray) -> np.ndarray:
        p = self._validated(positions)
        p2 = p * p
        return 0.5 * np.sum(p2 * p2 - 16.0 * p2 + 5.0 * p, axis=1)

    def profile(self) -> EvalProfile:
        return EvalProfile(flops_per_elem=6.0)

    def true_minimum_value(self, dim: int) -> float:
        return _OPT_VALUE_PER_DIM * dim

    def true_minimum_position(self, dim: int) -> np.ndarray:
        return np.full(dim, _OPT_COORD)
