"""The Dixon-Price function.

.. math:: f(x) = (x_1 - 1)^2 + \\sum_{i=2}^{d} i\\,(2x_i^2 - x_{i-1})^2

Unimodal valley with a non-trivial optimum: ``x_i = 2^{-(2^i-2)/2^i}``,
value 0.  Domain ``(-10, 10)``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidProblemError
from repro.functions.base import BenchmarkFunction, EvalProfile, register

__all__ = ["DixonPrice"]


@register
class DixonPrice(BenchmarkFunction):
    name = "dixon_price"
    domain = (-10.0, 10.0)

    def evaluate(self, positions: np.ndarray) -> np.ndarray:
        p = self._validated(positions)
        if p.shape[1] < 2:
            raise InvalidProblemError("dixon_price requires dimension >= 2")
        i = np.arange(2, p.shape[1] + 1, dtype=np.float64)
        head = (p[:, 0] - 1.0) ** 2
        tail = np.sum(i * (2.0 * p[:, 1:] ** 2 - p[:, :-1]) ** 2, axis=1)
        return head + tail

    def profile(self) -> EvalProfile:
        return EvalProfile(flops_per_elem=7.0)

    def true_minimum_position(self, dim: int) -> np.ndarray:
        i = np.arange(1, dim + 1, dtype=np.float64)
        return 2.0 ** (-(2.0**i - 2.0) / 2.0**i)
