"""The Rastrigin function.

.. math:: f(x) = 10d + \\sum_{i=1}^{d}\\big[x_i^2 - 10\\cos(2\\pi x_i)\\big]

Highly multimodal with a regular lattice of local minima; global minimum 0
at the origin.  Standard domain ``(-5.12, 5.12)``.  Not in the paper's
evaluation set, but part of FastPSO's built-in function library and used by
the extension benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.functions.base import BenchmarkFunction, EvalProfile, register

__all__ = ["Rastrigin"]


@register
class Rastrigin(BenchmarkFunction):
    name = "rastrigin"
    domain = (-5.12, 5.12)

    def evaluate(self, positions: np.ndarray) -> np.ndarray:
        p = self._validated(positions)
        d = p.shape[1]
        return 10.0 * d + np.sum(
            p * p - 10.0 * np.cos(2.0 * np.pi * p), axis=1
        )

    def profile(self) -> EvalProfile:
        return EvalProfile(flops_per_elem=4.0, sfu_per_elem=1.0)
