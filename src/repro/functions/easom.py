"""The (generalised) Easom function (paper problem #3).

The paper states the d-dimensional generalisation

.. math::
   f(x) = -(-1)^d \\Big(\\prod_{i=1}^{d}\\cos^2 x_i\\Big)
          \\exp\\!\\Big[-\\sum_{i=1}^{d}(x_i-\\pi)^2\\Big]

on the domain ``(-2\\pi, 2\\pi)``.  For even *d* the global minimum is -1 at
``x = (\\pi, ..., \\pi)``, hidden in an exponentially narrow well; everywhere
else the function is essentially 0.

**Reference-value quirk (documented reproduction decision).**  Table 2 of
the paper reports an error of 0.00 for *every* implementation on Easom at
d=200 — including CPU libraries whose Sphere/Griewank errors are enormous.
No stochastic optimizer finds a needle of width ~1 in a 200-dimensional box,
so those zeros are only consistent with measuring error against the
function's plateau value 0 rather than the true minimum -1.  We therefore
override :meth:`reference_value` to return the plateau (0.0) for d > 2,
keeping :meth:`true_minimum_value` honest at -1; EXPERIMENTS.md calls this
out next to the Table 2 comparison.
"""

from __future__ import annotations

import numpy as np

from repro.functions.base import BenchmarkFunction, EvalProfile, register

__all__ = ["Easom"]


@register
class Easom(BenchmarkFunction):
    name = "easom"
    domain = (-2.0 * np.pi, 2.0 * np.pi)

    def evaluate(self, positions: np.ndarray) -> np.ndarray:
        p = self._validated(positions)
        d = p.shape[1]
        sign = -((-1.0) ** d)
        cos2 = np.cos(p) ** 2
        # log-space product avoids underflow of prod(cos^2) in high dimension;
        # exact zeros (cos x == 0) force the product to 0 regardless.
        with np.errstate(divide="ignore"):
            log_prod = np.sum(np.log(cos2), axis=1)
        dist = np.einsum("ij,ij->i", p - np.pi, p - np.pi)
        out = sign * np.exp(log_prod - dist)
        out[~np.isfinite(log_prod)] = 0.0
        return out

    def profile(self) -> EvalProfile:
        # cos, the square via pow, exp, and the log-space product guard:
        # four transcendental-class ops per element — the reason Easom is
        # the paper's slowest problem on the CPU engines (Table 1).
        return EvalProfile(
            flops_per_elem=4.0, sfu_per_elem=4.0, reduction_flops_per_elem=2.0
        )

    def true_minimum_value(self, dim: int) -> float:
        # Even d: -1 at pi*e.  Odd d: the sign flips and the minimum of the
        # (then non-negative) needle term is the plateau value 0.
        return -1.0 if dim % 2 == 0 else 0.0

    def true_minimum_position(self, dim: int) -> np.ndarray:
        return np.full(dim, np.pi)

    def reference_value(self, dim: int) -> float:
        """Paper Table 2 convention: the plateau (0) for high dimensions."""
        if dim <= 2:
            return self.true_minimum_value(dim)
        return 0.0
