"""The Zakharov function.

.. math::
   f(x) = \\sum x_i^2 + \\Big(\\sum 0.5\\,i\\,x_i\\Big)^2
          + \\Big(\\sum 0.5\\,i\\,x_i\\Big)^4

Unimodal but ill-conditioned (the weighted-sum terms couple all
coordinates); global minimum 0 at the origin.  Domain ``(-5, 10)``.
"""

from __future__ import annotations

import numpy as np

from repro.functions.base import BenchmarkFunction, EvalProfile, register

__all__ = ["Zakharov"]


@register
class Zakharov(BenchmarkFunction):
    name = "zakharov"
    domain = (-5.0, 10.0)

    def evaluate(self, positions: np.ndarray) -> np.ndarray:
        p = self._validated(positions)
        d = p.shape[1]
        weights = 0.5 * np.arange(1, d + 1, dtype=np.float64)
        quad = np.einsum("ij,ij->i", p, p)
        lin = p @ weights
        return quad + lin**2 + lin**4

    def profile(self) -> EvalProfile:
        return EvalProfile(flops_per_elem=3.0, reduction_flops_per_elem=4.0)
