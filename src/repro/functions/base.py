"""Benchmark-function abstraction and registry.

FastPSO ships built-in evaluation functions (the paper names Sphere,
Griewank and Easom, citing the Molga & Smutnicki test-function collection)
and a schema for user-defined ones.  A :class:`BenchmarkFunction` carries:

* NumPy semantics (:meth:`evaluate`) over an ``(n, d)`` position matrix,
* its search domain and the optimum used for error reporting, and
* an :class:`EvalProfile` — the per-element instruction/byte mix of its GPU
  evaluation kernel, consumed by the cost model (transcendental-heavy
  functions such as Easom are measurably slower on CPUs, which is visible in
  the paper's Table 1 as Easom's 3x larger fastpso-seq time).

``reference_value`` is the value errors are measured against in Table 2.
For Easom in high dimension the paper's table reports 0.00 for every
implementation, which is only consistent with referencing the function's
asymptotic plateau (0) rather than the needle minimum (-1); see the Easom
module for the documented quirk.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidProblemError, UnknownFunctionError
from repro.utils.arrays import ensure_2d
from repro.utils.naming import unknown_name

__all__ = [
    "EvalProfile",
    "BenchmarkFunction",
    "register",
    "make_function",
    "resolve_function",
    "get_function",
    "available_functions",
]


@dataclass(frozen=True)
class EvalProfile:
    """Per-matrix-element cost profile of a function's evaluation kernel.

    ``flops_per_elem`` covers adds/multiplies per element of P;
    ``sfu_per_elem`` counts transcendental calls (cos/exp/sqrt) per element;
    ``reduction_flops_per_elem`` covers the row-reduction combining the
    per-dimension terms into one fitness value per particle.
    """

    flops_per_elem: float
    sfu_per_elem: float = 0.0
    reduction_flops_per_elem: float = 1.0

    def __post_init__(self) -> None:
        if min(
            self.flops_per_elem, self.sfu_per_elem, self.reduction_flops_per_elem
        ) < 0:
            raise ValueError("evaluation profile terms must be non-negative")


class BenchmarkFunction(ABC):
    """A minimisation test function with domain, optimum and cost profile."""

    #: Registry key and display name.
    name: str = ""
    #: Per-dimension search domain (lo, hi), applied to every coordinate.
    domain: tuple[float, float] = (-1.0, 1.0)

    @abstractmethod
    def evaluate(self, positions: np.ndarray) -> np.ndarray:
        """Fitness of each row of an ``(n, d)`` position matrix.

        Must return an ``(n,)`` float64 vector.  Implementations are pure
        and vectorised; engines wrap them in evaluation kernels.
        """

    @abstractmethod
    def profile(self) -> EvalProfile:
        """Cost profile of the evaluation kernel."""

    def reference_value(self, dim: int) -> float:
        """Value that reported errors are measured against (paper Table 2)."""
        return self.true_minimum_value(dim)

    def true_minimum_value(self, dim: int) -> float:
        """The function's actual global minimum value in *dim* dimensions."""
        return 0.0

    def true_minimum_position(self, dim: int) -> np.ndarray:
        """A global minimiser in *dim* dimensions."""
        return np.zeros(dim)

    # -- helpers -------------------------------------------------------------
    def _validated(self, positions: np.ndarray) -> np.ndarray:
        p = ensure_2d(np.asarray(positions, dtype=np.float64))
        if p.shape[1] == 0:
            raise InvalidProblemError(f"{self.name}: zero-dimensional input")
        return p

    def __call__(self, positions: np.ndarray) -> np.ndarray:
        return self.evaluate(positions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lo, hi = self.domain
        return f"{type(self).__name__}(domain=({lo}, {hi}))"


_REGISTRY: dict[str, type[BenchmarkFunction]] = {}


def register(cls: type[BenchmarkFunction]) -> type[BenchmarkFunction]:
    """Class decorator adding a function to the global registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must define a non-empty name")
    key = cls.name.lower()
    if key in _REGISTRY and _REGISTRY[key] is not cls:
        raise ValueError(f"duplicate benchmark function name {cls.name!r}")
    _REGISTRY[key] = cls
    return cls


def resolve_function(name: str) -> str:
    """Resolve *name* to its canonical registry key.

    The function-registry analogue of
    :func:`repro.engines.resolve_engine`: callers that *compare* or
    serialize function names see through case differences without paying
    for an instantiation.  Unknown names raise
    :class:`~repro.errors.UnknownFunctionError` (an
    :class:`~repro.errors.InvalidParameterError`) with a did-you-mean hint.
    """
    key = str(name).lower()
    if key not in _REGISTRY:
        raise unknown_name(
            "benchmark function",
            name,
            available_functions(),
            exc_type=UnknownFunctionError,
        ) from None
    return key


def make_function(name: str) -> BenchmarkFunction:
    """Instantiate a registered benchmark function by (case-insensitive) name.

    The function-registry analogue of :func:`repro.engines.make_engine`.
    Unknown names raise :class:`~repro.errors.UnknownFunctionError` with a
    did-you-mean hint and the full registry listing.
    """
    return _REGISTRY[resolve_function(name)]()


def get_function(name: str) -> BenchmarkFunction:
    """Deprecated alias of :func:`make_function`.

    .. deprecated::
        Renamed to :func:`make_function` to mirror ``make_engine`` /
        ``resolve_engine``; this shim forwards and will be removed in a
        future release.
    """
    import warnings

    warnings.warn(
        "get_function() is renamed to make_function() (mirroring "
        "make_engine); the get_function alias will be removed",
        DeprecationWarning,
        stacklevel=2,
    )
    return make_function(name)


def available_functions() -> list[str]:
    """Sorted names of all registered benchmark functions."""
    return sorted(_REGISTRY)
