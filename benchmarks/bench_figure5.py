"""Regenerate Figure 5 (per-step elapsed-time breakdown)."""

from repro.bench.experiments import figure5


def test_figure5_step_breakdown(benchmark, scale):
    result = benchmark.pedantic(
        figure5.run, args=(scale,), rounds=1, iterations=1
    )
    print("\n" + result.to_text())

    # CPU engines spend >80 % of their time in the swarm update on the
    # cheap-evaluation problems; Easom's transcendental-heavy evaluation
    # claims a large share of its own (visible in the paper's Figure 5c).
    assert result.swarm_fraction("sphere", "fastpso-seq") > 0.7
    assert result.swarm_fraction("griewank", "fastpso-seq") > 0.6
    for problem in ("sphere", "griewank", "easom"):
        # The sequential port needs >5 s for the swarm update alone
        # (paper: >10 s); fastpso reduces it by more than an order of
        # magnitude.
        seq_swarm = result.breakdowns[problem]["fastpso-seq"].swarm
        gpu_swarm = result.breakdowns[problem]["fastpso"].swarm
        assert seq_swarm > 5.0
        assert seq_swarm / gpu_swarm > 15
