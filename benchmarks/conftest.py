"""Fixtures for the paper-regeneration benchmarks.

Each ``bench_*.py`` file regenerates one of the paper's tables/figures and
prints it, while ``pytest-benchmark`` records the wall-clock cost of the
regeneration itself (the simulator's own speed).  Set
``REPRO_BENCH_SCALE=paper`` for full-size error workloads.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os

import pytest

from repro.bench.config import PAPER_SCALE, BenchScale


def _bench_scale() -> BenchScale:
    if os.environ.get("REPRO_BENCH_SCALE", "").lower() == "paper":
        return PAPER_SCALE
    # Benchmark default: paper-sized timing shapes (projection is exact),
    # reduced error workloads so the whole suite finishes in ~2 minutes.
    return BenchScale(
        name="bench",
        sample_iters=3,
        error_particles=400,
        error_dim=50,
        error_iters=200,
        tune_particles=128,
        tune_iters=40,
    )


@pytest.fixture(scope="session")
def scale() -> BenchScale:
    return _bench_scale()
