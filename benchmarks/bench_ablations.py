"""Design-choice ablations (DESIGN.md Section 6) plus simulator micro-benches.

The micro-benchmarks time the *simulator's own* hot paths with
pytest-benchmark statistics (rounds of real wall time), since those paths
bound how fast the experiment harness can regenerate the paper.
"""

import numpy as np

from repro.bench.experiments import ablations
from repro.core.parameters import PSOParams
from repro.core.problem import Problem
from repro.core.swarm import draw_initial_state, draw_weights, velocity_update
from repro.gpusim.rng import ParallelRNG


def test_ablation_report(benchmark, scale):
    report = benchmark.pedantic(
        ablations.run, args=(scale,), rounds=1, iterations=1
    )
    print("\n" + report.to_text())
    assert len(report.sections) == 6


def test_philox_generation_rate(benchmark):
    """Wall-time throughput of the vectorised Philox generator."""
    rng = ParallelRNG(7)
    out = benchmark(lambda: rng.uniform((1000, 200), dtype=np.float32))
    assert out.shape == (1000, 200)


def test_velocity_update_kernel_semantics(benchmark):
    """Wall time of one fused velocity update on paper-sized matrices."""
    problem = Problem.from_benchmark("sphere", 200)
    params = PSOParams(seed=3)
    state = draw_initial_state(problem, 5000, ParallelRNG(3))
    l_w, g_w = draw_weights(ParallelRNG(4), 5000, 200)
    bounds = problem.velocity_bounds(1.0)

    def step():
        return velocity_update(
            state.velocities,
            state.positions,
            state.pbest_positions,
            state.pbest_positions[0],
            l_w,
            g_w,
            params,
            bounds,
            out=state.velocities,
        )

    benchmark(step)


def test_threadconf_vectorised_evaluation(benchmark):
    """Wall time of evaluating 5000 thread configurations (Table 1 path)."""
    from repro.threadconf import TgbmSimulator
    from repro.threadconf.tuner import ThreadConfEvaluation

    sim = TgbmSimulator("higgs")
    schema = ThreadConfEvaluation(sim, 50)
    positions = np.random.default_rng(0).uniform(0, 1, (5000, 50))
    values = benchmark(schema.evaluate, positions)
    assert values.shape == (5000,)
