"""Regenerate Table 4 (memory caching vs per-request reallocation)."""

from repro.bench.experiments import table4


def test_table4_memory_caching(benchmark, scale):
    result = benchmark.pedantic(
        table4.run, args=(scale,), rounds=1, iterations=1
    )
    print("\n" + result.to_text())

    for problem in ("sphere", "griewank", "easom"):
        gain = result.speedup_percent(problem)
        # Paper band: caching is 3.7-5.1 % faster; allow a generous margin.
        assert 2.0 < gain < 9.0, (problem, gain)
        assert (
            result.caching_seconds[problem] < result.realloc_seconds[problem]
        )
