"""Batch-scheduler benchmark: simulated makespan vs one-job-at-a-time (ISSUE 2).

Runs the standard 32-job mixed workload (``repro.batch.mixed_workload`` —
eight benchmark functions across GPU engines, dims 8–64, swarms 128–1024)
through :class:`repro.batch.BatchScheduler` under every packing policy
(``fifo``, ``packed`` and the fused multi-swarm path, ISSUE 6) and reports
the *simulated* makespan against the sum of solo runtimes.  The acceptance
bar from ISSUE 2 is a ≥1.5x improvement on the default 4-streams-per-device
fleet; the benchmark asserts it so a scheduling regression fails loudly
instead of quietly shipping a worse number.

Host wall clock is recorded per policy too: the fused path's whole point is
collapsing ``m`` Python engine loops into one stacked loop, so
``host_wall_seconds`` (and the ``host_wall_delta`` summary) is the tentpole
metric for ISSUE 6 alongside the makespan.

Determinism is checked in the same pass: every job's batch result must be
bit-identical (best value, best position, solo runtime) to a fresh solo run
of the same spec — the batch layer's core contract.  ``--check-parity``
deepens the check to the full serialized result payload
(``repro.io.result_to_dict``), which is what the golden tests pin.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_batch.py [--jobs 32] [--check-parity] [--out BENCH_batch.json]

The committed ``BENCH_batch.json`` pins the makespan trajectory; CI runs a
smoke version (fewer jobs, ``--check-parity``) to keep the signal alive
without slowing the suite.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.batch import BatchScheduler, mixed_workload
from repro.batch.scheduler import POLICIES
from repro.engines import make_engine

N_JOBS = 32
STREAMS = 4
SPEEDUP_FLOOR = 1.5  # acceptance bar: batch makespan vs sum-of-solo


def dispatch_bound(n_jobs: int, streams: int, *, check_parity: bool = False) -> dict:
    """Host-wall comparison on a dispatch-dominated fleet.

    The mixed workload's wall clock is dominated by real objective and
    update arithmetic that every policy pays identically, which caps how
    much the fused stacking can show up in it.  Many small swarms are the
    regime the fusion targets: per-iteration Python dispatch dwarfs the
    math, so collapsing ``m`` engine loops into one is visible end to
    end.  Each policy gets one warm-up run (compile/caches) and the best
    of two timed runs.
    """
    from repro.batch import Job

    jobs = [
        Job(
            "sphere",
            dim=8,
            n_particles=64,
            max_iter=200,
            engine="fastpso",
            seed=9000 + i,
        )
        for i in range(n_jobs)
    ]
    solo = solo_baseline(jobs) if check_parity else None
    section = {
        "workload": {
            "n_jobs": n_jobs,
            "problem": "sphere",
            "dim": 8,
            "n_particles": 64,
            "max_iter": 200,
        },
    }
    for policy in ("packed", "fused"):
        scheduler_for = lambda: BatchScheduler(
            streams_per_device=streams, policy=policy
        )
        scheduler_for().run(jobs)  # warm-up
        wall = float("inf")
        for _ in range(2):
            t0 = time.perf_counter()
            batch = scheduler_for().run(jobs)
            wall = min(wall, time.perf_counter() - t0)
        if solo is not None:
            check_bit_identical(batch, solo, deep=True)
        section[f"{policy}_seconds"] = wall
    section["packed_over_fused"] = (
        section["packed_seconds"] / section["fused_seconds"]
    )
    print(
        f"dispatch-bound ({n_jobs} x sphere-64x8x200): "
        f"packed={section['packed_seconds']:.2f}s "
        f"fused={section['fused_seconds']:.2f}s "
        f"({section['packed_over_fused']:.2f}x lower)"
    )
    return section


def solo_baseline(jobs) -> list:
    """Fresh solo runs of every job — the determinism reference."""
    results = []
    for job in jobs:
        engine = make_engine(job.engine, **dict(job.engine_options))
        results.append(
            engine.optimize(
                job.resolved_problem(),
                n_particles=job.n_particles,
                max_iter=job.max_iter,
                params=job.resolved_params,
            )
        )
    return results


def check_bit_identical(batch, solo_results, *, deep: bool = False) -> None:
    from repro.io import result_to_dict

    for outcome, solo in zip(batch.outcomes, solo_results):
        label = outcome.job.label
        assert outcome.result.best_value == solo.best_value, label
        assert outcome.result.elapsed_seconds == solo.elapsed_seconds, label
        np.testing.assert_array_equal(
            outcome.result.best_position, solo.best_position, err_msg=label
        )
        if deep:
            # The whole serialized payload — per-section timings, setup
            # time, iteration count, peak bytes, status — must round-trip
            # identically; this is the parity contract the fused policy's
            # golden tests pin.
            assert result_to_dict(outcome.result) == result_to_dict(solo), label


def run(
    n_jobs: int, streams: int, n_devices: int, *, check_parity: bool = False
) -> dict:
    jobs = mixed_workload(n_jobs)
    solo = solo_baseline(jobs)
    sum_solo = sum(r.elapsed_seconds for r in solo)
    payload = {
        "workload": {
            "n_jobs": n_jobs,
            "n_devices": n_devices,
            "streams_per_device": streams,
            "sum_solo_seconds": sum_solo,
        },
        "python": platform.python_version(),
        "machine": platform.machine(),
        "policies": {},
    }
    for policy in POLICIES:
        scheduler = BatchScheduler(
            n_devices=n_devices, streams_per_device=streams, policy=policy
        )
        t0 = time.perf_counter()
        batch = scheduler.run(jobs)
        wall = time.perf_counter() - t0
        check_bit_identical(batch, solo, deep=check_parity)
        prof = batch.fleet_profile
        row = {
            "makespan_seconds": batch.makespan_seconds,
            "speedup": batch.speedup,
            "fleet_occupancy": batch.fleet_occupancy,
            "mean_queue_wait_seconds": batch.mean_queue_wait_seconds,
            "max_queue_wait_seconds": batch.max_queue_wait_seconds,
            "device_makespans": list(batch.device_makespans),
            "host_wall_seconds": wall,
            "fleet_kernel_launches": sum(
                k.launches for k in prof.kernels.values()
            ),
            "bit_identical_to_solo": True,
        }
        if policy == "fused":
            row["fused_groups"] = [
                {
                    "members": g.get("members"),
                    "n_fused": g.get("n_fused"),
                    "fast_rounds": g.get("fast_rounds"),
                    "update_mode": g.get("update_mode"),
                    "lane_seconds": g.get("lane_seconds"),
                }
                for g in batch.fused_rows
            ]
        payload["policies"][policy] = row
        print(
            f"{policy:8s} makespan={batch.makespan_seconds:.4f}s "
            f"speedup={batch.speedup:.2f}x "
            f"occupancy={batch.fleet_occupancy:.1%} wall={wall:.2f}s"
        )
    pol = payload["policies"]
    if "fused" in pol and "packed" in pol:
        packed_wall = pol["packed"]["host_wall_seconds"]
        fused_wall = pol["fused"]["host_wall_seconds"]
        payload["host_wall_delta"] = {
            "packed_seconds": packed_wall,
            "fused_seconds": fused_wall,
            "packed_over_fused": (
                packed_wall / fused_wall if fused_wall > 0 else float("inf")
            ),
            # The mixed workload spends most of its wall clock on real
            # objective/update arithmetic (1024x16 rastrigin/levy sweeps,
            # tensor-core fragment math) that every policy pays
            # identically, so this ratio is capped well below the
            # stacking factor; the dispatch_bound section below measures
            # the regime where per-iteration Python dispatch dominates
            # and the fused loop's amortization is visible end to end.
            "note": (
                "mixed workload is math-bound; see dispatch_bound for the "
                "dispatch-dominated regime"
            ),
        }
        print(
            f"host wall: packed={packed_wall:.2f}s fused={fused_wall:.2f}s "
            f"({packed_wall / fused_wall:.2f}x lower)"
        )
    payload["dispatch_bound"] = dispatch_bound(
        n_jobs, streams, check_parity=check_parity
    )
    best = max(p["speedup"] for p in payload["policies"].values())
    assert best >= SPEEDUP_FLOOR, (
        f"batch speedup {best:.2f}x below the {SPEEDUP_FLOOR}x floor"
    )
    print(f"best speedup {best:.2f}x (floor {SPEEDUP_FLOOR}x) — OK")
    return payload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_batch.json", help="output JSON path")
    parser.add_argument(
        "--jobs",
        type=int,
        default=N_JOBS,
        help="workload size (CI smoke runs use a smaller value)",
    )
    parser.add_argument("--streams", type=int, default=STREAMS)
    parser.add_argument("--devices", type=int, default=1)
    parser.add_argument(
        "--check-parity",
        action="store_true",
        help=(
            "additionally compare every job's full serialized result "
            "(repro.io.result_to_dict) against its solo run"
        ),
    )
    args = parser.parse_args()
    payload = run(
        args.jobs, args.streams, args.devices, check_parity=args.check_parity
    )
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
