"""Batch-scheduler benchmark: simulated makespan vs one-job-at-a-time (ISSUE 2).

Runs the standard 32-job mixed workload (``repro.batch.mixed_workload`` —
eight benchmark functions across GPU engines, dims 8–64, swarms 128–1024)
through :class:`repro.batch.BatchScheduler` under both packing policies and
reports the *simulated* makespan against the sum of solo runtimes.  The
acceptance bar from the issue is a ≥1.5x improvement on the default
4-streams-per-device fleet; the benchmark asserts it so a scheduling
regression fails loudly instead of quietly shipping a worse number.

Determinism is checked in the same pass: every job's batch result must be
bit-identical (best value, best position, solo runtime) to a fresh solo run
of the same spec — the batch layer's core contract.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_batch.py [--jobs 32] [--out BENCH_batch.json]

The committed ``BENCH_batch.json`` pins the makespan trajectory; CI runs a
smoke version (fewer jobs) to keep the signal alive without slowing the
suite.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.batch import BatchScheduler, mixed_workload
from repro.batch.scheduler import POLICIES
from repro.engines import make_engine

N_JOBS = 32
STREAMS = 4
SPEEDUP_FLOOR = 1.5  # acceptance bar: batch makespan vs sum-of-solo


def solo_baseline(jobs) -> list:
    """Fresh solo runs of every job — the determinism reference."""
    results = []
    for job in jobs:
        engine = make_engine(job.engine, **dict(job.engine_options))
        results.append(
            engine.optimize(
                job.resolved_problem(),
                n_particles=job.n_particles,
                max_iter=job.max_iter,
                params=job.resolved_params,
            )
        )
    return results


def check_bit_identical(batch, solo_results) -> None:
    for outcome, solo in zip(batch.outcomes, solo_results):
        label = outcome.job.label
        assert outcome.result.best_value == solo.best_value, label
        assert outcome.result.elapsed_seconds == solo.elapsed_seconds, label
        np.testing.assert_array_equal(
            outcome.result.best_position, solo.best_position, err_msg=label
        )


def run(n_jobs: int, streams: int, n_devices: int) -> dict:
    jobs = mixed_workload(n_jobs)
    solo = solo_baseline(jobs)
    sum_solo = sum(r.elapsed_seconds for r in solo)
    payload = {
        "workload": {
            "n_jobs": n_jobs,
            "n_devices": n_devices,
            "streams_per_device": streams,
            "sum_solo_seconds": sum_solo,
        },
        "python": platform.python_version(),
        "machine": platform.machine(),
        "policies": {},
    }
    for policy in POLICIES:
        scheduler = BatchScheduler(
            n_devices=n_devices, streams_per_device=streams, policy=policy
        )
        t0 = time.perf_counter()
        batch = scheduler.run(jobs)
        wall = time.perf_counter() - t0
        check_bit_identical(batch, solo)
        prof = batch.fleet_profile
        payload["policies"][policy] = {
            "makespan_seconds": batch.makespan_seconds,
            "speedup": batch.speedup,
            "fleet_occupancy": batch.fleet_occupancy,
            "mean_queue_wait_seconds": batch.mean_queue_wait_seconds,
            "max_queue_wait_seconds": batch.max_queue_wait_seconds,
            "device_makespans": list(batch.device_makespans),
            "host_wall_seconds": wall,
            "fleet_kernel_launches": sum(
                k.launches for k in prof.kernels.values()
            ),
            "bit_identical_to_solo": True,
        }
        print(
            f"{policy:8s} makespan={batch.makespan_seconds:.4f}s "
            f"speedup={batch.speedup:.2f}x "
            f"occupancy={batch.fleet_occupancy:.1%} wall={wall:.2f}s"
        )
    best = max(p["speedup"] for p in payload["policies"].values())
    assert best >= SPEEDUP_FLOOR, (
        f"batch speedup {best:.2f}x below the {SPEEDUP_FLOOR}x floor"
    )
    print(f"best speedup {best:.2f}x (floor {SPEEDUP_FLOOR}x) — OK")
    return payload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_batch.json", help="output JSON path")
    parser.add_argument(
        "--jobs",
        type=int,
        default=N_JOBS,
        help="workload size (CI smoke runs use a smaller value)",
    )
    parser.add_argument("--streams", type=int, default=STREAMS)
    parser.add_argument("--devices", type=int, default=1)
    args = parser.parse_args()
    payload = run(args.jobs, args.streams, args.devices)
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
