"""Regenerate Table 5 (ThunderGBM thread-configuration case study)."""

from repro.bench.experiments import table5


def test_table5_thundergbm_tuning(benchmark, scale):
    result = benchmark.pedantic(
        table5.run, args=(scale,), rounds=1, iterations=1
    )
    print("\n" + result.to_text())

    speedups = {name: r.speedup for name, r in result.results.items()}
    # Paper shape: covtype's defaults are already good (~1.0x); the
    # narrow-feature (susy) and feature-dominated (e2006) datasets gain.
    assert speedups["covtype"] < 1.10
    assert speedups["susy"] > 1.10
    assert speedups["e2006"] > 1.10
    assert all(s >= 1.0 for s in speedups.values())
    # Absolute training times in the paper's neighbourhood (Table 5: 0.9,
    # 5.6, 14.51, 7.37 seconds).
    assert 0.3 < result.results["covtype"].default_seconds < 3.0
    assert 4.0 < result.results["higgs"].default_seconds < 30.0
