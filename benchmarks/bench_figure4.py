"""Regenerate Figure 4 (particle/dimension scaling sweeps)."""

from repro.bench.experiments import figure4


def test_figure4_scaling_sweeps(benchmark, scale):
    result = benchmark.pedantic(
        figure4.run, args=(scale,), rounds=1, iterations=1
    )
    print("\n" + result.to_text())

    for problem in ("sphere", "griewank", "easom"):
        particles = result.get(problem, "particles")
        dims = result.get(problem, "dimensions")
        # fastpso stays nearly flat along both axes ...
        assert particles.flatness("fastpso") < 2.0
        assert dims.flatness("fastpso") < 2.5
        # ... while the CPU implementations grow roughly linearly
        # (2.5x particles, 4x dimensions).
        assert particles.flatness("fastpso-seq") > 2.0
        assert dims.flatness("fastpso-seq") > 3.0
        assert dims.flatness("pyswarms") > 2.0
        # fastpso is fastest at every sweep point.
        for point in particles.points:
            for engine, series in particles.seconds.items():
                if engine != "fastpso":
                    assert (
                        series[point]
                        >= particles.seconds["fastpso"][point]
                    )
