"""Regenerate Figure 6 (swarm-update technique comparison)."""

from repro.bench.experiments import figure6


def test_figure6_update_techniques(benchmark, scale):
    result = benchmark.pedantic(
        figure6.run, args=(scale,), rounds=1, iterations=1
    )
    print("\n" + result.to_text())

    for problem, per_technique in result.swarm_seconds.items():
        # CPU for-loop >> any GPU technique (paper: >10 s vs <0.3 s-class).
        for gpu in ("global-mem", "shared-mem", "tensorcore"):
            assert per_technique["for-loop"] > 10 * per_technique[gpu], problem
        # OpenMP helps but stays the same order of magnitude as the loop.
        assert (
            per_technique["for-loop"] / per_technique["OpenMP"] < 4.0
        ), problem
        # The three GPU techniques are near-tied (bandwidth-bound update).
        gpu_times = [
            per_technique[t] for t in ("global-mem", "shared-mem", "tensorcore")
        ]
        assert max(gpu_times) / min(gpu_times) < 1.8, problem
