"""Device-catalog what-if sweep and cost-model calibration report (ISSUE 8).

Three sections, all deterministic (byte-identical JSON across runs on the
same interpreter — the CI device-sweep smoke job diffs two back-to-back
runs):

* **sweep** — the paper timing workload priced on every catalog entry
  (:mod:`repro.bench.experiments.devices`): projected simulated seconds,
  speedup vs the catalog V100, and the velocity-update kernel's modelled
  L1/L2 hit fractions.  Asserts the memory-hierarchy margin: the V100/A100
  ratio must exceed the bare DRAM-bandwidth ratio (the paper workload's
  ~12 MB working set fits an A100's 40 MiB L2 but only partially a V100's
  6 MiB), and every device must report the bit-identical best value.
* **calibration** — :func:`repro.devices.calibrate` fitting
  :class:`~repro.gpusim.costmodel.GpuCostParams` against the paper's
  published V100 wall times (Table 1: fastpso 0.67 s, gpu-pso 4.90 s at
  n=5000, d=200, 1000 iterations); the residual report is committed so a
  cost-model change that degrades the fit fails loudly.
* **hetero_batch** — a mixed fleet (``devices=["v100", "a100"]``) packing
  a seeded workload with cost-aware earliest-finish-time placement; pins
  the per-device job split and makespan.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_devices.py [--out BENCH_devices.json]
"""

from __future__ import annotations

import argparse
import json
import platform
from pathlib import Path

MAX_CALIBRATION_REL_ERROR = 0.10  # fitted model within 10% of the paper
MARGIN_HEADROOM = 1.02  # hierarchy margin must beat DRAM ratio by >= 2%


def sweep_section() -> dict:
    from repro.bench.config import get_scale
    from repro.bench.experiments.devices import run as run_sweep
    from repro.devices import resolve_device

    result = run_sweep(get_scale("quick"))
    assert result.trajectories_identical, (
        "catalog devices must not change trajectories: "
        + ", ".join(f"{r.device}={r.best_value!r}" for r in result.rows)
    )
    dram_ratio = (
        resolve_device("a100").dram_bandwidth
        / resolve_device("v100").dram_bandwidth
    )
    assert result.v100_over_a100 >= dram_ratio * MARGIN_HEADROOM, (
        f"hierarchy margin {result.v100_over_a100:.3f}x does not beat the "
        f"DRAM ratio {dram_ratio:.3f}x — the L2 model is not contributing"
    )
    print(result.to_text())
    print(
        f"margin check: {result.v100_over_a100:.3f}x >= "
        f"{dram_ratio:.3f}x (DRAM) * {MARGIN_HEADROOM} — OK"
    )
    return {
        **result.to_dict(),
        "dram_bandwidth_ratio_a100_over_v100": dram_ratio,
    }


def calibration_section() -> dict:
    from repro.devices import PAPER_TARGETS, calibrate

    result = calibrate(PAPER_TARGETS)
    print(result.report_text())
    assert result.max_abs_rel_error <= MAX_CALIBRATION_REL_ERROR, (
        f"calibration residual {result.max_abs_rel_error:.3f} exceeds "
        f"{MAX_CALIBRATION_REL_ERROR}"
    )
    print(
        f"calibration check: max |rel err| {result.max_abs_rel_error:.4f} "
        f"<= {MAX_CALIBRATION_REL_ERROR} — OK"
    )
    return result.to_json_dict()


def hetero_batch_section() -> dict:
    from repro.batch import BatchScheduler, Job

    scheduler = BatchScheduler(devices=["v100", "a100"], streams_per_device=2)
    jobs = [
        Job(
            "sphere",
            dim=32,
            n_particles=256 * (1 + seed % 3),
            max_iter=50,
            seed=seed,
        )
        for seed in range(12)
    ]
    result = scheduler.run(jobs)
    per_device = [
        sum(1 for o in result.outcomes if o.device_index == d)
        for d in range(result.n_devices)
    ]
    print(result.summary())
    return {
        "devices": ["v100", "a100"],
        "jobs": len(jobs),
        "jobs_per_device": per_device,
        "makespan_seconds": result.makespan_seconds,
        "sum_solo_seconds": result.sum_solo_seconds,
        "speedup": result.speedup,
        "all_succeeded": result.all_succeeded,
    }


def run() -> dict:
    return {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "sweep": sweep_section(),
        "calibration": calibration_section(),
        "hetero_batch": hetero_batch_section(),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default="BENCH_devices.json", help="output JSON path"
    )
    args = parser.parse_args()
    payload = run()
    Path(args.out).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
