"""Serving benchmark: 1000-session load drill, autoscale on vs off (ISSUE 7).

Replays the default :class:`repro.serve.LoadProfile` arrival storm —
``--sessions`` clients (1000 by default) submitting the standard sphere
job with exponential inter-arrival gaps in *virtual* seconds — against
:class:`repro.serve.OptimizationService` twice: once pinned at one
simulated device, once with autoscaling enabled up to ``--max-devices``.
Reports p50/p99 latency, mean latency, throughput and shed rate for both
fleets; every latency is virtual time, so the on-vs-off comparison is
exact and machine-independent.

Two contracts are asserted in the same pass:

- **Determinism** — the autoscaled drill is run twice and its canonical
  event logs (``events_json``) must be byte-identical, including every
  recorded scaling decision.
- **Parity** — a sample of served results is compared bit-for-bit
  (best value, best position, solo runtime) against fresh solo runs of
  the same job specs: serving adds queueing, never arithmetic.
- **Journal overhead** — the pinned drill is repeated with the
  write-ahead journal enabled (per-record fsync on and off) and the
  host-wall overhead recorded; the journaled event logs must stay
  byte-identical to the unjournaled run, so durability never changes a
  decision, only costs host time.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_serve.py [--sessions 1000] [--out BENCH_serve.json]

The committed ``BENCH_serve.json`` pins the tail-latency win; CI runs the
CLI drill (``python -m repro.serve``) twice and byte-compares the event
logs instead of repeating this full benchmark.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.engines import make_engine
from repro.serve import (
    AutoscalePolicy,
    LoadProfile,
    OptimizationService,
    replay,
)

N_SESSIONS = 1000
MAX_DEVICES = 4
PARITY_SAMPLE = 8


def drill(profile: LoadProfile, **service_kwargs):
    """One replay; returns (service, tickets, host_wall_seconds)."""
    service = OptimizationService(**service_kwargs)
    t0 = time.perf_counter()
    tickets = asyncio.run(replay(service, profile))
    return service, tickets, time.perf_counter() - t0


def check_parity(profile: LoadProfile, tickets) -> int:
    """Served results must be bit-identical to fresh solo runs."""
    completed = [t for t in tickets if t.status == "completed"]
    sample = completed[:: max(1, len(completed) // PARITY_SAMPLE)]
    for ticket in sample:
        job = ticket.job
        solo = make_engine(job.engine).optimize(
            job.resolved_problem(),
            n_particles=job.n_particles,
            max_iter=job.max_iter,
            params=job.resolved_params,
        )
        label = job.label
        assert ticket.result.best_value == solo.best_value, label
        np.testing.assert_array_equal(
            ticket.result.best_position, solo.best_position, err_msg=label
        )
        assert ticket.result.elapsed_seconds == solo.elapsed_seconds, label
    return len(sample)


def fleet_row(service, wall: float) -> dict:
    report = service.report()
    return {
        **report.to_dict(),
        "host_wall_seconds": wall,
        "n_events": len(service.events),
    }


def journal_section(profile: LoadProfile, reference) -> dict:
    """Journal on-vs-off: host-wall overhead, byte-identical decisions."""
    import tempfile

    root = Path(tempfile.mkdtemp(prefix="bench_serve_wal_"))
    rows = {}
    for label, fsync in (("fsync", True), ("no_fsync", False)):
        walls = []
        for attempt in ("a", "b"):
            wal = root / f"{label}_{attempt}"
            service, _, wall = drill(
                profile,
                n_devices=1,
                autoscale=None,
                journal_dir=wal,
                journal_fsync=fsync,
            )
            walls.append(wall)
            # Replay byte-identity holds with the journal on, in both
            # fsync modes, and against the unjournaled reference run:
            # durability adds records, never decisions.
            assert service.events_json() == reference.events_json(), (
                f"journaled drill ({label}/{attempt}) diverged from the "
                "unjournaled reference"
            )
        wal_file = root / f"{label}_b" / "service.wal"
        rows[label] = {
            "host_wall_seconds": min(walls),
            "wal_bytes": wal_file.stat().st_size,
        }
    print(
        "journal: event logs byte-identical in both fsync modes — OK "
        f"(wal={rows['fsync']['wal_bytes']} bytes)"
    )
    return rows


def run(n_sessions: int, max_devices: int) -> dict:
    profile = LoadProfile(n_sessions=n_sessions)
    autoscale = AutoscalePolicy(min_devices=1, max_devices=max_devices)

    pinned, pinned_tickets, pinned_wall = drill(
        profile, n_devices=1, autoscale=None
    )
    scaled, scaled_tickets, scaled_wall = drill(
        profile, n_devices=1, autoscale=autoscale
    )

    # Determinism: the autoscaled drill — scaling decisions included —
    # replays to a byte-identical event log.
    rerun, _, _ = drill(profile, n_devices=1, autoscale=autoscale)
    assert scaled.events_json() == rerun.events_json(), (
        "serve drill event logs diverged between identical runs"
    )
    print(f"determinism: {len(scaled.events)} events byte-identical — OK")

    n_checked = check_parity(profile, scaled_tickets)
    print(f"parity: {n_checked} served results bit-identical to solo — OK")

    journal_rows = journal_section(profile, pinned)
    journal_rows["off"] = {"host_wall_seconds": pinned_wall}
    baseline = pinned_wall or float("nan")
    for label in ("fsync", "no_fsync"):
        row = journal_rows[label]
        row["overhead_vs_off"] = row["host_wall_seconds"] / baseline
        print(
            f"journal {label:9s}: wall={row['host_wall_seconds']:.3f}s "
            f"({row['overhead_vs_off']:.2f}x of unjournaled)"
        )

    on = scaled.report()
    off = pinned.report()
    payload = {
        "profile": {
            "n_sessions": profile.n_sessions,
            "seed": profile.seed,
            "mean_interarrival": profile.mean_interarrival,
            "problem": profile.problem,
            "dim": profile.dim,
            "n_particles": profile.n_particles,
            "max_iter": profile.max_iter,
            "tenants": list(map(list, profile.tenants)),
        },
        "python": platform.python_version(),
        "machine": platform.machine(),
        "autoscale_off": fleet_row(pinned, pinned_wall),
        "autoscale_on": fleet_row(scaled, scaled_wall),
        "p99_improvement": off.p99_latency_seconds / on.p99_latency_seconds,
        "throughput_improvement": (
            on.throughput_per_second / off.throughput_per_second
        ),
        "events_byte_identical": True,
        "parity_sample_size": n_checked,
        "journal": journal_rows,
        "journal_events_byte_identical": True,
    }
    for label, report in (("off", off), ("on", on)):
        print(
            f"autoscale {label:3s}: p50={report.p50_latency_seconds:.4f}s "
            f"p99={report.p99_latency_seconds:.4f}s "
            f"throughput={report.throughput_per_second:.1f}/s "
            f"shed={report.shed_rate:.1%} "
            f"devices={report.devices_provisioned}"
        )
    assert on.p99_latency_seconds < off.p99_latency_seconds, (
        "autoscaling failed to improve tail latency"
    )
    print(
        f"p99 improvement {payload['p99_improvement']:.2f}x, "
        f"throughput {payload['throughput_improvement']:.2f}x — OK"
    )
    return payload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_serve.json", help="output JSON path")
    parser.add_argument(
        "--sessions",
        type=int,
        default=N_SESSIONS,
        help="client session count (CI smoke runs use a smaller value)",
    )
    parser.add_argument("--max-devices", type=int, default=MAX_DEVICES)
    args = parser.parse_args()
    payload = run(args.sessions, args.max_devices)
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
