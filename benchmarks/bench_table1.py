"""Regenerate Table 1 (overall comparison) and check its headline bands."""

from repro.bench.experiments import table1
from repro.engines import ENGINE_NAMES


def test_table1_overall_comparison(benchmark, scale):
    result = benchmark.pedantic(
        table1.run, args=(scale,), rounds=1, iterations=1
    )
    print("\n" + result.to_text())

    for row in result.rows:
        # fastpso wins on every problem ...
        for engine in ENGINE_NAMES:
            if engine != "fastpso":
                assert row.speedup_over(engine) > 1.0, (row.problem, engine)
    by_problem = {row.problem: row for row in result.rows}
    sphere = by_problem["sphere"]
    # ... by two orders of magnitude over the CPU libraries ...
    assert sphere.speedup_over("pyswarms") > 100
    assert sphere.speedup_over("scikit-opt") > 100
    # ... and by roughly 5-10x over the existing GPU implementations.
    assert 4 < sphere.speedup_over("gpu-pso") < 12
    assert 5 < sphere.speedup_over("hgpu-pso") < 15
