"""Regenerate Table 2 (errors to the optimal values)."""

from repro.bench.experiments import table2


def test_table2_errors_to_optimum(benchmark, scale):
    result = benchmark.pedantic(
        table2.run, args=(scale,), rounds=1, iterations=1
    )
    print("\n" + result.to_text())

    errors = result.errors
    # CPU libraries diverge (no velocity clamp), the clamped family converges.
    for problem in ("sphere", "griewank"):
        assert errors["pyswarms"][problem] > 10 * errors["fastpso"][problem]
        assert errors["scikit-opt"][problem] > 10 * errors["fastpso"][problem]
    # The fastpso family and the GPU baselines achieve comparable quality
    # (identical here: one algorithm, one seed).
    assert errors["fastpso"]["sphere"] == errors["fastpso-seq"]["sphere"]
    assert errors["fastpso"]["sphere"] == errors["gpu-pso"]["sphere"]
    # Easom errors are ~0 for everyone (the paper's plateau convention).
    for engine in errors:
        assert errors[engine]["easom"] < 1e-3
