"""Host wall-clock benchmark for the fast-path work (ISSUE 1).

Measures *host* seconds — real time spent running the simulator, not
simulated GPU seconds — for a fixed seeded Table-1-style workload:
``sphere`` in d=50, n=2000 particles, 200 iterations, on ``fastpso`` plus
one CPU baseline (``fastpso-seq``).  The simulated results (best value,
simulated ``elapsed_seconds``) are recorded alongside so a perf change that
accidentally perturbs trajectories is immediately visible in the JSON diff.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_wallclock.py [--out BENCH_wallclock.json]

The committed ``BENCH_wallclock.json`` tracks the perf trajectory from PR 1
onward; CI runs a smoke version (fewer iterations) to keep the signal alive
without slowing the suite.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.core.problem import Problem
from repro.engines import make_engine

WORKLOAD = {
    "problem": "sphere",
    "dim": 50,
    "n_particles": 2000,
    "max_iter": 200,
    "seed": 42,
}
ENGINES = ("fastpso", "fastpso-seq")
REPEATS = 3


def bench_engine(
    name: str, *, dim: int, n_particles: int, max_iter: int, repeats: int = REPEATS
) -> dict:
    """Best-of-*repeats* host wall time for one engine on the fixed workload."""
    problem = Problem.from_benchmark(WORKLOAD["problem"], dim)
    walls = []
    result = None
    for _ in range(repeats):
        engine = make_engine(name)  # fresh engine: no warm caches carried over
        t0 = time.perf_counter()
        result = engine.optimize(
            problem, n_particles=n_particles, max_iter=max_iter
        )
        walls.append(time.perf_counter() - t0)
    return {
        "wall_seconds": min(walls),
        "wall_seconds_all": walls,
        "simulated_seconds": result.elapsed_seconds,
        "best_value": result.best_value,
        "iterations": result.iterations,
    }


def run(max_iter: int, repeats: int) -> dict:
    payload = {
        "workload": {**WORKLOAD, "max_iter": max_iter},
        "repeats": repeats,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "engines": {},
    }
    for name in ENGINES:
        payload["engines"][name] = bench_engine(
            name,
            dim=WORKLOAD["dim"],
            n_particles=WORKLOAD["n_particles"],
            max_iter=max_iter,
            repeats=repeats,
        )
        e = payload["engines"][name]
        print(
            f"{name:12s} wall={e['wall_seconds']:.3f}s "
            f"simulated={e['simulated_seconds']:.6f}s best={e['best_value']:.6g}"
        )
    return payload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default="BENCH_wallclock.json", help="output JSON path"
    )
    parser.add_argument(
        "--iters",
        type=int,
        default=WORKLOAD["max_iter"],
        help="iteration count (CI smoke runs use a smaller value)",
    )
    parser.add_argument("--repeats", type=int, default=REPEATS)
    args = parser.parse_args()
    payload = run(args.iters, args.repeats)
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
