"""Host wall-clock benchmark for the fast-path work (ISSUE 1 / 4 / 9).

Measures *host* seconds — real time spent running the simulator, not
simulated GPU seconds — for a fixed seeded Table-1-style workload:
``sphere`` in d=50, n=2000 particles, 200 iterations, on ``fastpso`` plus
one CPU baseline (``fastpso-seq``), each in three execution lanes:

* ``<engine>`` — the default configuration: launch-graph replay promoted
  to the native one-C-call-per-iteration tier (``_fastpath.c``);
* ``<engine>-graph`` — launch-graph replay with the native tier disabled
  (``REPRO_NO_NATIVE_FASTPATH=1``), i.e. the Python replay closures;
* ``<engine>-eager`` — the full eager launch pipeline (``graph=False``).

Each lane performs one untimed warm-up run before the timed repeats (the
first run pays one-off costs — kernel-table construction, cost-model
memoisation, the compiled ``.so`` dlopen — that previously skewed repeat
0 by ~20%) and records ``wall_seconds_min`` as the headline number.

The simulated results (best value, simulated ``elapsed_seconds``) are
recorded alongside so a perf change that accidentally perturbs
trajectories is immediately visible in the JSON diff — and all three
lanes are checked *bit-identical* against each other (``--check-parity``,
exit 1 on mismatch; CI runs this, which covers native-vs-python parity).

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_wallclock.py [--out BENCH_wallclock.json]

The committed ``BENCH_wallclock.json`` tracks the perf trajectory from
PR 1 onward; CI runs a smoke version (``--repeats 1``) to keep the signal
alive without slowing the suite.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.core.problem import Problem
from repro.engines import make_engine
from repro.gpusim.fastpath import ENV_GATE

WORKLOAD = {
    "problem": "sphere",
    "dim": 50,
    "n_particles": 2000,
    "max_iter": 200,
    "seed": 42,
}
ENGINES = ("fastpso", "fastpso-seq")
#: lane suffix -> (graph enabled, native fast path enabled)
LANES = {"": (True, True), "-graph": (True, False), "-eager": (False, False)}
REPEATS = 3

#: Result fields that must be bit-identical across all three lanes.
PARITY_FIELDS = ("best_value", "simulated_seconds", "iterations", "trajectory")


def bench_engine(
    name: str,
    *,
    dim: int,
    n_particles: int,
    max_iter: int,
    repeats: int = REPEATS,
    graph: bool = True,
    native: bool = True,
) -> dict:
    """Best-of-*repeats* host wall time for one engine/lane, after one
    untimed warm-up run."""
    problem = Problem.from_benchmark(WORKLOAD["problem"], dim)
    saved = os.environ.get(ENV_GATE)
    if native:
        os.environ.pop(ENV_GATE, None)
    else:
        os.environ[ENV_GATE] = "1"
    try:
        walls = []
        result = None
        engine = None
        # Warm-up run, untimed: pays the one-off costs (kernel tables,
        # cost-model memoisation, native .so dlopen) that otherwise skew
        # the first timed repeat.
        make_engine(name, graph=graph).optimize(
            problem,
            n_particles=n_particles,
            max_iter=max_iter,
            record_history=True,
        )
        for _ in range(repeats):
            # Fresh engine every repeat: no warm caches carried over.
            engine = make_engine(name, graph=graph)
            t0 = time.perf_counter()
            result = engine.optimize(
                problem,
                n_particles=n_particles,
                max_iter=max_iter,
                record_history=True,
            )
            walls.append(time.perf_counter() - t0)
    finally:
        if saved is None:
            os.environ.pop(ENV_GATE, None)
        else:
            os.environ[ENV_GATE] = saved
    info = engine.graph_info
    return {
        "wall_seconds_min": min(walls),
        "wall_seconds_all": walls,
        "simulated_seconds": result.elapsed_seconds,
        "best_value": result.best_value,
        "iterations": result.iterations,
        "mode": info["mode"],
        "native": info["native"],
        "trajectory": list(result.history.gbest_values),
    }


def run(max_iter: int, repeats: int) -> dict:
    payload = {
        "workload": {**WORKLOAD, "max_iter": max_iter},
        "repeats": repeats,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "engines": {},
    }
    for name in ENGINES:
        for suffix, (graph, native) in LANES.items():
            key = name + suffix
            payload["engines"][key] = bench_engine(
                name,
                dim=WORKLOAD["dim"],
                n_particles=WORKLOAD["n_particles"],
                max_iter=max_iter,
                repeats=repeats,
                graph=graph,
                native=native,
            )
            e = payload["engines"][key]
            print(
                f"{key:20s} wall={e['wall_seconds_min']:.3f}s "
                f"simulated={e['simulated_seconds']:.6f}s "
                f"best={e['best_value']:.6g} native={e['native']}"
            )
    return payload


def check_parity(payload: dict) -> list[str]:
    """All three lanes must agree bit-for-bit on everything simulated."""
    problems = []
    for name in ENGINES:
        base_row = payload["engines"][name]
        for suffix in LANES:
            if not suffix:
                continue
            row = payload["engines"][name + suffix]
            for field in PARITY_FIELDS:
                if base_row[field] != row[field]:
                    problems.append(
                        f"{name}: {field} differs between default and "
                        f"{suffix.lstrip('-')} lanes "
                        f"(default={base_row[field]!r:.80s} "
                        f"{suffix.lstrip('-')}={row[field]!r:.80s})"
                    )
    return problems


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default="BENCH_wallclock.json", help="output JSON path"
    )
    parser.add_argument(
        "--iters",
        type=int,
        default=WORKLOAD["max_iter"],
        help="iteration count (CI smoke runs use a smaller value)",
    )
    parser.add_argument("--repeats", type=int, default=REPEATS)
    parser.add_argument(
        "--check-parity",
        action="store_true",
        help="exit 1 unless all lanes (native/graph/eager) are bit-identical",
    )
    args = parser.parse_args()
    payload = run(args.iters, args.repeats)
    mismatches = check_parity(payload)
    # Trajectories are large and redundant once parity is verified; persist
    # only a digest of each.
    for row in payload["engines"].values():
        traj = row.pop("trajectory")
        row["trajectory_len"] = len(traj)
        row["trajectory_last"] = traj[-1] if traj else None
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    if mismatches:
        for line in mismatches:
            print(f"PARITY MISMATCH: {line}", file=sys.stderr)
        if args.check_parity:
            sys.exit(1)
    else:
        print("parity: native, graph and eager lanes are bit-identical")


if __name__ == "__main__":
    main()
