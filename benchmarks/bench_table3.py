"""Regenerate Table 3 (FLOPs and memory bandwidth of the GPU engines)."""

from repro.bench.experiments import table3


def test_table3_flops_and_bandwidth(benchmark, scale):
    result = benchmark.pedantic(
        table3.run, args=(scale,), rounds=1, iterations=1
    )
    print("\n" + result.to_text())

    # FastPSO's element-wise kernels sustain roughly twice the baselines'
    # achieved DRAM read throughput (paper: 106.94 vs 61.83 / 57.41 GB/s).
    assert result.read_gbs["fastpso"] > 1.6 * result.read_gbs["gpu-pso"]
    assert result.read_gbs["fastpso"] > 1.6 * result.read_gbs["hgpu-pso"]
    assert 80 < result.read_gbs["fastpso"] < 160
    assert 30 < result.read_gbs["gpu-pso"] < 80
    # All implementations execute similar arithmetic per iteration (the
    # paper's "FLOPs of each implementation is similar" observation).
    flop = result.gflop_per_iter
    assert max(flop.values()) < 3 * min(flop.values())
