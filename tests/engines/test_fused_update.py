"""Fused velocity+position update kernel (library optimization)."""

import numpy as np
import pytest

from repro.core.parameters import PSOParams
from repro.core.problem import Problem
from repro.engines import FastPSOEngine
from repro.errors import InvalidParameterError


@pytest.fixture
def problem():
    return Problem.from_benchmark("griewank", 64)


class TestFusedUpdate:
    def test_name_suffix(self):
        assert FastPSOEngine(fuse_update=True).name == "fastpso-fused"

    def test_only_global_backend(self):
        with pytest.raises(InvalidParameterError, match="global"):
            FastPSOEngine(backend="shared", fuse_update=True)
        with pytest.raises(InvalidParameterError, match="global"):
            FastPSOEngine(backend="tensorcore", fuse_update=True)

    def test_bitwise_identical_numerics(self, problem):
        params = PSOParams(seed=17)
        split = FastPSOEngine().optimize(
            problem, n_particles=64, max_iter=25, params=params
        )
        fused = FastPSOEngine(fuse_update=True).optimize(
            problem, n_particles=64, max_iter=25, params=params
        )
        assert fused.best_value == split.best_value
        np.testing.assert_array_equal(fused.best_position, split.best_position)

    def test_launches_one_kernel_instead_of_two(self, problem):
        engine = FastPSOEngine(fuse_update=True, record_launches=True)
        engine.optimize(
            problem, n_particles=64, max_iter=5, params=PSOParams(seed=1)
        )
        names = [r.kernel_name for r in engine.ctx.launcher.records]
        assert "swarm_fused_update" in names
        assert "swarm_velocity_update" not in names
        assert "swarm_position_update" not in names

    def test_faster_per_iteration(self):
        problem = Problem.from_benchmark("sphere", 128)
        params = PSOParams(seed=1)
        split = FastPSOEngine().optimize(
            problem, n_particles=4096, max_iter=4, params=params
        )
        fused = FastPSOEngine(fuse_update=True).optimize(
            problem, n_particles=4096, max_iter=4, params=params
        )
        assert fused.iteration_seconds < split.iteration_seconds

    def test_saves_a_launch_and_re_read_traffic(self):
        problem = Problem.from_benchmark("sphere", 128)
        params = PSOParams(seed=1)

        def swarm_traffic(engine):
            engine.optimize(
                problem, n_particles=4096, max_iter=3, params=params
            )
            return sum(
                r.cost.bytes_read + r.cost.bytes_written
                for r in engine.ctx.launcher.records
                if r.kernel_name.startswith("swarm_")
            )

        split = swarm_traffic(FastPSOEngine(record_launches=True))
        fused = swarm_traffic(
            FastPSOEngine(fuse_update=True, record_launches=True)
        )
        assert fused < split
