"""FastPSO GPU engine: kernels, backends, allocator interaction, timing."""

import numpy as np
import pytest

from repro.core.parameters import PSOParams
from repro.core.problem import Problem
from repro.engines import FastPSOEngine
from repro.errors import DeviceOutOfMemoryError, InvalidParameterError
from repro.gpusim.device import laptop_gpu


class TestConstruction:
    def test_backend_names(self):
        assert FastPSOEngine().name == "fastpso"
        assert FastPSOEngine(backend="shared").name == "fastpso-shared"
        assert FastPSOEngine(caching=False).name == "fastpso-nocache"
        assert (
            FastPSOEngine(backend="tensorcore", caching=False).name
            == "fastpso-tensorcore-nocache"
        )

    def test_unknown_backend(self):
        with pytest.raises(InvalidParameterError, match="backend"):
            FastPSOEngine(backend="texture")

    def test_tensorcore_requires_hardware(self):
        with pytest.raises(InvalidParameterError, match="tensor cores"):
            FastPSOEngine(laptop_gpu(), backend="tensorcore")

    def test_engine_shares_device_clock(self):
        engine = FastPSOEngine()
        assert engine.clock is engine.ctx.clock


class TestKernelDecomposition:
    def test_expected_kernels_launched(self, sphere10, small_params):
        engine = FastPSOEngine(record_launches=True)
        engine.optimize(sphere10, n_particles=32, max_iter=3, params=small_params)
        names = {r.kernel_name for r in engine.ctx.launcher.records}
        assert {
            "swarm_init_rng",
            "weights_rng",
            "swarm_velocity_update",
            "swarm_position_update",
            "evaluation_kernel",
            "pbest_update",
            "reduce_argmin_pass1",
            "reduce_argmin_pass2",
        } <= names

    def test_shared_backend_launches_smem_kernel(self, sphere10, small_params):
        engine = FastPSOEngine(backend="shared", record_launches=True)
        engine.optimize(sphere10, n_particles=32, max_iter=2, params=small_params)
        names = {r.kernel_name for r in engine.ctx.launcher.records}
        assert "swarm_velocity_update_smem" in names

    def test_tensorcore_backend_launches_wmma_kernel(self, sphere10, small_params):
        engine = FastPSOEngine(backend="tensorcore", record_launches=True)
        engine.optimize(sphere10, n_particles=32, max_iter=2, params=small_params)
        names = {r.kernel_name for r in engine.ctx.launcher.records}
        assert "swarm_velocity_update_wmma" in names

    def test_resource_aware_launches_never_oversubscribe(
        self, sphere10, small_params
    ):
        engine = FastPSOEngine(record_launches=True)
        engine.optimize(
            sphere10, n_particles=50_000, max_iter=2, params=small_params
        )
        for rec in engine.ctx.launcher.records:
            assert (
                rec.config.total_threads
                <= engine.ctx.spec.max_resident_threads
            )

    def test_full_occupancy_on_large_swarms(self, small_params):
        problem = Problem.from_benchmark("sphere", 64)
        engine = FastPSOEngine(record_launches=True)
        engine.optimize(problem, n_particles=8192, max_iter=2, params=small_params)
        update = [
            r
            for r in engine.ctx.launcher.records
            if r.kernel_name == "swarm_velocity_update"
        ]
        assert all(r.cost.occupancy > 0.9 for r in update)

    def test_particle_granularity_evaluation(self, small_params):
        problem = Problem.from_callable(
            lambda row: float(np.sum(row)), 6, (-1.0, 1.0)
        )
        engine = FastPSOEngine(record_launches=True)
        engine.optimize(problem, n_particles=16, max_iter=2, params=small_params)
        names = {r.kernel_name for r in engine.ctx.launcher.records}
        assert "evaluation_kernel_particle" in names


class TestAllocatorInteraction:
    def test_weight_matrices_recycled_with_caching(self, sphere10, small_params):
        engine = FastPSOEngine(caching=True)
        engine.optimize(sphere10, n_particles=32, max_iter=20, params=small_params)
        stats = engine.ctx.allocator.stats
        # After warm-up, every per-iteration alloc is a pool hit.
        assert stats.pool_hits >= 2 * 18
        assert stats.pool_misses <= 10

    def test_direct_allocator_pays_per_iteration(self, sphere10, small_params):
        engine = FastPSOEngine(caching=False)
        engine.optimize(sphere10, n_particles=32, max_iter=20, params=small_params)
        assert engine.ctx.allocator.stats.allocs >= 2 * 20

    def test_caching_faster_end_to_end(self, small_params):
        problem = Problem.from_benchmark("sphere", 64)
        t = {}
        for caching in (True, False):
            engine = FastPSOEngine(caching=caching)
            r = engine.optimize(
                problem, n_particles=2048, max_iter=10, params=small_params
            )
            t[caching] = r.iteration_seconds
        assert t[True] < t[False]

    def test_oom_for_oversized_swarm(self, small_params):
        problem = Problem.from_benchmark("sphere", 10_000)
        engine = FastPSOEngine(laptop_gpu())  # 4 GB
        with pytest.raises(DeviceOutOfMemoryError):
            engine.optimize(
                problem, n_particles=200_000, max_iter=1, params=small_params
            )


class TestTimingShape:
    def test_iteration_time_nearly_flat_in_particles(self, small_params):
        """The paper's Figure 4 claim at engine granularity."""
        problem = Problem.from_benchmark("sphere", 50)
        times = []
        for n in (2000, 5000):
            r = FastPSOEngine().optimize(
                problem, n_particles=n, max_iter=4, params=small_params
            )
            times.append(r.iteration_seconds)
        # 2.5x more particles must cost clearly less than 2.5x more time
        # (launch overhead and un-saturated bandwidth absorb the growth).
        assert times[1] / times[0] < 2.0

    def test_swarm_section_dominates_on_gpu_less_than_cpu(
        self, small_params
    ):
        problem = Problem.from_benchmark("sphere", 64)
        r = FastPSOEngine().optimize(
            problem, n_particles=2048, max_iter=5, params=small_params
        )
        assert r.step_times.swarm < r.elapsed_seconds
