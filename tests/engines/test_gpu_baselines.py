"""gpu-pso and hgpu-pso baseline engines."""

import pytest

from repro.core.problem import Problem
from repro.engines import FastPSOEngine, GpuHeteroEngine, GpuParticleEngine
from repro.errors import InvalidParameterError


@pytest.fixture
def problem():
    return Problem.from_benchmark("sphere", 64)


class TestGpuParticleEngine:
    def test_thread_per_particle_launch_geometry(self, problem, small_params):
        engine = GpuParticleEngine(record_launches=True)
        engine.optimize(problem, n_particles=5000, max_iter=2, params=small_params)
        update = [
            r
            for r in engine.ctx.launcher.records
            if r.kernel_name == "particle_update"
        ]
        assert update
        for rec in update:
            # one thread per particle: ceil(5000/128) blocks of 128
            assert rec.config.grid_blocks == 40
            assert rec.config.threads_per_block == 128

    def test_starvation_occupancy(self, problem, small_params):
        engine = GpuParticleEngine(record_launches=True)
        engine.optimize(problem, n_particles=5000, max_iter=2, params=small_params)
        update = [
            r
            for r in engine.ctx.launcher.records
            if r.kernel_name == "particle_update"
        ]
        assert all(r.cost.occupancy < 0.05 for r in update)

    def test_slower_than_fastpso_at_paper_scale(self, small_params):
        problem = Problem.from_benchmark("sphere", 128)
        fast = FastPSOEngine().optimize(
            problem, n_particles=4096, max_iter=3, params=small_params
        )
        base = GpuParticleEngine().optimize(
            problem, n_particles=4096, max_iter=3, params=small_params
        )
        assert base.iteration_seconds > 3 * fast.iteration_seconds

    def test_memory_released(self, problem, small_params):
        engine = GpuParticleEngine()
        engine.optimize(problem, n_particles=128, max_iter=2, params=small_params)
        engine.optimize(problem, n_particles=128, max_iter=2, params=small_params)
        # buffers freed and re-allocated between runs without leaking
        assert engine.ctx.allocator.live_buffers == 5


class TestGpuHeteroEngine:
    def test_slower_than_pure_gpu(self, problem, small_params):
        pure = GpuParticleEngine().optimize(
            problem, n_particles=4096, max_iter=3, params=small_params
        )
        hetero = GpuHeteroEngine().optimize(
            problem, n_particles=4096, max_iter=3, params=small_params
        )
        assert hetero.iteration_seconds > pure.iteration_seconds

    def test_identical_numerics_to_pure_gpu(self, problem, small_params):
        pure = GpuParticleEngine().optimize(
            problem, n_particles=64, max_iter=10, params=small_params
        )
        hetero = GpuHeteroEngine().optimize(
            problem, n_particles=64, max_iter=10, params=small_params
        )
        assert pure.best_value == hetero.best_value

    def test_cpu_threads_validated(self):
        with pytest.raises(InvalidParameterError):
            GpuHeteroEngine(cpu_threads=0)

    def test_eval_step_includes_transfer_cost(self, problem, small_params):
        hetero = GpuHeteroEngine()
        r = hetero.optimize(
            problem, n_particles=4096, max_iter=3, params=small_params
        )
        pure = GpuParticleEngine().optimize(
            problem, n_particles=4096, max_iter=3, params=small_params
        )
        assert r.step_times.eval > pure.step_times.eval
