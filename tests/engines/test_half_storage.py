"""Half-precision swarm storage mode (future-work extension)."""

import numpy as np
import pytest

from repro.core.parameters import PSOParams
from repro.core.problem import Problem
from repro.engines import FastPSOEngine
from repro.errors import InvalidParameterError


@pytest.fixture
def problem():
    return Problem.from_benchmark("sphere", 64)


class TestHalfStorage:
    def test_name_suffix(self):
        assert FastPSOEngine(half_storage=True).name == "fastpso-fp16"

    def test_incompatible_with_tensorcore_backend(self):
        with pytest.raises(InvalidParameterError, match="redundant"):
            FastPSOEngine(backend="tensorcore", half_storage=True)

    def test_swarm_arrays_are_fp16(self, problem, small_params):
        engine = FastPSOEngine(half_storage=True)
        rng = engine._make_rng(small_params.seed)
        engine._build_kernels(problem, small_params)
        state = engine._initialize(problem, small_params, 16, rng)
        assert state.positions.dtype == np.float16
        assert state.velocities.dtype == np.float16
        engine._release_persistent()

    def test_faster_per_iteration_than_fp32(self, problem):
        params = PSOParams(seed=3)
        full = FastPSOEngine().optimize(
            problem, n_particles=2048, max_iter=5, params=params
        )
        half = FastPSOEngine(half_storage=True).optimize(
            problem, n_particles=2048, max_iter=5, params=params
        )
        assert half.iteration_seconds < full.iteration_seconds

    def test_halves_swarm_kernel_traffic(self, problem):
        params = PSOParams(seed=3)

        def update_traffic(engine):
            engine.optimize(
                problem, n_particles=1024, max_iter=3, params=params
            )
            return sum(
                r.cost.bytes_read + r.cost.bytes_written
                for r in engine.ctx.launcher.records
                if r.kernel_name == "swarm_velocity_update"
            )

        full = update_traffic(FastPSOEngine(record_launches=True))
        half = update_traffic(
            FastPSOEngine(half_storage=True, record_launches=True)
        )
        assert half == pytest.approx(full / 2)

    def test_halves_device_memory_footprint(self, problem):
        params = PSOParams(seed=3)
        peaks = {}
        for half in (False, True):
            r = FastPSOEngine(half_storage=half).optimize(
                problem, n_particles=4096, max_iter=2, params=params
            )
            peaks[half] = r.peak_device_bytes
        assert peaks[True] < 0.7 * peaks[False]

    def test_quality_close_to_fp32(self, problem):
        """fp16 rounding perturbs but does not break the search."""
        params = PSOParams(seed=3)
        full = FastPSOEngine().optimize(
            problem, n_particles=512, max_iter=100, params=params
        )
        half = FastPSOEngine(half_storage=True).optimize(
            problem, n_particles=512, max_iter=100, params=params
        )
        assert half.best_value != full.best_value  # genuinely different path
        assert half.best_value == pytest.approx(full.best_value, rel=1.0)

    def test_same_philox_consumption(self, problem):
        """fp16 runs consume the same stream blocks as fp32 runs."""
        from repro.gpusim.rng import ParallelRNG

        from repro.core.swarm import draw_weights

        a = ParallelRNG(5)
        draw_weights(a, 7, 3, dtype=np.float32)
        b = ParallelRNG(5)
        draw_weights(b, 7, 3, dtype=np.float16)
        assert a.position == b.position

    def test_combines_with_fused_update(self, problem):
        params = PSOParams(seed=3)
        engine = FastPSOEngine(half_storage=True, fuse_update=True)
        assert engine.name == "fastpso-fused-fp16"
        r = engine.optimize(problem, n_particles=256, max_iter=10, params=params)
        assert np.isfinite(r.best_value)
