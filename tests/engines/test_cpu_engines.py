"""fastpso-seq and fastpso-omp CPU engine models."""

import pytest

from repro.core.problem import Problem
from repro.engines import OpenMPEngine, SequentialEngine
from repro.errors import InvalidParameterError


@pytest.fixture
def problem():
    return Problem.from_benchmark("sphere", 64)


class TestSequentialEngine:
    def test_swarm_update_dominates(self, problem, small_params):
        """Paper Figure 5: >80 % of CPU time is the swarm update."""
        r = SequentialEngine().optimize(
            problem, n_particles=2048, max_iter=5, params=small_params
        )
        assert r.step_times.swarm / r.elapsed_seconds > 0.6

    def test_time_scales_linearly_with_elements(self, small_params):
        times = []
        for d in (32, 64, 128):
            problem = Problem.from_benchmark("sphere", d)
            r = SequentialEngine().optimize(
                problem, n_particles=1024, max_iter=3, params=small_params
            )
            times.append(r.iteration_seconds)
        assert times[1] / times[0] == pytest.approx(2.0, rel=0.15)
        assert times[2] / times[1] == pytest.approx(2.0, rel=0.15)

    def test_transcendental_functions_cost_more(self, small_params):
        t = {}
        for name in ("sphere", "easom"):
            problem = Problem.from_benchmark(name, 64)
            r = SequentialEngine().optimize(
                problem, n_particles=1024, max_iter=3, params=small_params
            )
            t[name] = r.step_times.eval
        assert t["easom"] > 2 * t["sphere"]


class TestOpenMPEngine:
    def test_faster_than_sequential_but_bandwidth_walled(
        self, problem, small_params
    ):
        """The paper's ~1.2-1.8x OpenMP speedup on 20 cores."""
        seq = SequentialEngine().optimize(
            problem, n_particles=2048, max_iter=5, params=small_params
        )
        omp = OpenMPEngine().optimize(
            problem, n_particles=2048, max_iter=5, params=small_params
        )
        ratio = seq.iteration_seconds / omp.iteration_seconds
        assert 1.1 < ratio < 3.0

    def test_thread_count_configurable(self, problem, small_params):
        two = OpenMPEngine(threads=2).optimize(
            problem, n_particles=2048, max_iter=3, params=small_params
        )
        twenty = OpenMPEngine(threads=20).optimize(
            problem, n_particles=2048, max_iter=3, params=small_params
        )
        assert twenty.iteration_seconds <= two.iteration_seconds

    def test_thread_validation(self):
        with pytest.raises(InvalidParameterError):
            OpenMPEngine(threads=0)

    def test_eval_parallelises_well(self, small_params):
        """Evaluation (compute-bound for Easom) scales with threads."""
        problem = Problem.from_benchmark("easom", 64)
        seq = SequentialEngine().optimize(
            problem, n_particles=2048, max_iter=3, params=small_params
        )
        omp = OpenMPEngine().optimize(
            problem, n_particles=2048, max_iter=3, params=small_params
        )
        assert omp.step_times.eval < seq.step_times.eval / 4
