"""pyswarms-like and scikit-opt-like library baseline models."""

import numpy as np
import pytest

from repro.core.parameters import PSOParams
from repro.core.problem import Problem
from repro.engines import (
    FastPSOEngine,
    PySwarmsLikeEngine,
    ScikitOptLikeEngine,
)
from repro.engines.lib_base import VELOCITY_GUARD


@pytest.fixture
def problem():
    return Problem.from_benchmark("sphere", 32)


class TestDivergentDynamics:
    def test_unclamped_velocities_explode_but_stay_finite(
        self, problem, small_params
    ):
        """The guard replaces overflow; values stay finite, search degrades."""
        r = PySwarmsLikeEngine().optimize(
            problem,
            n_particles=64,
            max_iter=300,
            params=small_params,
            record_history=True,
        )
        assert np.isfinite(r.best_value)

    def test_library_error_far_worse_than_fastpso(self, small_params):
        """Table 2's separation at reduced scale."""
        problem = Problem.from_benchmark("sphere", 50)
        lib = PySwarmsLikeEngine().optimize(
            problem, n_particles=200, max_iter=300, params=small_params
        )
        fast = FastPSOEngine().optimize(
            problem, n_particles=200, max_iter=300, params=small_params
        )
        assert lib.error > 20 * fast.error

    def test_scikit_clips_positions(self, problem, small_params):
        engine = ScikitOptLikeEngine()
        assert engine.clip_positions
        r = engine.optimize(
            problem, n_particles=32, max_iter=100, params=small_params
        )
        assert np.isfinite(r.best_value)

    def test_velocity_guard_magnitude(self):
        assert VELOCITY_GUARD >= 1e9  # must never constrain a sane search


class TestCostStructure:
    def test_library_much_slower_than_gpu(self, small_params):
        problem = Problem.from_benchmark("sphere", 100)
        lib = PySwarmsLikeEngine().optimize(
            problem, n_particles=2000, max_iter=3, params=small_params
        )
        fast = FastPSOEngine().optimize(
            problem, n_particles=2000, max_iter=3, params=small_params
        )
        assert lib.iteration_seconds > 50 * fast.iteration_seconds

    def test_scikit_per_particle_eval_scales_with_n(self, small_params):
        problem = Problem.from_benchmark("sphere", 16)
        t = []
        for n in (500, 2000):
            r = ScikitOptLikeEngine().optimize(
                problem, n_particles=n, max_iter=3, params=small_params
            )
            t.append(r.step_times.eval)
        assert t[1] > 3 * t[0]

    def test_scikit_eval_sensitive_to_transcendentals(self, small_params):
        """Griewank ~2x Sphere for scikit-opt (paper Table 1)."""
        t = {}
        for name in ("sphere", "griewank"):
            problem = Problem.from_benchmark(name, 64)
            r = ScikitOptLikeEngine().optimize(
                problem, n_particles=2000, max_iter=3, params=small_params
            )
            t[name] = r.iteration_seconds
        assert 1.2 < t["griewank"] / t["sphere"] < 3.5


class TestScikitEarlyStop:
    def test_disabled_by_default(self, problem, small_params):
        r = ScikitOptLikeEngine().optimize(
            problem, n_particles=16, max_iter=30, params=small_params
        )
        assert r.iterations == 30

    def test_patience_stops_on_plateau(self, small_params):
        """Easom's flat landscape stalls immediately (the paper's anomaly)."""
        problem = Problem.from_benchmark("easom", 50)
        engine = ScikitOptLikeEngine()
        engine.early_stop_patience = 20
        r = engine.optimize(
            problem, n_particles=64, max_iter=500, params=small_params
        )
        assert r.iterations < 100

    def test_patience_respects_user_stop_too(self, problem, small_params):
        from repro.core.stopping import MaxIterations

        engine = ScikitOptLikeEngine()
        engine.early_stop_patience = 10_000
        r = engine.optimize(
            problem,
            n_particles=16,
            max_iter=50,
            params=small_params,
            stop=MaxIterations(5),
        )
        assert r.iterations == 5
