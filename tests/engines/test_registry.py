"""Engine factory and name registry."""

import pytest

from repro.engines import ENGINE_NAMES, make_engine
from repro.errors import InvalidParameterError


class TestRegistry:
    def test_all_seven_paper_names(self):
        assert set(ENGINE_NAMES) == {
            "pyswarms",
            "scikit-opt",
            "gpu-pso",
            "hgpu-pso",
            "fastpso-seq",
            "fastpso-omp",
            "fastpso",
        }

    @pytest.mark.parametrize("name", ENGINE_NAMES)
    def test_factory_produces_named_engine(self, name):
        assert make_engine(name).name == name

    def test_factory_case_insensitive(self):
        assert make_engine("FastPSO").name == "fastpso"

    def test_unknown_engine(self):
        with pytest.raises(InvalidParameterError, match="unknown engine"):
            make_engine("cuda-pso")

    def test_kwargs_forwarded(self):
        engine = make_engine("fastpso", backend="shared")
        assert engine.name == "fastpso-shared"

    def test_gpu_flags(self):
        assert make_engine("fastpso").is_gpu
        assert make_engine("gpu-pso").is_gpu
        assert not make_engine("fastpso-seq").is_gpu
        assert not make_engine("pyswarms").is_gpu
