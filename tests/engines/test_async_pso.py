"""Chunked asynchronous PSO engine (Section 5.1-style extension)."""

import numpy as np
import pytest

from repro.core.parameters import PSOParams
from repro.core.problem import Problem
from repro.engines import AsyncFastPSOEngine, FastPSOEngine
from repro.errors import InvalidParameterError


@pytest.fixture
def problem():
    return Problem.from_benchmark("griewank", 24)


@pytest.fixture
def params():
    return PSOParams(seed=9)


class TestConstruction:
    def test_name_encodes_chunks(self):
        assert AsyncFastPSOEngine(n_chunks=8).name == "fastpso-async8"

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            AsyncFastPSOEngine(n_chunks=0)
        with pytest.raises(InvalidParameterError, match="global"):
            AsyncFastPSOEngine(backend="shared")

    def test_chunk_slices_partition_exactly(self):
        engine = AsyncFastPSOEngine(n_chunks=3)
        slices = list(engine._chunk_slices(10))
        sizes = [s.stop - s.start for s in slices]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1
        assert slices[0].start == 0 and slices[-1].stop == 10

    def test_more_chunks_than_particles(self):
        engine = AsyncFastPSOEngine(n_chunks=64)
        slices = list(engine._chunk_slices(5))
        assert len(slices) == 5


class TestSingleChunkDegenerate:
    def test_bitwise_equal_to_synchronous(self, problem, params):
        sync = FastPSOEngine().optimize(
            problem, n_particles=60, max_iter=30, params=params
        )
        async1 = AsyncFastPSOEngine(n_chunks=1).optimize(
            problem, n_particles=60, max_iter=30, params=params
        )
        assert async1.best_value == sync.best_value
        np.testing.assert_array_equal(
            async1.best_position, sync.best_position
        )


class TestAsyncBehaviour:
    def test_different_trajectory_than_sync(self, problem, params):
        sync = FastPSOEngine().optimize(
            problem, n_particles=60, max_iter=30, params=params
        )
        async4 = AsyncFastPSOEngine(n_chunks=4).optimize(
            problem, n_particles=60, max_iter=30, params=params
        )
        assert async4.best_value != sync.best_value

    def test_optimises(self, problem, params):
        r = AsyncFastPSOEngine(n_chunks=4).optimize(
            problem, n_particles=120, max_iter=150, params=params
        )
        assert r.best_value < 50  # random init scores in the hundreds

    def test_gbest_monotone(self, problem, params):
        r = AsyncFastPSOEngine(n_chunks=4).optimize(
            problem,
            n_particles=60,
            max_iter=40,
            params=params,
            record_history=True,
        )
        g = r.history.gbest_values
        assert all(b <= a + 1e-12 for a, b in zip(g, g[1:]))

    def test_pays_extra_launch_overhead(self, problem, params):
        """Same bytes, C times the launches: async costs more per iteration
        at small scale — the reason the paper's design is synchronous."""
        sync = FastPSOEngine().optimize(
            problem, n_particles=60, max_iter=10, params=params
        )
        async8 = AsyncFastPSOEngine(n_chunks=8).optimize(
            problem, n_particles=60, max_iter=10, params=params
        )
        assert async8.iteration_seconds > sync.iteration_seconds

    def test_deterministic(self, problem, params):
        a = AsyncFastPSOEngine(n_chunks=4).optimize(
            problem, n_particles=60, max_iter=20, params=params
        )
        b = AsyncFastPSOEngine(n_chunks=4).optimize(
            problem, n_particles=60, max_iter=20, params=params
        )
        assert a.best_value == b.best_value

    def test_memory_balanced(self, problem, params):
        engine = AsyncFastPSOEngine(n_chunks=4)
        engine.optimize(problem, n_particles=60, max_iter=10, params=params)
        assert engine.ctx.allocator.live_buffers == 0
