"""Cross-engine equivalence: one algorithm, many substrates.

The paper's fastpso / fastpso-seq / fastpso-omp / gpu-pso comparisons are
meaningful because they run the same algorithm.  Our engines share one
Philox stream layout and one set of numerics, so with equal seeds the
fastpso-family trajectories must be *bit identical* — tensor cores differ
only by fp16 rounding, and the CPU-library baselines differ algorithmically
(by design).
"""

import numpy as np
import pytest

from repro.core.parameters import PSOParams
from repro.core.problem import Problem
from repro.engines import (
    FastPSOEngine,
    GpuHeteroEngine,
    GpuParticleEngine,
    OpenMPEngine,
    PySwarmsLikeEngine,
    ScikitOptLikeEngine,
    SequentialEngine,
)

FAMILY = [
    SequentialEngine,
    OpenMPEngine,
    GpuParticleEngine,
    GpuHeteroEngine,
    FastPSOEngine,
]


@pytest.fixture
def problem():
    return Problem.from_benchmark("griewank", 12)


@pytest.fixture
def params():
    return PSOParams(seed=31415)


class TestFamilyEquivalence:
    def test_identical_best_values(self, problem, params):
        results = [
            cls().optimize(problem, n_particles=40, max_iter=25, params=params)
            for cls in FAMILY
        ]
        values = {r.best_value for r in results}
        assert len(values) == 1, {r.engine: r.best_value for r in results}

    def test_identical_best_positions(self, problem, params):
        base = SequentialEngine().optimize(
            problem, n_particles=40, max_iter=25, params=params
        )
        for cls in FAMILY[1:]:
            other = cls().optimize(
                problem, n_particles=40, max_iter=25, params=params
            )
            np.testing.assert_array_equal(
                base.best_position, other.best_position
            )

    def test_shared_backend_bitwise_equal(self, problem, params):
        base = FastPSOEngine(backend="global").optimize(
            problem, n_particles=40, max_iter=25, params=params
        )
        shared = FastPSOEngine(backend="shared").optimize(
            problem, n_particles=40, max_iter=25, params=params
        )
        assert base.best_value == shared.best_value
        np.testing.assert_array_equal(base.best_position, shared.best_position)

    def test_tensorcore_close_but_not_identical(self, problem, params):
        base = FastPSOEngine().optimize(
            problem, n_particles=40, max_iter=25, params=params
        )
        tc = FastPSOEngine(backend="tensorcore").optimize(
            problem, n_particles=40, max_iter=25, params=params
        )
        # fp16 rounding perturbs the trajectory but not the search quality.
        assert tc.best_value != base.best_value
        assert tc.best_value == pytest.approx(base.best_value, rel=0.5)

    def test_caching_toggle_does_not_change_numerics(self, problem, params):
        a = FastPSOEngine(caching=True).optimize(
            problem, n_particles=40, max_iter=25, params=params
        )
        b = FastPSOEngine(caching=False).optimize(
            problem, n_particles=40, max_iter=25, params=params
        )
        assert a.best_value == b.best_value

    def test_different_seeds_differ(self, problem):
        a = FastPSOEngine().optimize(
            problem, n_particles=40, max_iter=25, params=PSOParams(seed=1)
        )
        b = FastPSOEngine().optimize(
            problem, n_particles=40, max_iter=25, params=PSOParams(seed=2)
        )
        assert a.best_value != b.best_value


class TestLibraryDivergence:
    def test_library_engines_follow_their_own_algorithm(self, problem, params):
        """pyswarms/scikit-opt must NOT match the clamped family."""
        family = SequentialEngine().optimize(
            problem, n_particles=40, max_iter=25, params=params
        )
        for cls in (PySwarmsLikeEngine, ScikitOptLikeEngine):
            lib = cls().optimize(
                problem, n_particles=40, max_iter=25, params=params
            )
            assert lib.best_value != family.best_value

    def test_library_engines_deterministic(self, problem, params):
        a = PySwarmsLikeEngine().optimize(
            problem, n_particles=40, max_iter=25, params=params
        )
        b = PySwarmsLikeEngine().optimize(
            problem, n_particles=40, max_iter=25, params=params
        )
        assert a.best_value == b.best_value
