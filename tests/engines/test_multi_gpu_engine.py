"""Multi-GPU particle-splitting engine (paper Section 3.5)."""

import numpy as np
import pytest

from repro.core.parameters import PSOParams
from repro.core.problem import Problem
from repro.core.stopping import TargetValue
from repro.engines import FastPSOEngine, MultiGpuFastPSOEngine
from repro.errors import InvalidParameterError


@pytest.fixture
def problem():
    return Problem.from_benchmark("griewank", 32)


@pytest.fixture
def params():
    return PSOParams(seed=11)


class TestConstruction:
    def test_name_encodes_device_count(self):
        assert MultiGpuFastPSOEngine(n_devices=4).name == "fastpso-mgpu4"

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            MultiGpuFastPSOEngine(n_devices=0)
        with pytest.raises(InvalidParameterError):
            MultiGpuFastPSOEngine(exchange_interval=0)

    def test_workers_have_distinct_device_indices(self):
        engine = MultiGpuFastPSOEngine(n_devices=3)
        assert [w.ctx.device_index for w in engine.workers] == [0, 1, 2]


class TestSingleDeviceDegenerate:
    def test_matches_single_gpu_engine_exactly(self, problem, params):
        """One device + particle splitting == plain FastPSO."""
        single = FastPSOEngine().optimize(
            problem, n_particles=256, max_iter=40, params=params
        )
        multi = MultiGpuFastPSOEngine(n_devices=1).optimize(
            problem, n_particles=256, max_iter=40, params=params
        )
        assert multi.best_value == single.best_value
        np.testing.assert_array_equal(
            multi.best_position, single.best_position
        )


class TestMultiDevice:
    def test_runs_and_optimises(self, problem, params):
        r = MultiGpuFastPSOEngine(n_devices=4, exchange_interval=10).optimize(
            problem, n_particles=256, max_iter=60, params=params
        )
        assert np.isfinite(r.best_value)
        assert r.iterations == 60
        # random init on griewank d=32 scores in the hundreds; the search
        # must have made clear progress.
        assert r.best_value < 100

    def test_global_best_is_best_of_subswarms(self, problem, params):
        engine = MultiGpuFastPSOEngine(n_devices=2, exchange_interval=5)
        r = engine.optimize(
            problem, n_particles=128, max_iter=30, params=params
        )
        # after the final exchange every device holds the global winner
        value = problem.evaluator.evaluate(
            r.best_position[np.newaxis, :]
        )[0]
        assert value == pytest.approx(r.best_value, rel=1e-5)

    def test_subswarms_use_disjoint_streams(self, problem, params):
        engine = MultiGpuFastPSOEngine(n_devices=2)
        r = engine.optimize(
            problem, n_particles=64, max_iter=5, params=params
        )
        a, b = engine.workers
        # distinct streams -> different sub-swarm trajectories
        assert r.n_particles == 64

    def test_large_swarm_runs_faster_on_more_devices(self, params):
        problem = Problem.from_benchmark("sphere", 128)
        t = {}
        for nd in (1, 4):
            engine = MultiGpuFastPSOEngine(n_devices=nd, exchange_interval=50)
            r = engine.optimize(
                problem, n_particles=100_000, max_iter=3, params=params
            )
            t[nd] = r.iteration_seconds
        assert t[4] < t[1] / 2  # real scaling once devices are saturated

    def test_history_records_global_best(self, problem, params):
        r = MultiGpuFastPSOEngine(n_devices=2, exchange_interval=5).optimize(
            problem,
            n_particles=64,
            max_iter=20,
            params=params,
            record_history=True,
        )
        assert len(r.history) == 20

    def test_early_stop_respected(self, problem, params):
        r = MultiGpuFastPSOEngine(n_devices=2).optimize(
            problem,
            n_particles=64,
            max_iter=100,
            params=params,
            stop=TargetValue(1e9),
        )
        assert r.iterations == 1

    def test_too_few_particles_rejected(self, problem, params):
        with pytest.raises(InvalidParameterError):
            MultiGpuFastPSOEngine(n_devices=8).optimize(
                problem, n_particles=4, max_iter=2, params=params
            )

    def test_exchange_costs_accounted(self, problem, params):
        frequent = MultiGpuFastPSOEngine(n_devices=4, exchange_interval=1)
        rare = MultiGpuFastPSOEngine(n_devices=4, exchange_interval=100)
        t_frequent = frequent.optimize(
            problem, n_particles=64, max_iter=50, params=params
        ).elapsed_seconds
        t_rare = rare.optimize(
            problem, n_particles=64, max_iter=50, params=params
        ).elapsed_seconds
        assert t_frequent > t_rare
