"""Public API conformance: every engine exposes one ``optimize`` signature.

The redesign's contract is that ``Engine.optimize`` is THE entry point —
keyword-only, same parameter names, same kinds, equal defaults — no matter
which engine class a caller holds.  This test introspects every registered
engine class (the paper's seven plus the library extensions) so a future
override that drifts from the base signature fails here, not in a user's
stack trace.  The ``spec``→``device`` constructor rename shim is pinned
alongside.
"""

import inspect

import pytest

from repro.core.engine import Engine
from repro.core.parameters import PAPER_DEFAULTS
from repro.engines import (
    AsyncFastPSOEngine,
    FastPSOEngine,
    GpuHeteroEngine,
    GpuParticleEngine,
    MultiGpuFastPSOEngine,
    OpenMPEngine,
    PySwarmsLikeEngine,
    ScikitOptLikeEngine,
    SequentialEngine,
)
from repro.gpusim.device import tesla_v100

#: The paper's seven engines plus the two library extensions — every class
#: the registry can return.
ALL_ENGINE_CLASSES = (
    FastPSOEngine,
    GpuParticleEngine,
    GpuHeteroEngine,
    SequentialEngine,
    OpenMPEngine,
    PySwarmsLikeEngine,
    ScikitOptLikeEngine,
    MultiGpuFastPSOEngine,
    AsyncFastPSOEngine,
)

BASE_PARAMS = inspect.signature(Engine.optimize).parameters


@pytest.mark.parametrize(
    "engine_cls", ALL_ENGINE_CLASSES, ids=lambda c: c.__name__
)
class TestOptimizeSignatureConformance:
    def test_parameter_names_and_order(self, engine_cls):
        params = inspect.signature(engine_cls.optimize).parameters
        assert list(params) == list(BASE_PARAMS)

    def test_parameter_kinds(self, engine_cls):
        """Everything after ``problem`` is keyword-only, as in the base."""
        params = inspect.signature(engine_cls.optimize).parameters
        for name, base_param in BASE_PARAMS.items():
            assert params[name].kind == base_param.kind, name

    def test_parameter_defaults(self, engine_cls):
        params = inspect.signature(engine_cls.optimize).parameters
        for name, base_param in BASE_PARAMS.items():
            assert params[name].default == base_param.default, name

    def test_params_default_is_paper_configuration(self, engine_cls):
        sig = inspect.signature(engine_cls.optimize)
        assert sig.parameters["params"].default == PAPER_DEFAULTS


class TestDeviceKeywordRename:
    """``device=`` is the unified spelling; ``spec=`` warns but works."""

    @pytest.mark.parametrize(
        "engine_cls",
        [FastPSOEngine, GpuParticleEngine, GpuHeteroEngine],
        ids=lambda c: c.__name__,
    )
    def test_device_keyword_accepted(self, engine_cls):
        engine = engine_cls(device=tesla_v100())
        assert engine.ctx.spec.name == tesla_v100().name

    def test_multi_gpu_device_keyword(self):
        engine = MultiGpuFastPSOEngine(2, device=tesla_v100())
        assert engine.workers[0].ctx.spec.name == tesla_v100().name

    def test_spec_keyword_warns_and_forwards(self):
        with pytest.deprecated_call(match="renamed to 'device'"):
            engine = FastPSOEngine(spec=tesla_v100())
        assert engine.ctx.spec.name == tesla_v100().name

    def test_both_spellings_rejected(self):
        with pytest.raises(TypeError, match="deprecated"):
            FastPSOEngine(spec=tesla_v100(), device=tesla_v100())
