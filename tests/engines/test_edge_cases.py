"""Degenerate and boundary configurations across all engines."""

import numpy as np
import pytest

from repro.core.parameters import PSOParams
from repro.core.problem import Problem
from repro.engines import ENGINE_NAMES, FastPSOEngine, make_engine


class TestSingleParticle:
    @pytest.mark.parametrize("engine_name", ENGINE_NAMES)
    def test_one_particle_runs(self, engine_name, small_params):
        problem = Problem.from_benchmark("sphere", 4)
        r = make_engine(engine_name).optimize(
            problem, n_particles=1, max_iter=10, params=small_params
        )
        assert np.isfinite(r.best_value)
        assert r.best_position.shape == (4,)

    def test_single_particle_pbest_is_gbest(self, small_params):
        problem = Problem.from_benchmark("sphere", 4)
        r = FastPSOEngine().optimize(
            problem, n_particles=1, max_iter=10, params=small_params
        )
        assert r.error == pytest.approx(abs(r.best_value))


class TestOneDimension:
    @pytest.mark.parametrize(
        "engine_name", ("fastpso", "fastpso-seq", "pyswarms")
    )
    def test_d1_runs(self, engine_name, small_params):
        problem = Problem.from_benchmark("sphere", 1)
        r = make_engine(engine_name).optimize(
            problem, n_particles=16, max_iter=30, params=small_params
        )
        assert np.isfinite(r.best_value)

    def test_d1_converges(self, small_params):
        problem = Problem.from_benchmark("sphere", 1)
        r = FastPSOEngine().optimize(
            problem, n_particles=64, max_iter=100, params=small_params
        )
        assert r.best_value < 0.1


class TestSingleIteration:
    def test_one_iteration_evaluates_once(self, sphere10, small_params):
        r = FastPSOEngine().optimize(
            sphere10, n_particles=16, max_iter=1, params=small_params
        )
        assert r.iterations == 1
        assert np.isfinite(r.best_value)


class TestRingSmallSwarms:
    def test_ring_with_two_particles(self, sphere10):
        params = PSOParams(seed=1, topology="ring")
        r = FastPSOEngine().optimize(
            sphere10, n_particles=2, max_iter=10, params=params
        )
        assert np.isfinite(r.best_value)

    def test_ring_with_three_particles(self, sphere10):
        params = PSOParams(seed=1, topology="ring")
        r = FastPSOEngine().optimize(
            sphere10, n_particles=3, max_iter=10, params=params
        )
        assert np.isfinite(r.best_value)


class TestUnclampedFamily:
    def test_fastpso_without_clamp_still_finishes(self, sphere10):
        params = PSOParams(seed=1, velocity_clamp=None)
        r = FastPSOEngine().optimize(
            sphere10, n_particles=16, max_iter=50, params=params
        )
        assert np.isfinite(r.best_value)  # pbest keeps a pre-divergence value


class TestZeroSocialOrCognitive:
    def test_pure_cognitive(self, sphere10):
        params = PSOParams(seed=1, social=0.0)
        r = FastPSOEngine().optimize(
            sphere10, n_particles=32, max_iter=50, params=params
        )
        assert np.isfinite(r.best_value)

    def test_pure_social(self, sphere10):
        params = PSOParams(seed=1, cognitive=0.0)
        r = FastPSOEngine().optimize(
            sphere10, n_particles=32, max_iter=50, params=params
        )
        assert np.isfinite(r.best_value)


class TestNonSquareShapes:
    def test_odd_particle_and_dim_counts(self, small_params):
        """Shapes that don't align with warps, blocks or tiles."""
        problem = Problem.from_benchmark("griewank", 33)
        for backend in ("global", "shared", "tensorcore"):
            r = FastPSOEngine(backend=backend).optimize(
                problem, n_particles=37, max_iter=7, params=small_params
            )
            assert np.isfinite(r.best_value)

    def test_prime_sizes_match_across_backends(self, small_params):
        problem = Problem.from_benchmark("sphere", 13)
        a = FastPSOEngine(backend="global").optimize(
            problem, n_particles=17, max_iter=11, params=small_params
        )
        b = FastPSOEngine(backend="shared").optimize(
            problem, n_particles=17, max_iter=11, params=small_params
        )
        assert a.best_value == b.best_value


class TestLargeDimensionSmallSwarm:
    def test_tall_thin_and_short_wide(self, small_params):
        tall = Problem.from_benchmark("sphere", 2000)
        r1 = FastPSOEngine().optimize(
            tall, n_particles=4, max_iter=3, params=small_params
        )
        wide = Problem.from_benchmark("sphere", 2)
        r2 = FastPSOEngine().optimize(
            wide, n_particles=4000, max_iter=3, params=small_params
        )
        assert np.isfinite(r1.best_value) and np.isfinite(r2.best_value)
