"""PSOParams validation and paper defaults."""

import pytest

from repro.core.parameters import PAPER_DEFAULTS, PSOParams
from repro.errors import InvalidParameterError


class TestPaperDefaults:
    def test_matches_section_41(self):
        assert PAPER_DEFAULTS.inertia == 0.9
        assert PAPER_DEFAULTS.cognitive == 2.0
        assert PAPER_DEFAULTS.social == 2.0

    def test_clamping_enabled_by_default(self):
        assert PAPER_DEFAULTS.velocity_clamp == 1.0
        assert PAPER_DEFAULTS.adaptive_velocity

    def test_global_topology_default(self):
        assert PAPER_DEFAULTS.topology == "global"


class TestValidation:
    def test_inertia_bounds(self):
        with pytest.raises(InvalidParameterError):
            PSOParams(inertia=-0.1)
        with pytest.raises(InvalidParameterError):
            PSOParams(inertia=2.5)

    def test_negative_coefficients(self):
        with pytest.raises(InvalidParameterError):
            PSOParams(cognitive=-1.0)
        with pytest.raises(InvalidParameterError):
            PSOParams(social=-1.0)

    def test_both_zero_coefficients_rejected(self):
        with pytest.raises(InvalidParameterError, match="accelerate"):
            PSOParams(cognitive=0.0, social=0.0)

    def test_one_zero_coefficient_allowed(self):
        PSOParams(cognitive=0.0, social=1.0)
        PSOParams(cognitive=1.0, social=0.0)

    def test_velocity_clamp_positive_or_none(self):
        PSOParams(velocity_clamp=None)
        PSOParams(velocity_clamp=0.5)
        with pytest.raises(InvalidParameterError):
            PSOParams(velocity_clamp=0.0)
        with pytest.raises(InvalidParameterError):
            PSOParams(velocity_clamp=-1.0)

    def test_final_velocity_fraction_range(self):
        PSOParams(final_velocity_fraction=1.0)
        with pytest.raises(InvalidParameterError):
            PSOParams(final_velocity_fraction=0.0)
        with pytest.raises(InvalidParameterError):
            PSOParams(final_velocity_fraction=1.5)

    def test_seed_range(self):
        PSOParams(seed=0)
        PSOParams(seed=2**64 - 1)
        with pytest.raises(InvalidParameterError):
            PSOParams(seed=2**64)

    def test_topology_whitelist(self):
        PSOParams(topology="ring")
        with pytest.raises(InvalidParameterError):
            PSOParams(topology="torus")

    def test_with_overrides(self):
        p = PSOParams().with_overrides(inertia=0.5, seed=9)
        assert p.inertia == 0.5 and p.seed == 9
        assert PAPER_DEFAULTS.inertia == 0.9  # original untouched

    def test_frozen(self):
        with pytest.raises(AttributeError):
            PSOParams().inertia = 0.1  # type: ignore[misc]
