"""Inertia schedules and the constriction coefficient."""

import pytest

from repro.core.parameters import PSOParams
from repro.core.problem import Problem
from repro.core.schedules import (
    ChaoticInertia,
    ConstantInertia,
    LinearInertia,
    constriction_coefficient,
    make_schedule,
)
from repro.engines import FastPSOEngine, SequentialEngine
from repro.errors import InvalidParameterError


class TestConstant:
    def test_same_everywhere(self):
        s = ConstantInertia(0.7)
        assert s.weight(0.0) == s.weight(0.5) == s.weight(1.0) == 0.7

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            ConstantInertia(2.5)
        with pytest.raises(InvalidParameterError):
            ConstantInertia(0.5).weight(1.5)


class TestLinear:
    def test_endpoints(self):
        s = LinearInertia(0.9, 0.4)
        assert s.weight(0.0) == pytest.approx(0.9)
        assert s.weight(1.0) == pytest.approx(0.4)
        assert s.weight(0.5) == pytest.approx(0.65)

    def test_increasing_schedule_allowed(self):
        s = LinearInertia(0.2, 0.8)
        assert s.weight(1.0) > s.weight(0.0)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            LinearInertia(w_start=3.0)


class TestChaotic:
    def test_deterministic(self):
        s = ChaoticInertia()
        assert s.weight(0.37) == s.weight(0.37)

    def test_bounded_between_endpoints_scale(self):
        s = ChaoticInertia(0.9, 0.4)
        for p in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert 0.0 < s.weight(p) <= 0.9 + 1e-9

    def test_z0_validation(self):
        with pytest.raises(InvalidParameterError):
            ChaoticInertia(z0=0.5)  # logistic fixed point
        with pytest.raises(InvalidParameterError):
            ChaoticInertia(z0=0.0)


class TestConstriction:
    def test_classic_value(self):
        # c1 = c2 = 2.05 is the canonical Clerc setting: chi ~ 0.7298
        assert constriction_coefficient(2.05, 2.05) == pytest.approx(
            0.72984, abs=1e-4
        )

    def test_requires_phi_above_four(self):
        with pytest.raises(InvalidParameterError):
            constriction_coefficient(2.0, 2.0)


class TestFactory:
    def test_by_name(self):
        assert isinstance(make_schedule("constant"), ConstantInertia)
        assert isinstance(make_schedule("linear", w_end=0.3), LinearInertia)
        assert isinstance(make_schedule("chaotic"), ChaoticInertia)

    def test_unknown(self):
        with pytest.raises(InvalidParameterError):
            make_schedule("cosine")


class TestEngineIntegration:
    def test_schedule_changes_trajectory(self, sphere10):
        fixed = FastPSOEngine().optimize(
            sphere10, n_particles=32, max_iter=30, params=PSOParams(seed=4)
        )
        scheduled = FastPSOEngine().optimize(
            sphere10,
            n_particles=32,
            max_iter=30,
            params=PSOParams(seed=4, inertia_schedule=LinearInertia()),
        )
        assert scheduled.best_value != fixed.best_value

    def test_scheduled_runs_stay_cross_engine_identical(self, sphere10):
        params = PSOParams(seed=4, inertia_schedule=LinearInertia())
        gpu = FastPSOEngine().optimize(
            sphere10, n_particles=32, max_iter=30, params=params
        )
        cpu = SequentialEngine().optimize(
            sphere10, n_particles=32, max_iter=30, params=params
        )
        assert gpu.best_value == cpu.best_value

    def test_linear_decay_improves_convergence_with_fixed_clamp(self):
        """Annealing w tames the paper's divergent w=0.9 setting."""
        problem = Problem.from_benchmark("sphere", 30)
        base = dict(seed=9, adaptive_velocity=False)
        fixed = FastPSOEngine().optimize(
            problem, n_particles=200, max_iter=300, params=PSOParams(**base)
        )
        annealed = FastPSOEngine().optimize(
            problem,
            n_particles=200,
            max_iter=300,
            params=PSOParams(**base, inertia_schedule=LinearInertia(0.9, 0.3)),
        )
        assert annealed.best_value < fixed.best_value

    def test_schedule_object_validated(self):
        with pytest.raises(InvalidParameterError):
            PSOParams(inertia_schedule="linear")  # type: ignore[arg-type]
