"""Swarm initialization strategies."""

import numpy as np
import pytest

from repro.core.initializers import INIT_STRATEGIES, initialize_swarm
from repro.core.parameters import PSOParams
from repro.core.swarm import draw_initial_state
from repro.engines import FastPSOEngine, SequentialEngine
from repro.errors import InvalidParameterError
from repro.gpusim.rng import ParallelRNG


class TestUniform:
    def test_matches_canonical_draw(self, sphere10):
        """'uniform' must be the draw_initial_state path, bit for bit."""
        a = initialize_swarm(sphere10, 24, ParallelRNG(5), "uniform")
        b = draw_initial_state(sphere10, 24, ParallelRNG(5))
        np.testing.assert_array_equal(a.positions, b.positions)
        np.testing.assert_array_equal(a.velocities, b.velocities)


class TestOpposition:
    def test_second_half_mirrors_first(self, sphere10):
        state = initialize_swarm(sphere10, 20, ParallelRNG(3), "opposition")
        lo = sphere10.lower_bounds
        hi = sphere10.upper_bounds
        mirrored = (lo + hi - state.positions[:10]).astype(np.float32)
        np.testing.assert_allclose(
            state.positions[10:], mirrored, rtol=1e-6
        )

    def test_odd_particle_count(self, sphere10):
        state = initialize_swarm(sphere10, 7, ParallelRNG(3), "opposition")
        assert state.positions.shape == (7, 10)

    def test_positions_within_domain(self, sphere10):
        state = initialize_swarm(sphere10, 50, ParallelRNG(3), "opposition")
        assert np.all(state.positions >= sphere10.lower_bounds - 1e-5)
        assert np.all(state.positions <= sphere10.upper_bounds + 1e-5)

    def test_centroid_near_domain_centre(self, sphere10):
        """Opposition pairs average exactly to the centre."""
        state = initialize_swarm(sphere10, 40, ParallelRNG(3), "opposition")
        centre = (sphere10.lower_bounds + sphere10.upper_bounds) / 2
        np.testing.assert_allclose(
            state.positions.mean(axis=0), centre, atol=1e-5
        )


class TestCenter:
    def test_tight_around_centre(self, sphere10):
        state = initialize_swarm(sphere10, 30, ParallelRNG(3), "center")
        centre = (sphere10.lower_bounds + sphere10.upper_bounds) / 2
        width = sphere10.domain_width
        assert np.all(np.abs(state.positions - centre) <= 0.011 * width)


class TestValidation:
    def test_strategy_whitelist(self, sphere10):
        with pytest.raises(InvalidParameterError, match="strategy"):
            initialize_swarm(sphere10, 4, ParallelRNG(1), "sobol")

    def test_particle_count(self, sphere10):
        with pytest.raises(InvalidParameterError):
            initialize_swarm(sphere10, 0, ParallelRNG(1))

    def test_all_strategies_enumerated(self):
        assert set(INIT_STRATEGIES) == {"uniform", "opposition", "center"}


class TestEngineIntegration:
    def test_params_select_strategy(self, sphere10):
        uniform = FastPSOEngine().optimize(
            sphere10, n_particles=32, max_iter=10,
            params=PSOParams(seed=2, init_strategy="uniform"),
        )
        opposition = FastPSOEngine().optimize(
            sphere10, n_particles=32, max_iter=10,
            params=PSOParams(seed=2, init_strategy="opposition"),
        )
        assert uniform.best_value != opposition.best_value

    def test_cross_engine_identity_holds_per_strategy(self, sphere10):
        params = PSOParams(seed=2, init_strategy="opposition")
        gpu = FastPSOEngine().optimize(
            sphere10, n_particles=32, max_iter=10, params=params
        )
        cpu = SequentialEngine().optimize(
            sphere10, n_particles=32, max_iter=10, params=params
        )
        assert gpu.best_value == cpu.best_value

    def test_invalid_strategy_rejected_in_params(self):
        with pytest.raises(InvalidParameterError):
            PSOParams(init_strategy="sobol")
