"""Evaluation schemas: built-in, element-wise template, per-particle."""

import numpy as np
import pytest

from repro.core.schema import (
    BuiltinEvaluation,
    ElementwiseEvaluation,
    ParticleEvaluation,
)
from repro.errors import EvaluationError
from repro.functions import Griewank, Sphere


class TestBuiltinEvaluation:
    def test_wraps_function(self):
        schema = BuiltinEvaluation(Sphere())
        vals = schema.evaluate(np.array([[3.0, 4.0]]))
        np.testing.assert_allclose(vals, [25.0])

    def test_profile_passthrough(self):
        assert BuiltinEvaluation(Griewank()).profile().sfu_per_elem == 1.0

    def test_rejects_non_function(self):
        with pytest.raises(TypeError):
            BuiltinEvaluation(lambda x: x)  # type: ignore[arg-type]

    def test_granularity(self):
        assert BuiltinEvaluation(Sphere()).granularity == "elementwise"


class TestElementwiseEvaluation:
    def test_sum_reducer(self):
        schema = ElementwiseEvaluation(lambda p: p * p)
        vals = schema.evaluate(np.array([[1.0, 2.0], [3.0, 0.0]]))
        np.testing.assert_allclose(vals, [5.0, 9.0])

    def test_prod_reducer(self):
        schema = ElementwiseEvaluation(lambda p: p + 1.0, reducer="prod")
        vals = schema.evaluate(np.array([[1.0, 2.0]]))
        np.testing.assert_allclose(vals, [6.0])

    def test_max_min_reducers(self):
        p = np.array([[1.0, -2.0, 3.0]])
        assert ElementwiseEvaluation(lambda x: x, reducer="max").evaluate(p) == [3.0]
        assert ElementwiseEvaluation(lambda x: x, reducer="min").evaluate(p) == [-2.0]

    def test_pass_index(self):
        schema = ElementwiseEvaluation(
            lambda p, j: (j + 1.0) * p, pass_index=True
        )
        vals = schema.evaluate(np.array([[1.0, 1.0, 1.0]]))
        np.testing.assert_allclose(vals, [6.0])

    def test_unknown_reducer(self):
        with pytest.raises(EvaluationError, match="reducer"):
            ElementwiseEvaluation(lambda p: p, reducer="mean")

    def test_shape_changing_fn_rejected(self):
        schema = ElementwiseEvaluation(lambda p: p[:, :1])
        with pytest.raises(EvaluationError, match="preserve shape"):
            schema.evaluate(np.ones((3, 4)))

    def test_user_exception_wrapped(self):
        def boom(p):
            raise RuntimeError("broken lambda")

        with pytest.raises(EvaluationError, match="broken lambda"):
            ElementwiseEvaluation(boom).evaluate(np.ones((2, 2)))

    def test_nan_rejected(self):
        schema = ElementwiseEvaluation(lambda p: p * np.nan)
        with pytest.raises(EvaluationError, match="NaN"):
            schema.evaluate(np.ones((2, 2)))

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError):
            ElementwiseEvaluation("f")  # type: ignore[arg-type]


class TestParticleEvaluation:
    def test_scalar_objective_applied_per_row(self):
        schema = ParticleEvaluation(lambda row: float(row.sum()))
        vals = schema.evaluate(np.array([[1.0, 2.0], [3.0, 4.0]]))
        np.testing.assert_allclose(vals, [3.0, 7.0])

    def test_vectorized_objective(self):
        schema = ParticleEvaluation(
            lambda p: np.sum(p, axis=1), vectorized=True
        )
        vals = schema.evaluate(np.array([[1.0, 2.0], [3.0, 4.0]]))
        np.testing.assert_allclose(vals, [3.0, 7.0])

    def test_wrong_output_shape_rejected(self):
        schema = ParticleEvaluation(lambda p: np.zeros(3), vectorized=True)
        with pytest.raises(EvaluationError, match="shape"):
            schema.evaluate(np.ones((2, 2)))

    def test_inf_is_allowed_nan_is_not(self):
        ok = ParticleEvaluation(lambda row: np.inf)
        assert np.isinf(ok.evaluate(np.ones((1, 2)))[0])
        bad = ParticleEvaluation(lambda row: np.nan)
        with pytest.raises(EvaluationError, match="NaN"):
            bad.evaluate(np.ones((1, 2)))

    def test_user_exception_wrapped(self):
        def boom(row):
            raise ValueError("bad objective")

        with pytest.raises(EvaluationError, match="bad objective"):
            ParticleEvaluation(boom).evaluate(np.ones((1, 2)))

    def test_granularity(self):
        assert ParticleEvaluation(lambda r: 0.0).granularity == "particle"
