"""Stopping criteria semantics."""

import pytest

from repro.core.stopping import AnyOf, MaxIterations, StallStop, TargetValue
from repro.errors import InvalidParameterError


class TestMaxIterations:
    def test_fires_at_budget(self):
        stop = MaxIterations(3)
        assert not stop.should_stop(0, 1.0)
        assert not stop.should_stop(1, 1.0)
        assert stop.should_stop(2, 1.0)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            MaxIterations(0)


class TestTargetValue:
    def test_fires_at_or_below_target(self):
        stop = TargetValue(0.5)
        assert not stop.should_stop(0, 1.0)
        assert stop.should_stop(1, 0.5)
        assert stop.should_stop(2, -3.0)

    def test_tolerance(self):
        stop = TargetValue(0.0, tolerance=0.1)
        assert stop.should_stop(0, 0.09)
        assert not stop.should_stop(1, 0.2)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(InvalidParameterError):
            TargetValue(0.0, tolerance=-0.1)


class TestStallStop:
    def test_fires_after_patience_stalls(self):
        stop = StallStop(patience=2)
        assert not stop.should_stop(0, 5.0)  # first observation
        assert not stop.should_stop(1, 5.0)  # stall 1
        assert stop.should_stop(2, 5.0)  # stall 2

    def test_improvement_resets_counter(self):
        stop = StallStop(patience=2)
        stop.should_stop(0, 5.0)
        stop.should_stop(1, 5.0)  # stall 1
        assert not stop.should_stop(2, 4.0)  # improvement resets
        stop.should_stop(3, 4.0)
        assert stop.should_stop(4, 4.0)

    def test_min_delta_counts_tiny_gains_as_stall(self):
        stop = StallStop(patience=2, min_delta=1e-3)
        stop.should_stop(0, 1.0)
        assert not stop.should_stop(1, 1.0 - 1e-6)
        assert stop.should_stop(2, 1.0 - 2e-6)

    def test_reset(self):
        stop = StallStop(patience=1)
        stop.should_stop(0, 1.0)
        assert stop.should_stop(1, 1.0)
        stop.reset()
        assert not stop.should_stop(0, 1.0)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            StallStop(patience=0)
        with pytest.raises(InvalidParameterError):
            StallStop(patience=1, min_delta=-1.0)


class TestAnyOf:
    def test_fires_when_any_member_fires(self):
        stop = AnyOf((MaxIterations(100), TargetValue(0.0)))
        assert stop.should_stop(0, 0.0)

    def test_all_members_observe_every_iteration(self):
        stall = StallStop(patience=2)
        stop = AnyOf((TargetValue(-1.0), stall))
        stop.should_stop(0, 5.0)
        stop.should_stop(1, 5.0)
        assert stop.should_stop(2, 5.0)  # stall fired despite target member

    def test_reset_propagates(self):
        stall = StallStop(patience=1)
        stop = AnyOf((stall,))
        stop.should_stop(0, 1.0)
        stop.reset()
        assert not stop.should_stop(0, 1.0)

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            AnyOf(())
