"""Iteration callbacks and peak-memory reporting."""

import numpy as np
import pytest

from repro.core.diagnostics import diagnose
from repro.core.swarm import SwarmState
from repro.engines import FastPSOEngine, SequentialEngine
from repro.errors import InvalidParameterError


class TestCallback:
    def test_called_once_per_iteration(self, sphere10, small_params):
        calls = []
        SequentialEngine().optimize(
            sphere10,
            n_particles=8,
            max_iter=12,
            params=small_params,
            callback=lambda t, state: calls.append(t),
        )
        assert calls == list(range(12))

    def test_receives_live_state(self, sphere10, small_params):
        seen = {}

        def cb(t, state):
            assert isinstance(state, SwarmState)
            seen["gbest"] = state.gbest_value

        result = SequentialEngine().optimize(
            sphere10, n_particles=8, max_iter=5, params=small_params,
            callback=cb,
        )
        assert seen["gbest"] == result.best_value

    def test_truthy_return_terminates(self, sphere10, small_params):
        result = SequentialEngine().optimize(
            sphere10,
            n_particles=8,
            max_iter=100,
            params=small_params,
            callback=lambda t, state: t == 4,
        )
        assert result.iterations == 5

    def test_callback_costs_no_simulated_time(self, sphere10, small_params):
        plain = SequentialEngine().optimize(
            sphere10, n_particles=8, max_iter=10, params=small_params
        )
        with_cb = SequentialEngine().optimize(
            sphere10,
            n_particles=8,
            max_iter=10,
            params=small_params,
            callback=lambda t, state: None,
        )
        assert with_cb.elapsed_seconds == plain.elapsed_seconds

    def test_diagnostics_from_callback(self, sphere10, small_params):
        trace = []
        FastPSOEngine().optimize(
            sphere10,
            n_particles=32,
            max_iter=20,
            params=small_params,
            callback=lambda t, state: trace.append(diagnose(state)),
        )
        assert len(trace) == 20
        assert all(np.isfinite(d.position_diversity) for d in trace)

    def test_non_callable_rejected(self, sphere10, small_params):
        with pytest.raises(InvalidParameterError, match="callback"):
            SequentialEngine().optimize(
                sphere10, n_particles=8, max_iter=5, params=small_params,
                callback="notify me",  # type: ignore[arg-type]
            )


class TestPeakMemory:
    def test_gpu_engine_reports_swarm_footprint(self, small_params):
        from repro.core.problem import Problem

        problem = Problem.from_benchmark("sphere", 100)
        r = FastPSOEngine().optimize(
            problem, n_particles=1000, max_iter=3, params=small_params
        )
        # At least the three (n, d) float32 matrices + two (n,) float64.
        minimum = 3 * 1000 * 100 * 4 + 2 * 1000 * 8
        assert r.peak_device_bytes >= minimum

    def test_cpu_engine_reports_zero(self, sphere10, small_params):
        r = SequentialEngine().optimize(
            sphere10, n_particles=8, max_iter=3, params=small_params
        )
        assert r.peak_device_bytes == 0

    def test_scales_with_swarm(self, small_params):
        from repro.core.problem import Problem

        problem = Problem.from_benchmark("sphere", 64)
        peaks = []
        for n in (500, 2000):
            r = FastPSOEngine().optimize(
                problem, n_particles=n, max_iter=2, params=small_params
            )
            peaks.append(r.peak_device_bytes)
        assert peaks[1] > 2 * peaks[0]
