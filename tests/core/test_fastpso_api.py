"""The public FastPSO facade."""

import numpy as np
import pytest

from repro.core.fastpso import FastPSO
from repro.errors import InvalidParameterError


class TestConstruction:
    def test_defaults(self):
        pso = FastPSO()
        assert pso.n_particles == 5000
        assert pso.engine.name == "fastpso"

    def test_backend_selection(self):
        assert FastPSO(backend="shared").engine.name == "fastpso-shared"
        assert FastPSO(backend="tensorcore").engine.name == "fastpso-tensorcore"

    def test_engine_override(self):
        pso = FastPSO(engine="fastpso-seq")
        assert pso.engine.name == "fastpso-seq"

    def test_param_overrides_forwarded(self):
        pso = FastPSO(inertia=0.4, seed=99)
        assert pso.params.inertia == 0.4
        assert pso.params.seed == 99

    def test_invalid_param_rejected(self):
        with pytest.raises(InvalidParameterError):
            FastPSO(inertia=5.0)

    def test_nonpositive_particles_rejected(self):
        with pytest.raises(InvalidParameterError):
            FastPSO(n_particles=0)


class TestMinimize:
    def test_builtin_by_name(self):
        result = FastPSO(n_particles=64, seed=1).minimize(
            "sphere", dim=8, max_iter=60
        )
        assert result.problem == "sphere"
        assert result.best_value < 70.0  # random init ~ d*8.7

    def test_custom_callable_needs_bounds(self):
        pso = FastPSO(n_particles=16, seed=1)
        with pytest.raises(InvalidParameterError, match="bounds"):
            pso.minimize(lambda x: 0.0, dim=4, max_iter=5)

    def test_custom_callable_scalar(self):
        pso = FastPSO(n_particles=64, seed=1)
        result = pso.minimize(
            lambda row: float(np.sum((row - 1.0) ** 2)),
            dim=3,
            bounds=(-5.0, 5.0),
            max_iter=80,
        )
        assert result.best_value < 1.0

    def test_custom_callable_vectorized(self):
        pso = FastPSO(n_particles=64, seed=1)
        result = pso.minimize(
            lambda p: np.sum(p * p, axis=1),
            dim=3,
            bounds=(-5.0, 5.0),
            max_iter=80,
            vectorized=True,
        )
        assert result.best_value < 1.0

    def test_invalid_objective_type(self):
        with pytest.raises(InvalidParameterError, match="objective"):
            FastPSO(n_particles=4).minimize(42, dim=3, max_iter=5)  # type: ignore[arg-type]

    def test_seeded_runs_reproducible(self):
        a = FastPSO(n_particles=32, seed=5).minimize("sphere", dim=6, max_iter=30)
        b = FastPSO(n_particles=32, seed=5).minimize("sphere", dim=6, max_iter=30)
        assert a.best_value == b.best_value
        np.testing.assert_array_equal(a.best_position, b.best_position)


class TestMinimizeElementwise:
    def test_weighted_quadratic(self):
        pso = FastPSO(n_particles=64, seed=2)
        result = pso.minimize_elementwise(
            lambda p, j: (j + 1.0) * p * p,
            dim=4,
            bounds=(-3.0, 3.0),
            max_iter=80,
            pass_index=True,
        )
        assert result.best_value < 1.0

    def test_prod_reducer(self):
        pso = FastPSO(n_particles=32, seed=2)
        result = pso.minimize_elementwise(
            lambda p: 1.0 + p * p,
            dim=3,
            bounds=(-1.0, 1.0),
            max_iter=60,
            reducer="prod",
        )
        assert result.best_value >= 1.0  # product of (1+x^2) >= 1
        assert result.best_value < 1.2
