"""Canonical swarm numerics: init, updates, best-keeping."""

import numpy as np
import pytest

from repro.core.parameters import PSOParams
from repro.core.problem import Problem
from repro.core.swarm import (
    INIT_VELOCITY_FRACTION,
    draw_initial_state,
    draw_weights,
    gbest_scan,
    pbest_update,
    position_update,
    velocity_update,
)
from repro.errors import InvalidParameterError
from repro.gpusim.rng import ParallelRNG


@pytest.fixture
def state(sphere10):
    return draw_initial_state(sphere10, 32, ParallelRNG(5))


class TestDrawInitialState:
    def test_positions_within_domain(self, sphere10):
        state = draw_initial_state(sphere10, 100, ParallelRNG(1))
        assert np.all(state.positions >= sphere10.lower_bounds)
        assert np.all(state.positions <= sphere10.upper_bounds)

    def test_velocities_within_init_fraction(self, sphere10):
        state = draw_initial_state(sphere10, 100, ParallelRNG(1))
        limit = INIT_VELOCITY_FRACTION * sphere10.domain_width
        assert np.all(np.abs(state.velocities) <= limit + 1e-6)

    def test_pbest_starts_at_infinity(self, state):
        assert np.all(np.isinf(state.pbest_values))
        assert state.gbest_value == np.inf

    def test_pbest_positions_copy_not_view(self, state):
        state.positions[0, 0] = 99.0
        assert state.pbest_positions[0, 0] != 99.0

    def test_deterministic_per_seed(self, sphere10):
        a = draw_initial_state(sphere10, 16, ParallelRNG(3))
        b = draw_initial_state(sphere10, 16, ParallelRNG(3))
        np.testing.assert_array_equal(a.positions, b.positions)
        np.testing.assert_array_equal(a.velocities, b.velocities)

    def test_dtype_is_float32(self, state):
        assert state.positions.dtype == np.float32
        assert state.velocities.dtype == np.float32
        assert state.pbest_values.dtype == np.float64

    def test_zero_particles_rejected(self, sphere10):
        with pytest.raises(InvalidParameterError):
            draw_initial_state(sphere10, 0, ParallelRNG(1))

    def test_copy_is_deep(self, state):
        clone = state.copy()
        clone.positions[0, 0] = 42.0
        assert state.positions[0, 0] != 42.0


class TestVelocityUpdate:
    def test_matches_equation_one(self, rng_np):
        """Hand-computed Eq. (1) on a single element."""
        params = PSOParams(inertia=0.5, cognitive=1.5, social=0.5, seed=0)
        v = np.array([[2.0]], dtype=np.float32)
        p = np.array([[1.0]], dtype=np.float32)
        pbest = np.array([[3.0]], dtype=np.float32)
        gbest = np.array([5.0], dtype=np.float32)
        l_w = np.array([[0.5]], dtype=np.float32)
        g_w = np.array([[0.25]], dtype=np.float32)
        out = velocity_update(v, p, pbest, gbest, l_w, g_w, params, None)
        # 0.5*2 + 1.5*0.5*(3-1) + 0.5*0.25*(5-1) = 1 + 1.5 + 0.5 = 3
        np.testing.assert_allclose(out, [[3.0]], rtol=1e-6)

    def test_clamping_applies_bounds(self):
        params = PSOParams(seed=0)
        v = np.array([[100.0, -100.0]], dtype=np.float32)
        zeros = np.zeros((1, 2), dtype=np.float32)
        bounds = (np.array([-1.0, -1.0]), np.array([1.0, 1.0]))
        out = velocity_update(
            v, zeros, zeros, np.zeros(2, np.float32), zeros, zeros, params, bounds
        )
        np.testing.assert_allclose(out, [[1.0, -1.0]])

    def test_out_aliasing_velocities_is_safe(self, rng_np):
        params = PSOParams(seed=0)
        v = rng_np.normal(size=(8, 4)).astype(np.float32)
        p = rng_np.normal(size=(8, 4)).astype(np.float32)
        pb = rng_np.normal(size=(8, 4)).astype(np.float32)
        g = rng_np.normal(size=4).astype(np.float32)
        l_w = rng_np.uniform(size=(8, 4)).astype(np.float32)
        g_w = rng_np.uniform(size=(8, 4)).astype(np.float32)
        expected = velocity_update(
            v.copy(), p, pb, g, l_w, g_w, params, None
        )
        out = velocity_update(v, p, pb, g, l_w, g_w, params, None, out=v)
        np.testing.assert_array_equal(out, expected)

    def test_custom_multiply_add_hook(self):
        params = PSOParams(inertia=0.0, cognitive=1.0, social=0.0, seed=0)
        v = np.zeros((1, 2), dtype=np.float32)
        p = np.zeros((1, 2), dtype=np.float32)
        pb = np.ones((1, 2), dtype=np.float32)
        ones = np.ones((1, 2), dtype=np.float32)
        calls = []

        def spy(a, b):
            calls.append((a.copy(), b.copy()))
            return a * b

        out = velocity_update(
            v, p, pb, np.zeros(2, np.float32), ones, ones, params, None,
            multiply_add=spy,
        )
        assert len(calls) == 2
        np.testing.assert_allclose(out, [[1.0, 1.0]])

    def test_stays_float32(self, state, sphere10):
        params = PSOParams(seed=0)
        l_w, g_w = draw_weights(ParallelRNG(1), 32, 10)
        out = velocity_update(
            state.velocities, state.positions, state.pbest_positions,
            np.zeros(10, np.float32), l_w, g_w, params, None,
        )
        assert out.dtype == np.float32


class TestPositionUpdate:
    def test_adds_velocity(self, sphere10):
        params = PSOParams(seed=0)
        p = np.zeros((2, 10), dtype=np.float32)
        v = np.ones((2, 10), dtype=np.float32)
        position_update(p, v, sphere10, params)
        np.testing.assert_allclose(p, 1.0)

    def test_in_place(self, sphere10):
        params = PSOParams(seed=0)
        p = np.zeros((2, 10), dtype=np.float32)
        ref = p
        position_update(p, np.ones_like(p), sphere10, params)
        assert p is ref

    def test_clip_positions_option(self, sphere10):
        params = PSOParams(seed=0, clip_positions=True)
        p = np.zeros((1, 10), dtype=np.float32)
        v = np.full((1, 10), 100.0, dtype=np.float32)
        position_update(p, v, sphere10, params)
        np.testing.assert_allclose(p, 5.12, rtol=1e-6)

    def test_no_clip_by_default(self, sphere10):
        params = PSOParams(seed=0)
        p = np.zeros((1, 10), dtype=np.float32)
        v = np.full((1, 10), 100.0, dtype=np.float32)
        position_update(p, v, sphere10, params)
        np.testing.assert_allclose(p, 100.0)


class TestBestUpdates:
    def test_pbest_claims_improvements_only(self, state):
        state.pbest_values[:] = 10.0
        values = np.full(32, 20.0)
        values[3] = 5.0
        mask = pbest_update(state, values)
        assert mask.sum() == 1 and mask[3]
        assert state.pbest_values[3] == 5.0
        assert state.pbest_values[0] == 10.0

    def test_pbest_tie_keeps_old(self, state):
        state.pbest_values[:] = 10.0
        old_positions = state.pbest_positions.copy()
        pbest_update(state, np.full(32, 10.0))
        np.testing.assert_array_equal(state.pbest_positions, old_positions)

    def test_pbest_copies_positions(self, state):
        state.pbest_values[:] = 10.0
        values = np.full(32, 20.0)
        values[7] = 1.0
        pbest_update(state, values)
        np.testing.assert_array_equal(
            state.pbest_positions[7], state.positions[7]
        )

    def test_pbest_shape_mismatch(self, state):
        with pytest.raises(InvalidParameterError):
            pbest_update(state, np.zeros(5))

    def test_gbest_scan_finds_minimum(self, state):
        state.pbest_values[:] = np.arange(32, dtype=float)[::-1]
        idx, val = gbest_scan(state)
        assert idx == 31 and val == 0.0
        np.testing.assert_array_equal(
            state.gbest_position, state.pbest_positions[31]
        )

    def test_gbest_never_worsens(self, state):
        state.pbest_values[:] = 5.0
        gbest_scan(state)
        assert state.gbest_value == 5.0
        state.pbest_values[:] = 7.0  # pbest cannot actually worsen; guard
        gbest_scan(state)
        assert state.gbest_value == 5.0

    def test_gbest_position_is_copy(self, state):
        state.pbest_values[:] = np.arange(32, dtype=float)
        gbest_scan(state)
        state.pbest_positions[0, 0] = 123.0
        assert state.gbest_position[0] != 123.0


class TestDrawWeights:
    def test_shapes_and_range(self):
        l_w, g_w = draw_weights(ParallelRNG(1), 10, 4)
        assert l_w.shape == g_w.shape == (10, 4)
        for w in (l_w, g_w):
            assert np.all(w > 0) and np.all(w < 1)

    def test_l_then_g_order_is_stable(self):
        """The draw order is part of the cross-engine contract."""
        rng1 = ParallelRNG(9)
        l1, g1 = draw_weights(rng1, 6, 3)
        rng2 = ParallelRNG(9)
        l2, g2 = draw_weights(rng2, 6, 3)
        np.testing.assert_array_equal(l1, l2)
        np.testing.assert_array_equal(g1, g2)
        assert not np.array_equal(l1, g1)
