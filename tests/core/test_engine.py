"""Engine template loop: Algorithm 1's control flow and accounting."""

import numpy as np
import pytest

from repro.core.parameters import PSOParams
from repro.core.problem import Problem
from repro.core.stopping import TargetValue
from repro.engines import FastPSOEngine, SequentialEngine
from repro.errors import InvalidParameterError


class TestLoopAccounting:
    def test_result_shape_facts(self, sphere10, small_params):
        r = SequentialEngine().optimize(
            sphere10, n_particles=16, max_iter=10, params=small_params
        )
        assert r.engine == "fastpso-seq"
        assert r.problem == "sphere"
        assert r.n_particles == 16 and r.dim == 10
        assert r.iterations == 10
        assert r.best_position.shape == (10,)

    def test_elapsed_equals_setup_plus_loop(self, sphere10, small_params):
        r = SequentialEngine().optimize(
            sphere10, n_particles=16, max_iter=10, params=small_params
        )
        assert r.elapsed_seconds == pytest.approx(
            r.setup_seconds + r.iteration_seconds * 10, rel=1e-6
        )

    def test_step_times_cover_elapsed(self, sphere10, small_params):
        r = SequentialEngine().optimize(
            sphere10, n_particles=16, max_iter=10, params=small_params
        )
        assert r.step_times.total == pytest.approx(r.elapsed_seconds, rel=0.05)

    def test_clock_resets_between_runs(self, sphere10, small_params):
        engine = SequentialEngine()
        r1 = engine.optimize(
            sphere10, n_particles=16, max_iter=10, params=small_params
        )
        r2 = engine.optimize(
            sphere10, n_particles=16, max_iter=10, params=small_params
        )
        assert r1.elapsed_seconds == pytest.approx(r2.elapsed_seconds)

    def test_gbest_monotone_in_history(self, sphere10, small_params):
        r = SequentialEngine().optimize(
            sphere10,
            n_particles=32,
            max_iter=50,
            params=small_params,
            record_history=True,
        )
        gvals = r.history.gbest_values
        assert all(b <= a + 1e-12 for a, b in zip(gvals, gvals[1:]))
        assert r.best_value == gvals[-1]

    def test_history_opt_in(self, sphere10, small_params):
        r = SequentialEngine().optimize(
            sphere10, n_particles=8, max_iter=5, params=small_params
        )
        assert r.history is None

    def test_error_relative_to_reference(self, sphere10, small_params):
        r = SequentialEngine().optimize(
            sphere10, n_particles=8, max_iter=5, params=small_params
        )
        assert r.error == pytest.approx(abs(r.best_value - 0.0))


class TestEarlyStopping:
    def test_target_value_halts_early(self, sphere10, small_params):
        stop = TargetValue(1e9)  # any first evaluation satisfies this
        r = SequentialEngine().optimize(
            sphere10,
            n_particles=8,
            max_iter=100,
            params=small_params,
            stop=stop,
        )
        assert r.iterations == 1

    def test_stop_reset_between_runs(self, sphere10, small_params):
        from repro.core.stopping import StallStop

        stop = StallStop(patience=3)
        engine = SequentialEngine()
        r1 = engine.optimize(
            sphere10, n_particles=8, max_iter=50, params=small_params, stop=stop
        )
        r2 = engine.optimize(
            sphere10, n_particles=8, max_iter=50, params=small_params, stop=stop
        )
        assert r1.iterations == r2.iterations


class TestValidation:
    def test_requires_problem(self, small_params):
        with pytest.raises(InvalidParameterError):
            SequentialEngine().optimize(
                "sphere", n_particles=4, max_iter=2, params=small_params  # type: ignore[arg-type]
            )

    def test_positive_particles(self, sphere10):
        with pytest.raises(InvalidParameterError):
            SequentialEngine().optimize(sphere10, n_particles=0, max_iter=2)

    def test_positive_iterations(self, sphere10):
        with pytest.raises(InvalidParameterError):
            SequentialEngine().optimize(sphere10, n_particles=4, max_iter=0)


class TestAdaptiveVelocityBounds:
    def test_bounds_shrink_with_progress(self, sphere10):
        engine = SequentialEngine()
        params = PSOParams(final_velocity_fraction=0.1)
        engine._progress = 0.0
        lo0, hi0 = engine._current_velocity_bounds(sphere10, params)
        engine._progress = 1.0
        lo1, hi1 = engine._current_velocity_bounds(sphere10, params)
        np.testing.assert_allclose(hi1, 0.1 * hi0)
        np.testing.assert_allclose(lo1, 0.1 * lo0)

    def test_fixed_clamp_ignores_progress(self, sphere10):
        engine = SequentialEngine()
        params = PSOParams(adaptive_velocity=False)
        engine._progress = 1.0
        lo, hi = engine._current_velocity_bounds(sphere10, params)
        np.testing.assert_allclose(hi, sphere10.domain_width)

    def test_none_clamp_stays_none(self, sphere10):
        engine = SequentialEngine()
        params = PSOParams(velocity_clamp=None)
        assert engine._current_velocity_bounds(sphere10, params) is None


class TestGpuEngineLifecycle:
    def test_reusable_for_different_problems(self, sphere10, griewank8):
        engine = FastPSOEngine()
        r1 = engine.optimize(sphere10, n_particles=16, max_iter=5)
        r2 = engine.optimize(griewank8, n_particles=8, max_iter=5)
        assert r1.problem == "sphere" and r2.problem == "griewank"

    def test_device_memory_released_after_run(self, sphere10):
        engine = FastPSOEngine(caching=False)
        engine.optimize(sphere10, n_particles=16, max_iter=5)
        assert engine.ctx.memory.used_bytes == 0
