"""Swarm diagnostics: diversity, velocity magnitude, consensus."""

import numpy as np
import pytest

from repro.core.diagnostics import (
    SwarmDiagnostics,
    diagnose,
    mean_velocity_norm,
    pbest_spread,
    position_diversity,
)
from repro.core.parameters import PSOParams
from repro.core.swarm import SwarmState, draw_initial_state
from repro.engines import FastPSOEngine
from repro.errors import InvalidParameterError
from repro.gpusim.rng import ParallelRNG


def _state(positions, velocities=None):
    positions = np.asarray(positions, dtype=np.float32)
    if velocities is None:
        velocities = np.zeros_like(positions)
    return SwarmState(
        positions=positions,
        velocities=np.asarray(velocities, dtype=np.float32),
        pbest_values=np.full(positions.shape[0], np.inf),
        pbest_positions=positions.copy(),
    )


class TestPositionDiversity:
    def test_identical_particles_have_zero_diversity(self):
        state = _state(np.ones((5, 3)))
        assert position_diversity(state) == 0.0

    def test_known_value(self):
        state = _state([[-1.0, 0.0], [1.0, 0.0]])
        assert position_diversity(state) == pytest.approx(1.0)

    def test_scales_with_spread(self):
        tight = _state(np.random.default_rng(0).normal(0, 0.1, (50, 4)))
        wide = _state(np.random.default_rng(0).normal(0, 10.0, (50, 4)))
        assert position_diversity(wide) > 10 * position_diversity(tight)


class TestVelocityNorm:
    def test_zero_velocities(self):
        assert mean_velocity_norm(_state(np.ones((4, 2)))) == 0.0

    def test_known_value(self):
        state = _state(np.zeros((2, 2)), velocities=[[3.0, 4.0], [0.0, 0.0]])
        assert mean_velocity_norm(state) == pytest.approx(2.5)


class TestPbestSpread:
    def test_infinite_before_first_evaluation(self):
        assert pbest_spread(_state(np.zeros((3, 2)))) == np.inf

    def test_zero_at_consensus(self):
        state = _state(np.zeros((3, 2)))
        state.pbest_values[:] = 2.0
        state.gbest_value = 2.0
        assert pbest_spread(state) == 0.0

    def test_positive_with_spread(self):
        state = _state(np.zeros((3, 2)))
        state.pbest_values[:] = [1.0, 2.0, 3.0]
        state.gbest_value = 1.0
        assert pbest_spread(state) == pytest.approx(1.0)


class TestDiagnose:
    def test_snapshot_fields(self, sphere10):
        state = draw_initial_state(sphere10, 32, ParallelRNG(1))
        snap = diagnose(state)
        assert isinstance(snap, SwarmDiagnostics)
        assert snap.position_diversity > 0
        assert snap.mean_velocity_norm > 0

    def test_converged_threshold(self):
        snap = SwarmDiagnostics(0.01, 0.0, 0.0, 1.0)
        assert snap.converged(0.1)
        assert not snap.converged(0.001)
        with pytest.raises(InvalidParameterError):
            snap.converged(0.0)

    def test_diversity_shrinks_over_a_real_run(self, sphere10):
        """The adaptive velocity bound collapses the swarm by the end."""
        engine = FastPSOEngine()
        params = PSOParams(seed=3)
        rng = ParallelRNG(params.seed)
        state = engine._initialize(sphere10, params, 64, rng)
        initial = position_diversity(state)
        engine.optimize(sphere10, n_particles=64, max_iter=1, params=params)
        # Run a full optimization and inspect the final state via a fresh
        # engine that exposes it: drive the hooks manually.
        engine2 = FastPSOEngine()
        rng2 = ParallelRNG(params.seed)
        state2 = engine2._initialize(sphere10, params, 64, rng2)
        for t in range(200):
            engine2._progress = t / 199
            values = engine2._evaluate(sphere10, state2)
            engine2._update_pbest(state2, values)
            engine2._update_gbest(state2)
            engine2._update_swarm(sphere10, params, state2, rng2)
        assert position_diversity(state2) < initial
