"""Result containers: step times, history, projection."""

import numpy as np
import pytest

from repro.core.results import STEP_LABELS, History, OptimizeResult, StepTimes
from repro.errors import BenchmarkError


class TestStepTimes:
    def test_total(self):
        st = StepTimes(init=1.0, eval=2.0, pbest=3.0, gbest=4.0, swarm=5.0)
        assert st.total == 15.0

    def test_as_dict_order(self):
        st = StepTimes()
        assert tuple(st.as_dict()) == STEP_LABELS

    def test_scaled_keeps_init_fixed(self):
        st = StepTimes(init=1.0, eval=2.0, swarm=4.0)
        scaled = st.scaled(10.0)
        assert scaled.init == 1.0
        assert scaled.eval == 20.0
        assert scaled.swarm == 40.0

    def test_negative_scale_rejected(self):
        with pytest.raises(BenchmarkError):
            StepTimes().scaled(-1.0)


class TestHistory:
    def test_record_and_final(self):
        h = History()
        h.record(5.0, 6.0)
        h.record(4.0, 5.0)
        assert len(h) == 2
        assert h.final_value == 4.0
        assert h.mean_pbest_values == [6.0, 5.0]

    def test_empty_final_rejected(self):
        with pytest.raises(BenchmarkError):
            History().final_value


def _result(iterations=10, setup=1.0, per_iter=0.5):
    return OptimizeResult(
        engine="e",
        problem="p",
        n_particles=4,
        dim=2,
        iterations=iterations,
        best_value=1.0,
        best_position=np.zeros(2),
        error=1.0,
        elapsed_seconds=setup + per_iter * iterations,
        setup_seconds=setup,
        iteration_seconds=per_iter,
        step_times=StepTimes(init=setup, swarm=per_iter * iterations),
    )


class TestOptimizeResult:
    def test_projection_is_affine(self):
        r = _result()
        assert r.projected_time(10) == pytest.approx(r.elapsed_seconds)
        assert r.projected_time(100) == pytest.approx(1.0 + 50.0)

    def test_projection_zero_iters(self):
        assert _result().projected_time(0) == 1.0

    def test_projection_negative_rejected(self):
        with pytest.raises(BenchmarkError):
            _result().projected_time(-1)

    def test_projected_step_times(self):
        r = _result(iterations=10, per_iter=0.5)
        steps = r.projected_step_times(100)
        assert steps.init == 1.0
        assert steps.swarm == pytest.approx(50.0)

    def test_summary_contains_key_facts(self):
        text = _result().summary()
        assert "e:" in text and "n=4" in text and "d=2" in text
