"""Workspace arena: buffer reuse semantics for host-side temporaries."""

import numpy as np

from repro.core.workspace import Workspace


class TestWorkspace:
    def test_same_shape_reuses_buffer(self):
        ws = Workspace()
        a = ws.array("w", (4, 3))
        b = ws.array("w", (4, 3))
        assert a is b

    def test_shape_change_reallocates(self):
        ws = Workspace()
        a = ws.array("w", (4, 3))
        b = ws.array("w", (8, 3))
        assert a is not b and b.shape == (8, 3)

    def test_dtype_change_reallocates(self):
        ws = Workspace()
        a = ws.array("w", (4,), np.float32)
        b = ws.array("w", (4,), np.float64)
        assert a is not b and b.dtype == np.float64

    def test_names_are_independent(self):
        ws = Workspace()
        assert ws.array("a", (2, 2)) is not ws.array("b", (2, 2))
        assert len(ws) == 2

    def test_release_drops_buffers(self):
        ws = Workspace()
        a = ws.array("w", (4, 3))
        ws.release()
        assert len(ws) == 0
        assert ws.array("w", (4, 3)) is not a

    def test_defaults_to_float32(self):
        assert Workspace().array("w", (2,)).dtype == np.float32
