"""Information topologies: global star and ring neighbourhoods."""

import numpy as np
import pytest

from repro.core.swarm import draw_initial_state
from repro.core.topology import ring_best_indices, social_positions
from repro.errors import InvalidParameterError
from repro.gpusim.rng import ParallelRNG


class TestRingBestIndices:
    def test_simple_ring(self):
        vals = np.array([5.0, 1.0, 4.0, 3.0, 2.0])
        best = ring_best_indices(vals, k=1)
        # neighbourhoods (k=1): {4,0,1},{0,1,2},{1,2,3},{2,3,4},{3,4,0}
        np.testing.assert_array_equal(best, [1, 1, 1, 4, 4])

    def test_k_equals_full_ring_matches_global(self):
        vals = np.array([3.0, 0.5, 2.0, 1.0])
        best = ring_best_indices(vals, k=2)
        assert np.all(best == 1)

    def test_wraparound(self):
        vals = np.array([0.0, 5.0, 5.0, 5.0])
        best = ring_best_indices(vals, k=1)
        assert best[3] == 0  # neighbour across the wrap

    def test_self_included(self):
        vals = np.array([1.0, 10.0, 10.0])
        best = ring_best_indices(vals, k=1)
        assert best[0] == 0

    def test_invalid_k(self):
        with pytest.raises(InvalidParameterError):
            ring_best_indices(np.array([1.0, 2.0]), k=0)

    def test_matches_bruteforce(self, rng_np):
        vals = rng_np.normal(size=50)
        k = 2
        best = ring_best_indices(vals, k=k)
        n = len(vals)
        for i in range(n):
            neigh = [(i + off) % n for off in range(-k, k + 1)]
            expected_val = min(vals[j] for j in neigh)
            assert vals[best[i]] == expected_val


class TestSocialPositions:
    def _state(self, sphere10):
        state = draw_initial_state(sphere10, 8, ParallelRNG(2))
        state.pbest_values[:] = np.arange(8, dtype=float)
        state.gbest_value = 0.0
        state.gbest_position = state.pbest_positions[0].copy()
        return state

    def test_global_returns_gbest_row(self, sphere10):
        state = self._state(sphere10)
        social = social_positions(state, "global")
        np.testing.assert_array_equal(social, state.gbest_position)
        assert social.shape == (10,)

    def test_ring_returns_per_particle_matrix(self, sphere10):
        state = self._state(sphere10)
        social = social_positions(state, "ring")
        assert social.shape == (8, 10)
        # particle 4's ring-best (k=1) is particle 3
        np.testing.assert_array_equal(social[4], state.pbest_positions[3])

    def test_unknown_topology(self, sphere10):
        state = self._state(sphere10)
        with pytest.raises(InvalidParameterError):
            social_positions(state, "hypercube")
