"""Problem construction, bounds handling and error reporting."""

import numpy as np
import pytest

from repro.core.problem import Problem
from repro.core.schema import BuiltinEvaluation
from repro.errors import InvalidProblemError
from repro.functions import Sphere


class TestFromBenchmark:
    def test_by_name(self):
        p = Problem.from_benchmark("sphere", 12)
        assert p.name == "sphere"
        assert p.dim == 12
        np.testing.assert_allclose(p.lower_bounds, -5.12)
        np.testing.assert_allclose(p.upper_bounds, 5.12)

    def test_by_instance(self):
        p = Problem.from_benchmark(Sphere(), 4)
        assert p.dim == 4

    def test_reference_value_from_function(self):
        p = Problem.from_benchmark("styblinski_tang", 10)
        assert p.reference_value == pytest.approx(-391.6616570377142)

    def test_easom_reference_is_plateau_in_high_dim(self):
        p = Problem.from_benchmark("easom", 200)
        assert p.reference_value == 0.0

    def test_easom_reference_true_minimum_in_2d(self):
        p = Problem.from_benchmark("easom", 2)
        assert p.reference_value == -1.0

    def test_unknown_name(self):
        with pytest.raises(InvalidProblemError, match="unknown benchmark"):
            Problem.from_benchmark("nope", 4)


class TestFromCallable:
    def test_scalar_bounds(self):
        p = Problem.from_callable(lambda x: float(np.sum(x)), 3, (-1.0, 1.0))
        np.testing.assert_allclose(p.lower_bounds, [-1, -1, -1])

    def test_vector_bounds(self):
        lo = np.array([0.0, -1.0])
        hi = np.array([1.0, 1.0])
        p = Problem.from_callable(lambda x: 0.0, 2, (lo, hi))
        np.testing.assert_allclose(p.domain_width, [1.0, 2.0])

    def test_evaluator_works(self):
        p = Problem.from_callable(
            lambda x: float(np.sum(x * x)), 3, (-1.0, 1.0)
        )
        vals = p.evaluator.evaluate(np.array([[1.0, 1.0, 1.0], [0, 0, 0]]))
        np.testing.assert_allclose(vals, [3.0, 0.0])


class TestValidation:
    def test_nonpositive_dim(self):
        with pytest.raises(InvalidProblemError):
            Problem.from_benchmark("sphere", 0)

    def test_bounds_length_mismatch(self):
        with pytest.raises(InvalidProblemError):
            Problem(
                name="x",
                dim=3,
                lower_bounds=np.zeros(2),
                upper_bounds=np.ones(3),
                evaluator=BuiltinEvaluation(Sphere()),
            )

    def test_inverted_bounds(self):
        with pytest.raises(InvalidProblemError, match="strictly below"):
            Problem(
                name="x",
                dim=2,
                lower_bounds=np.array([0.0, 2.0]),
                upper_bounds=np.array([1.0, 1.0]),
                evaluator=BuiltinEvaluation(Sphere()),
            )

    def test_evaluator_type_checked(self):
        with pytest.raises(InvalidProblemError, match="EvaluationSchema"):
            Problem(
                name="x",
                dim=2,
                lower_bounds=np.zeros(2),
                upper_bounds=np.ones(2),
                evaluator=lambda p: p,  # type: ignore[arg-type]
            )


class TestDerived:
    def test_velocity_bounds(self):
        p = Problem.from_benchmark("sphere", 2)
        lo, hi = p.velocity_bounds(0.5)
        np.testing.assert_allclose(hi, 0.5 * 10.24)
        np.testing.assert_allclose(lo, -hi)

    def test_velocity_bounds_none(self):
        assert Problem.from_benchmark("sphere", 2).velocity_bounds(None) is None

    def test_error_of(self):
        p = Problem.from_benchmark("styblinski_tang", 1)
        assert p.error_of(p.reference_value) == 0.0
        assert p.error_of(p.reference_value + 2.5) == pytest.approx(2.5)
