"""Budgets & deadlines: validation, merging, enforcement, composition.

The overload contract: a budgeted run that expires returns a *normal*
result carrying its best-so-far answer and a terminal ``status`` naming
the axis that tripped — never an exception — and budgets compose with
checkpoint/resume (the snapshot carries the budget spec and the wall
seconds already consumed).
"""

from __future__ import annotations

import math
from dataclasses import replace

import numpy as np
import pytest

from repro.core.budget import Budget, BudgetTracker
from repro.core.parameters import PAPER_DEFAULTS
from repro.core.problem import Problem
from repro.core.results import RUN_STATUSES
from repro.engines import make_engine
from repro.errors import (
    CheckpointError,
    ConfigurationError,
    InvalidProblemError,
)
from repro.gpusim.clock import SimClock


@pytest.fixture
def sphere8():
    return Problem.from_benchmark("sphere", 8)


@pytest.fixture
def params():
    return replace(PAPER_DEFAULTS, seed=7)


class TestBudgetValidation:
    @pytest.mark.parametrize("axis", [
        "sim_seconds", "wall_seconds", "iterations", "evaluations",
    ])
    @pytest.mark.parametrize("bad", [0, -1, float("nan"), float("inf"), True])
    def test_rejects_non_positive_and_non_finite(self, axis, bad):
        with pytest.raises(ConfigurationError):
            Budget(**{axis: bad})

    def test_rejects_fractional_counts(self):
        with pytest.raises(ConfigurationError):
            Budget(iterations=2.5)
        with pytest.raises(ConfigurationError):
            Budget(evaluations=10.1)

    def test_unlimited_detection(self):
        assert Budget().is_unlimited
        assert not Budget(iterations=1).is_unlimited

    def test_configuration_error_is_friendly_and_structured(self):
        with pytest.raises(ConfigurationError) as exc_info:
            Budget(sim_seconds=-3)
        err = exc_info.value
        assert "sim_seconds" in str(err)
        row = err.to_row()
        assert row["error"] == "ConfigurationError"
        assert row["job"] is None


class TestProblemValidationIsConfiguration:
    """Satellite: invalid problems are rejected at construction with a
    ConfigurationError subclass, never deep inside a kernel."""

    def test_nan_bounds_rejected(self):
        base = Problem.from_benchmark("sphere", 2)
        with pytest.raises(InvalidProblemError):
            Problem(
                name="bad",
                dim=2,
                lower_bounds=np.array([0.0, float("nan")]),
                upper_bounds=np.array([1.0, 1.0]),
                evaluator=base.evaluator,
            )

    def test_inf_bounds_rejected(self):
        base = Problem.from_benchmark("sphere", 2)
        with pytest.raises(InvalidProblemError):
            Problem(
                name="bad",
                dim=2,
                lower_bounds=np.array([0.0, 0.0]),
                upper_bounds=np.array([1.0, float("inf")]),
                evaluator=base.evaluator,
            )

    def test_problem_errors_are_configuration_errors(self):
        assert issubclass(InvalidProblemError, ConfigurationError)


class TestBudgetMerge:
    def test_tightest_wins_per_axis(self):
        a = Budget(sim_seconds=5.0, iterations=100)
        b = Budget(sim_seconds=2.0, evaluations=1000)
        m = a.merged(b)
        assert m.sim_seconds == 2.0
        assert m.iterations == 100
        assert m.evaluations == 1000
        assert m.wall_seconds is None

    def test_merge_with_none_is_identity(self):
        a = Budget(wall_seconds=1.5)
        assert a.merged(None) == a

    def test_spec_round_trip(self):
        a = Budget(sim_seconds=0.25, iterations=7)
        assert Budget.from_spec(a.to_spec()) == a
        assert Budget.from_spec(Budget().to_spec()).is_unlimited


class TestTrackerAxes:
    def test_iteration_axis(self):
        tracker = Budget(iterations=5).start()
        assert not tracker.should_stop(3, 1.0)
        assert tracker.should_stop(4, 1.0)
        assert tracker.breach == "budget_exhausted"
        assert "iteration" in tracker.reason

    def test_evaluation_axis(self):
        tracker = Budget(evaluations=256).start(n_particles=64)
        # 64 * (t + 2) >= 256  =>  t >= 2
        assert not tracker.should_stop(1, 1.0)
        assert tracker.should_stop(2, 1.0)
        assert tracker.breach == "budget_exhausted"

    def test_sim_axis_is_deadline(self):
        clock = SimClock()
        tracker = Budget(sim_seconds=1.0).start(clock=clock)
        assert not tracker.should_stop(0, 1.0)
        clock.advance(2.0)
        assert tracker.should_stop(1, 1.0)
        assert tracker.breach == "deadline_exceeded"

    def test_wall_axis_counts_prior_segments(self):
        tracker = Budget(wall_seconds=1e9).start(wall_used=0.0)
        state = tracker.state_dict()
        assert state["wall_used"] >= 0.0
        fresh = Budget(wall_seconds=1e9).start()
        fresh.load_state({"wall_used": 123.0})
        assert fresh.wall_elapsed >= 123.0

    def test_fixed_check_order(self):
        # Both the iteration and sim axes are expired: iterations wins.
        clock = SimClock()
        clock.advance(10.0)
        tracker = BudgetTracker(
            Budget(iterations=1, sim_seconds=1.0), clock=clock
        )
        clock.advance(5.0)
        assert tracker.should_stop(5, 1.0)
        assert tracker.breach == "budget_exhausted"


class TestEngineEnforcement:
    def test_iteration_budget_stops_with_best_so_far(self, sphere8, params):
        result = make_engine("fastpso").optimize(
            sphere8, n_particles=64, max_iter=50, params=params,
            budget=Budget(iterations=5),
        )
        assert result.status == "budget_exhausted"
        assert result.iterations == 5
        assert math.isfinite(result.best_value)
        assert result.status in RUN_STATUSES

    def test_sim_deadline_stops_with_best_so_far(self, sphere8, params):
        result = make_engine("fastpso").optimize(
            sphere8, n_particles=64, max_iter=200, params=params,
            budget=Budget(sim_seconds=1e-4),
        )
        assert result.status == "deadline_exceeded"
        assert 0 < result.iterations < 200
        assert math.isfinite(result.best_value)

    def test_budget_on_final_iteration_is_completed(self, sphere8, params):
        result = make_engine("fastpso").optimize(
            sphere8, n_particles=32, max_iter=5, params=params,
            budget=Budget(iterations=5),
        )
        assert result.status == "completed"
        assert result.iterations == 5

    def test_unbudgeted_and_unlimited_runs_complete(self, sphere8, params):
        engine = make_engine("fastpso")
        plain = engine.optimize(
            sphere8, n_particles=32, max_iter=10, params=params,
        )
        unlimited = make_engine("fastpso").optimize(
            sphere8, n_particles=32, max_iter=10, params=params,
            budget=Budget(),
        )
        assert plain.status == "completed"
        assert unlimited.status == "completed"
        assert plain.best_value == unlimited.best_value

    def test_generous_budget_does_not_perturb(self, sphere8, params):
        golden = make_engine("fastpso").optimize(
            sphere8, n_particles=32, max_iter=10, params=params,
            record_history=True,
        )
        budgeted = make_engine("fastpso").optimize(
            sphere8, n_particles=32, max_iter=10, params=params,
            record_history=True, budget=Budget(sim_seconds=1e9),
        )
        assert budgeted.status == "completed"
        assert budgeted.best_value == golden.best_value
        assert np.array_equal(budgeted.best_position, golden.best_position)
        assert list(budgeted.history.gbest_values) == list(
            golden.history.gbest_values
        )

    def test_multi_gpu_budget(self, sphere8, params):
        result = make_engine("mgpu", n_devices=2).optimize(
            sphere8, n_particles=64, max_iter=50, params=params,
            budget=Budget(iterations=4),
        )
        assert result.status == "budget_exhausted"
        assert result.iterations == 4
        assert math.isfinite(result.best_value)

    def test_status_survives_json_round_trip(self, sphere8, params, tmp_path):
        from repro.io import load_result_json, save_result_json

        result = make_engine("fastpso").optimize(
            sphere8, n_particles=32, max_iter=50, params=params,
            budget=Budget(iterations=3),
        )
        path = save_result_json(result, tmp_path / "r.json")
        loaded = load_result_json(path)
        assert loaded.status == "budget_exhausted"
        assert f"[{result.status}]" in result.summary()


class TestBudgetResumeComposition:
    """Tentpole acceptance: budget + checkpoint/resume, bit-identical."""

    def _crash_after(self, k):
        def callback(t, state):
            return t + 1 == k

        return callback

    def test_resume_honours_budget_and_is_bit_identical(
        self, sphere8, params, tmp_path
    ):
        from repro.reliability import CheckpointManager, resume

        budget = Budget(sim_seconds=1e9)  # never trips, must not perturb
        golden = make_engine("fastpso").optimize(
            sphere8, n_particles=32, max_iter=16, params=params,
            record_history=True,
        )
        manager = CheckpointManager(tmp_path, every=1, keep=16)
        make_engine("fastpso").optimize(
            sphere8, n_particles=32, max_iter=16, params=params,
            record_history=True, callback=self._crash_after(8),
            checkpoint=manager, budget=budget,
        )
        resumed = resume(manager.latest_path())
        assert resumed.status == "completed"
        assert resumed.best_value == golden.best_value
        assert np.array_equal(resumed.best_position, golden.best_position)
        assert resumed.elapsed_seconds == golden.elapsed_seconds
        assert list(resumed.history.gbest_values) == list(
            golden.history.gbest_values
        )

    def test_resumed_run_still_hits_its_budget(
        self, sphere8, params, tmp_path
    ):
        from repro.reliability import CheckpointManager, resume

        budget = Budget(iterations=12)
        manager = CheckpointManager(tmp_path, every=1, keep=20)
        make_engine("fastpso").optimize(
            sphere8, n_particles=32, max_iter=50, params=params,
            callback=self._crash_after(6), checkpoint=manager, budget=budget,
        )
        resumed = resume(manager.latest_path())
        assert resumed.status == "budget_exhausted"
        assert resumed.iterations == 12

    def test_budget_mismatch_on_restore_is_rejected(
        self, sphere8, params, tmp_path
    ):
        from repro.reliability import CheckpointManager, read_snapshot

        manager = CheckpointManager(tmp_path, every=1, keep=20)
        make_engine("fastpso").optimize(
            sphere8, n_particles=32, max_iter=16, params=params,
            callback=self._crash_after(6), checkpoint=manager,
            budget=Budget(iterations=12),
        )
        snapshot = read_snapshot(manager.latest_path())
        with pytest.raises(CheckpointError):
            make_engine("fastpso").optimize(
                sphere8, n_particles=32, max_iter=16, params=params,
                restore=snapshot, budget=Budget(iterations=99),
            )
