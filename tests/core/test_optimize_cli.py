"""The ``python -m repro.optimize`` command-line interface."""

import json

import pytest

from repro.optimize_cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["sphere"])
        assert args.dim == 50 and args.particles == 2000
        assert args.engine == "fastpso"

    def test_unknown_function_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["not_a_function"])

    def test_engine_choices(self):
        args = build_parser().parse_args(["sphere", "--engine", "gpu-pso"])
        assert args.engine == "gpu-pso"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sphere", "--engine", "warp-pso"])


class TestMain:
    def test_basic_run_prints_summary(self, capsys):
        code = main(
            ["sphere", "--dim", "8", "--particles", "32", "--iters", "20"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sphere" in out
        assert "simulated time" in out
        assert "swarm" in out

    def test_json_output(self, capsys, tmp_path):
        path = tmp_path / "out.json"
        main(
            [
                "griewank",
                "--dim",
                "6",
                "--particles",
                "16",
                "--iters",
                "10",
                "--json",
                str(path),
            ]
        )
        payload = json.loads(path.read_text())
        assert payload["problem"] == "griewank"
        assert payload["iterations"] == 10

    def test_alternative_engine(self, capsys):
        main(
            [
                "sphere",
                "--dim",
                "6",
                "--particles",
                "16",
                "--iters",
                "10",
                "--engine",
                "fastpso-seq",
            ]
        )
        assert "fastpso-seq" in capsys.readouterr().out

    def test_backend_and_schedule_flags(self, capsys):
        main(
            [
                "sphere",
                "--dim",
                "6",
                "--particles",
                "16",
                "--iters",
                "10",
                "--backend",
                "shared",
                "--inertia-schedule",
                "linear",
            ]
        )
        assert "fastpso-shared" in capsys.readouterr().out

    def test_seed_reproducibility(self, capsys):
        outs = []
        for _ in range(2):
            main(
                ["sphere", "--dim", "6", "--particles", "16", "--iters",
                 "10", "--seed", "5"]
            )
            outs.append(capsys.readouterr().out.splitlines()[0])
        assert outs[0] == outs[1]
