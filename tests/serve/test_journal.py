"""Write-ahead journal: frame format, torn tails, crash-recovery identity.

The durability contract under test: every state transition is journaled
*before* it takes effect, so a SIGKILL at any journaled record — simulated
here with ``journal_kill_mode="raise"``, which tears through the service
exactly like a kill signal but keeps the test process alive — followed by
``OptimizationService.recover()`` and a resumed drill yields final results
and an event log byte-identical to the uninterrupted run.
"""

import asyncio
import json
import zlib
from pathlib import Path

import pytest

from repro.batch import Job
from repro.errors import JournalError
from repro.serve import OptimizationService
from repro.serve.journal import (
    JOURNAL_SCHEMA_VERSION,
    JournalKillPoint,
    ServiceJournal,
    read_journal,
)

JOBS = [
    Job("sphere", dim=8, n_particles=32, max_iter=25, engine="fastpso", seed=s)
    for s in range(3)
]
ARRIVALS = [0.0, 1e-5, 2e-5]
KW = dict(n_devices=1, streams_per_device=2, checkpoint_every=5)


def drive(service, start=0):
    async def main():
        for i in range(start, len(JOBS)):
            await service.submit(JOBS[i], at=ARRIVALS[i])
        await service.drain()

    asyncio.run(main())


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """One uninterrupted journaled run: the byte-identity yardstick."""
    root = tmp_path_factory.mktemp("journal_ref")
    service = OptimizationService(journal_dir=root / "wal", **KW)
    drive(service)
    return service


class TestWalFormat:
    def test_every_record_is_a_crc_guarded_frame(self, reference):
        path = reference.journal_dir / "service.wal"
        lines = path.read_bytes().splitlines(keepends=True)
        assert lines, "journal must not be empty"
        for seq, line in enumerate(lines):
            head, payload = line.split(b" ", 4)[:4], line.split(b" ", 4)[4]
            magic, version, crc_hex, length = head
            assert magic == b"FASTPSO-WAL"
            assert int(version) == JOURNAL_SCHEMA_VERSION
            body = payload.rstrip(b"\n")
            assert len(body) == int(length)
            assert int(crc_hex, 16) == zlib.crc32(body) & 0xFFFFFFFF
            record = json.loads(body)
            assert record["seq"] == seq  # dense, ascending

    def test_reader_round_trips_all_records(self, reference):
        path = reference.journal_dir / "service.wal"
        records, valid_bytes = read_journal(path)
        assert valid_bytes == path.stat().st_size
        assert [r["seq"] for r in records] == list(range(len(records)))
        kinds = [
            r["event"]["kind"] for r in records if r["type"] == "event"
        ]
        assert kinds.count("submit") == len(JOBS)
        assert kinds.count("complete") == len(JOBS)

    def test_corrupt_record_stops_the_replay_there(self, reference, tmp_path):
        src = reference.journal_dir / "service.wal"
        raw = src.read_bytes()
        lines = raw.splitlines(keepends=True)
        # Flip one payload byte of a middle record: its CRC no longer
        # matches, so the reader must stop right before it.
        victim = len(lines) // 2
        broken = bytearray(lines[victim])
        broken[-2] ^= 0xFF
        lines[victim] = bytes(broken)
        path = tmp_path / "service.wal"
        path.write_bytes(b"".join(lines))
        records, valid_bytes = read_journal(path)
        assert len(records) == victim
        assert valid_bytes == sum(len(line) for line in lines[:victim])

    def test_torn_tail_is_dropped(self, reference, tmp_path):
        src = reference.journal_dir / "service.wal"
        lines = src.read_bytes().splitlines(keepends=True)
        torn = b"".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2]
        path = tmp_path / "service.wal"
        path.write_bytes(torn)
        records, valid_bytes = read_journal(path)
        assert len(records) == len(lines) - 1
        assert valid_bytes == sum(len(line) for line in lines[:-1])

    def test_reopen_truncates_torn_tail_and_continues_seq(self, tmp_path):
        journal = ServiceJournal(tmp_path)
        for i in range(3):
            journal.append({"type": "noop", "i": i})
        journal.close()
        path = tmp_path / "service.wal"
        # Tear the last record in half, as a crash mid-write would.
        raw = path.read_bytes()
        lines = raw.splitlines(keepends=True)
        path.write_bytes(b"".join(lines[:-1]) + lines[-1][:7])
        reopened = ServiceJournal(tmp_path)
        reopened.append({"type": "noop", "i": 99})
        reopened.close()
        records, valid_bytes = read_journal(path)
        assert [r["seq"] for r in records] == [0, 1, 2]
        assert [r["i"] for r in records] == [0, 1, 99]
        assert valid_bytes == path.stat().st_size

    def test_bad_kill_mode_rejected(self, tmp_path):
        with pytest.raises(JournalError):
            ServiceJournal(tmp_path, kill_at=1, kill_mode="explode")


def _kill_point(reference, *, want):
    """Seq of the first journal record matching *want* (kind or type)."""
    records, _ = read_journal(reference.journal_dir / "service.wal")
    for record in records:
        if record["type"] == want:
            return record["seq"]
        if (
            record["type"] == "event"
            and record["event"]["kind"] == want
        ):
            return record["seq"]
    raise AssertionError(f"no {want!r} record in the reference journal")


class TestCrashRecovery:
    @pytest.mark.parametrize(
        "want", ["submit", "dispatch", "progress", "checkpoint", "complete"]
    )
    def test_kill_then_recover_is_byte_identical(
        self, reference, tmp_path, want
    ):
        seq = _kill_point(reference, want=want)
        wal = tmp_path / "wal"
        service = OptimizationService(
            journal_dir=wal,
            journal_kill_at=seq,
            journal_kill_mode="raise",
            **KW,
        )
        with pytest.raises(JournalKillPoint):
            drive(service)
        if want == "checkpoint":
            # The acceptance bar: a mid-run kill with a checkpoint
            # actually on disk, so resume is restore-based, not a rerun.
            ckpts = list((wal / "checkpoints").rglob("*.ckpt"))
            assert ckpts, "kill point must leave a checkpoint on disk"
        recovered = OptimizationService.recover(wal, **KW)
        drive(recovered, start=len(recovered.status()))
        assert recovered.events_json() == reference.events_json()
        for ours, theirs in zip(recovered._tickets, reference._tickets):
            assert ours.status == theirs.status == "completed"
            assert ours.result.best_value == theirs.result.best_value
            assert (
                ours.result.elapsed_seconds == theirs.result.elapsed_seconds
            )

    def test_every_record_is_a_valid_kill_point(self, reference, tmp_path):
        """Exhaustive sweep: no crash window between any two records."""
        records, _ = read_journal(reference.journal_dir / "service.wal")
        for seq in range(len(records)):
            wal = tmp_path / f"wal{seq:03d}"
            service = OptimizationService(
                journal_dir=wal,
                journal_kill_at=seq,
                journal_kill_mode="raise",
                **KW,
            )
            with pytest.raises(JournalKillPoint):
                drive(service)
            recovered = OptimizationService.recover(wal, **KW)
            drive(recovered, start=len(recovered.status()))
            assert recovered.events_json() == reference.events_json(), (
                f"divergence after kill at record {seq} "
                f"({records[seq].get('type')})"
            )

    def test_finished_results_served_without_rerunning(
        self, reference, tmp_path, monkeypatch
    ):
        import shutil

        import repro.serve.service as service_mod

        wal = tmp_path / "wal"
        shutil.copytree(reference.journal_dir, wal)

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("recovery re-ran a finished job")

        monkeypatch.setattr(service_mod, "RunningJob", boom)
        recovered = OptimizationService.recover(wal, **KW)
        for ours, theirs in zip(recovered._tickets, reference._tickets):
            assert ours.status == "completed"
            assert ours.result.best_value == theirs.result.best_value
        assert recovered.events_json() == reference.events_json()

    def test_recovered_ticket_reenters_admission_as_queued(self, tmp_path):
        # Kill right after the very first submit record: the job is
        # journaled but its admission verdict is not — recovery must
        # re-run admission and leave it queued at its original arrival.
        wal = tmp_path / "wal"
        service = OptimizationService(
            journal_dir=wal, journal_kill_at=0, journal_kill_mode="raise", **KW
        )
        with pytest.raises(JournalKillPoint):
            drive(service)
        recovered = OptimizationService.recover(wal, **KW)
        tickets = recovered._tickets
        assert [t.job_id for t in tickets] == [0]
        assert tickets[0].status == "queued"
        assert tickets[0].arrival == ARRIVALS[0]


class TestDegradedReadOnly:
    def _blocked_dir(self, tmp_path):
        # A regular file where the journal wants a directory: mkdir fails
        # with an OSError for every uid, root included (unlike chmod 555).
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory\n")
        return blocker / "wal"

    def test_unwritable_journal_refuses_submissions(self, tmp_path):
        service = OptimizationService(
            journal_dir=self._blocked_dir(tmp_path), **KW
        )
        assert service.read_only
        assert service.journal_error is not None
        assert service.journal_error["error"] == "JournalError"

        async def main():
            return await service.submit(JOBS[0], at=0.0)

        ticket = asyncio.run(main())
        assert ticket.status == "refused"
        assert ticket.finished
        assert service.refusals and service.refusals[0]["job"] == JOBS[0].label
        kinds = [e.kind for e in service.events]
        assert kinds == ["refused"]

    def test_status_and_stream_keep_working(self, tmp_path):
        service = OptimizationService(
            journal_dir=self._blocked_dir(tmp_path), **KW
        )

        async def main():
            ticket = await service.submit(JOBS[0], at=0.0)
            updates = [u async for u in ticket.stream()]
            return ticket, updates

        ticket, updates = asyncio.run(main())
        # The refused ticket is terminal: its stream ends immediately and
        # status() still answers — degraded means read-only, not dead.
        assert updates == []
        assert service.status(ticket.job_id)["status"] == "refused"
        report = service.report()
        assert report.shed_rate == 1.0
        assert report.p50_latency_seconds == 0.0
        assert report.p99_latency_seconds == 0.0
        assert report.mean_latency_seconds == 0.0

    def test_append_failure_mid_flight_degrades(self, tmp_path):
        service = OptimizationService(journal_dir=tmp_path / "wal", **KW)
        assert not service.read_only

        async def main():
            first = await service.submit(JOBS[0], at=0.0)
            await service.drain()

            def fail(record):
                raise OSError("disk gone")

            service._journal.append = fail
            # The submission that trips the failure is already in memory
            # when the append dies — it still runs (read-only mode serves
            # what it has); everything after it is refused.
            second = await service.submit(JOBS[1])
            third = await service.submit(JOBS[2])
            return first, second, third

        first, second, third = asyncio.run(main())
        assert first.status == "completed"
        assert service.read_only
        assert second.status == "completed"
        assert third.status == "refused"

    def test_recover_refuses_unreadable_journal_dir(self, tmp_path):
        with pytest.raises(JournalError):
            OptimizationService.recover(self._blocked_dir(tmp_path), **KW)
