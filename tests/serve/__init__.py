"""Serving-layer tests."""
