"""Serving on catalog devices: ``device=`` and autoscale ``grow_device``.

The service resolves its device once at construction; grown devices (the
lanes the autoscaler adds beyond the base fleet) may run on a different
catalog entry via ``AutoscalePolicy(grow_device=...)``.  Trajectories stay
bit-identical to solo runs regardless — the spec only moves the simulated
clock.
"""

import asyncio

import pytest

from repro.batch import Job
from repro.devices import resolve_device
from repro.engines import make_engine
from repro.errors import ConfigurationError, UnknownDeviceError
from repro.serve import AutoscalePolicy, OptimizationService

JOB = Job(
    "rastrigin", dim=8, n_particles=48, max_iter=25, seed=7,
    record_history=True,
)


def serve_one(job, **service_kwargs):
    async def main():
        service = OptimizationService(**service_kwargs)
        ticket = await service.submit(job)
        return await ticket.wait()

    return asyncio.run(main())


class TestServiceDevice:
    def test_device_resolved_at_construction(self):
        service = OptimizationService(device="a100")
        assert service.device_spec == resolve_device("a100")
        assert OptimizationService().device_spec is None

    def test_unknown_device_fails_fast(self):
        with pytest.raises(UnknownDeviceError, match="did you mean"):
            OptimizationService(device="a10x")

    def test_served_trajectory_matches_solo_on_the_same_device(self):
        served = serve_one(JOB, device="a100")
        solo = make_engine("fastpso", device=resolve_device("a100")).optimize(
            JOB.resolved_problem(),
            n_particles=JOB.n_particles,
            max_iter=JOB.max_iter,
            params=JOB.resolved_params,
            record_history=JOB.record_history,
        )
        assert served.best_value == solo.best_value
        assert served.history.gbest_values == solo.history.gbest_values
        assert served.elapsed_seconds == solo.elapsed_seconds

    def test_device_moves_the_clock_not_the_bits(self):
        on_v100 = serve_one(JOB, device="v100")
        on_a100 = serve_one(JOB, device="a100")
        assert on_v100.best_value == on_a100.best_value
        assert on_v100.history.gbest_values == on_a100.history.gbest_values
        assert on_v100.elapsed_seconds != on_a100.elapsed_seconds


class TestGrowDevice:
    def test_policy_validates_grow_device(self):
        policy = AutoscalePolicy(grow_device="h100")
        assert policy.resolved_grow_spec() == resolve_device("h100")
        assert AutoscalePolicy().resolved_grow_spec() is None
        with pytest.raises(ConfigurationError):
            AutoscalePolicy(grow_device=123)

    def test_unknown_grow_device_fails_at_service_construction(self):
        with pytest.raises(UnknownDeviceError):
            OptimizationService(
                autoscale=AutoscalePolicy(grow_device="h10x")
            )

    def test_grown_lanes_run_on_the_grow_spec(self):
        policy = AutoscalePolicy(
            min_devices=1, max_devices=3, queue_high=2.0, grow_device="h100"
        )

        async def main():
            service = OptimizationService(
                n_devices=1,
                streams_per_device=1,
                device="a100",
                autoscale=policy,
            )
            for s in range(6):
                await service.submit(JOB.with_overrides(seed=s), at=0.0)
            await service.drain()
            return service

        service = asyncio.run(main())
        assert service.n_devices > 1  # the burst forced a scale-up
        assert service._spec_for_device(0) == resolve_device("a100")
        for grown in range(service._base_devices, service.n_devices):
            assert service._spec_for_device(grown) == resolve_device("h100")

    def test_admission_prices_against_the_smallest_memory(self):
        base_only = OptimizationService(device="v100")
        assert (
            base_only._device_mem_bytes()
            == resolve_device("v100").global_mem_bytes
        )
        mixed = OptimizationService(
            device="v100",
            autoscale=AutoscalePolicy(grow_device="laptop"),
        )
        assert (
            mixed._device_mem_bytes()
            == resolve_device("laptop").global_mem_bytes
        )
