"""Cancellation semantics: before dispatch, mid-run, after completion.

Each scenario is also replayed to assert byte-identical event logs —
cancellation is part of the serving determinism contract, not an escape
hatch from it.
"""

import asyncio

import numpy as np
import pytest

from repro.batch import Job
from repro.engines import make_engine
from repro.errors import InvalidParameterError
from repro.serve import OptimizationService

JOB = Job(
    "ackley", dim=10, n_particles=48, max_iter=30, seed=11,
    record_history=True,
)


def solo(job):
    return make_engine("fastpso").optimize(
        job.resolved_problem(),
        n_particles=job.n_particles,
        max_iter=job.max_iter,
        params=job.resolved_params,
        record_history=job.record_history,
    )


async def _scripted_cancel_before_dispatch():
    service = OptimizationService(n_devices=1, streams_per_device=1)
    await service.submit(JOB, at=0.0)  # occupies the only lane
    queued = await service.submit(JOB.with_overrides(seed=12), at=0.0)
    assert queued.status == "queued"
    assert queued.cancel() is True
    await service.drain()
    return service, queued


async def _scripted_cancel_mid_run(checkpoint_dir=None):
    service = OptimizationService(
        n_devices=1, streams_per_device=1, checkpoint_dir=checkpoint_dir
    )
    await service.submit(JOB, at=0.0)
    target = await service.submit(JOB.with_overrides(seed=12), at=0.0)

    async def watcher():
        seen = 0
        async for _ in target.stream():
            seen += 1
            if seen >= 3:
                target.cancel()
                return

    task = asyncio.ensure_future(watcher())
    await service.drain()
    await task
    return service, target


class TestCancelBeforeDispatch:
    def test_queued_cancel_is_a_shed_like_row(self):
        service, queued = asyncio.run(_scripted_cancel_before_dispatch())
        assert queued.status == "cancelled"
        assert queued.result is None
        assert queued.placement is None  # never touched a lane
        assert queued.latency_seconds is None
        event = next(e for e in service.events if e.kind == "cancel")
        assert event.detail["phase"] == "queued"
        assert service.report().counts["cancelled"] == 1

    def test_replay_is_byte_identical(self):
        a, _ = asyncio.run(_scripted_cancel_before_dispatch())
        b, _ = asyncio.run(_scripted_cancel_before_dispatch())
        assert a.events_json() == b.events_json()


class TestCancelMidRun:
    def test_run_stops_with_best_so_far(self):
        service, target = asyncio.run(_scripted_cancel_mid_run())
        assert target.status == "cancelled"
        assert target.result.status == "cancelled"
        assert 0 < target.result.iterations < JOB.max_iter
        assert np.isfinite(target.result.best_value)
        # The cancelled run occupied its lane only for the iterations it
        # actually ran.
        full = solo(JOB.with_overrides(seed=12))
        assert target.placement.duration_seconds < full.elapsed_seconds
        event = next(e for e in service.events if e.kind == "cancel")
        assert event.detail["phase"] == "running"
        assert event.detail["iterations"] == target.result.iterations

    def test_replay_is_byte_identical(self):
        a, _ = asyncio.run(_scripted_cancel_mid_run())
        b, _ = asyncio.run(_scripted_cancel_mid_run())
        assert a.events_json() == b.events_json()

    def test_checkpoint_backed_cancel_resumes_bit_identically(self, tmp_path):
        async def main():
            service, target = await _scripted_cancel_mid_run(tmp_path)
            resumed = await service.resubmit(target.job_id)
            return service, target, resumed

        service, target, resumed = asyncio.run(main())
        assert target.checkpoint_path is not None
        assert resumed.resumed_from == target.job_id
        assert resumed.status == "completed"
        # Resume continues exactly where the cancel stopped: the final
        # answer matches the uninterrupted solo run bit-for-bit.
        reference = solo(JOB.with_overrides(seed=12))
        assert resumed.result.best_value == reference.best_value
        assert np.array_equal(
            resumed.result.best_position, reference.best_position
        )
        assert (
            resumed.result.history.gbest_values
            == reference.history.gbest_values
        )
        submit_event = next(
            e
            for e in service.events
            if e.kind == "submit" and e.job_id == resumed.job_id
        )
        assert submit_event.detail["resumed_from"] == target.job_id

    def test_resubmit_requires_a_checkpoint(self, tmp_path):
        service, queued = asyncio.run(_scripted_cancel_before_dispatch())

        async def main():
            await service.resubmit(queued.job_id)

        with pytest.raises(InvalidParameterError, match="no cancellation"):
            asyncio.run(main())


class TestCancelAfterCompletion:
    def test_is_a_no_op(self):
        async def main():
            service = OptimizationService(n_devices=1)
            ticket = await service.submit(JOB)
            return service, ticket

        service, ticket = asyncio.run(main())
        assert ticket.status == "completed"
        events_before = len(service.events)
        assert ticket.cancel() is False
        assert ticket.status == "completed"
        assert len(service.events) == events_before  # nothing recorded
        # The result is untouched and still solo-identical.
        assert ticket.result.best_value == solo(JOB).best_value
