"""OptimizationService: parity, streaming, quotas, autoscaling, events."""

import asyncio

import numpy as np
import pytest

from repro.batch import Job
from repro.core.budget import Budget
from repro.engines import make_engine
from repro.errors import AdmissionError, ConfigurationError, InvalidParameterError
from repro.serve import (
    AutoscalePolicy,
    OptimizationService,
    TenantQuota,
)

JOB = Job(
    "rastrigin", dim=8, n_particles=48, max_iter=25, seed=7,
    record_history=True,
)


def solo(job):
    return make_engine("fastpso").optimize(
        job.resolved_problem(),
        n_particles=job.n_particles,
        max_iter=job.max_iter,
        params=job.resolved_params,
        record_history=job.record_history,
    )


class TestParity:
    def test_served_result_bit_identical_to_solo(self):
        async def main():
            service = OptimizationService(n_devices=2)
            ticket = await service.submit(JOB)
            return await ticket.wait()

        result = asyncio.run(main())
        reference = solo(JOB)
        assert result.best_value == reference.best_value
        assert np.array_equal(result.best_position, reference.best_position)
        assert result.history.gbest_values == reference.history.gbest_values
        assert result.elapsed_seconds == reference.elapsed_seconds

    def test_concurrent_jobs_each_match_their_solo_run(self):
        jobs = [JOB.with_overrides(seed=s) for s in (1, 2, 3)]

        async def main():
            service = OptimizationService(n_devices=1, streams_per_device=2)
            tickets = [await service.submit(j, at=0.0) for j in jobs]
            await service.drain()
            return tickets

        tickets = asyncio.run(main())
        for job, ticket in zip(jobs, tickets):
            assert ticket.status == "completed"
            assert ticket.result.best_value == solo(job).best_value


class TestStreaming:
    def test_updates_monotone_and_reconstruct_solo_trace(self):
        async def main():
            service = OptimizationService(n_devices=1, streams_per_device=1)
            # Two jobs: the second queues, so a watcher attached before it
            # runs observes its updates live.
            await service.submit(JOB, at=0.0)
            ticket = await service.submit(
                JOB.with_overrides(seed=8), at=0.0
            )
            assert ticket.status == "queued"
            updates = []

            async def watch():
                async for update in ticket.stream():
                    updates.append(update)

            watcher = asyncio.ensure_future(watch())
            await service.drain()
            await watcher
            return ticket, updates

        ticket, updates = asyncio.run(main())
        values = [u.best_value for u in updates]
        assert values, "streaming produced no updates"
        assert all(b < a for a, b in zip(values, values[1:]))
        # Carrying the last update forward reconstructs the solo trace
        # bit-for-bit.
        reference = solo(JOB.with_overrides(seed=8))
        by_iter = {u.iteration: u.best_value for u in updates}
        trace, last = [], None
        for t in range(JOB.max_iter):
            last = by_iter.get(t, last)
            trace.append(last)
        assert trace == reference.history.gbest_values

    def test_late_consumer_replays_and_terminates(self):
        async def main():
            service = OptimizationService(n_devices=1)
            ticket = await service.submit(JOB)  # runs eagerly (idle fleet)
            assert ticket.finished
            seen = [u async for u in ticket.stream()]
            return seen

        seen = asyncio.run(main())
        assert seen and seen[0].iteration == 0


class TestQuotas:
    def test_max_active_sheds_overflow(self):
        quota = TenantQuota(max_active=1)

        async def main():
            service = OptimizationService(
                n_devices=1, streams_per_device=1,
                quotas={"free": quota},
            )
            first = await service.submit(JOB, tenant="free", at=0.0)
            # First job ran eagerly but still occupies its lane in virtual
            # time, so a second arrival inside that window is refused.
            second = await service.submit(
                JOB.with_overrides(seed=9), tenant="free", at=0.0
            )
            third = await service.submit(
                JOB.with_overrides(seed=10), tenant="other", at=0.0
            )
            await service.drain()
            return first, second, third

        first, second, third = asyncio.run(main())
        assert first.status == "completed"
        assert second.status == "shed"
        assert "active-job quota 1" in second.admission_reason
        assert third.status == "completed"  # other tenants unaffected

    def test_tenant_budget_merges_tightest_wins(self):
        tiny = Budget(iterations=5)

        async def main():
            service = OptimizationService(
                n_devices=1, quotas={"free": TenantQuota(budget=tiny)}
            )
            capped = await service.submit(JOB, tenant="free")
            free = await service.submit(JOB.with_overrides(seed=9))
            return capped, free

        capped, free = asyncio.run(main())
        assert capped.status == "budget_exhausted"
        assert capped.result.iterations == 5
        assert free.status == "completed"

    def test_tenant_priority_overrides_job_priority(self):
        async def main():
            service = OptimizationService(
                n_devices=1, streams_per_device=1,
                quotas={"pro": TenantQuota(priority=10)},
            )
            # Fill the lane, then queue free before pro; pro must run first.
            await service.submit(JOB, at=0.0)
            free = await service.submit(
                JOB.with_overrides(seed=1), tenant="free", at=0.0
            )
            pro = await service.submit(
                JOB.with_overrides(seed=2), tenant="pro", at=0.0
            )
            await service.drain()
            return free, pro

        free, pro = asyncio.run(main())
        assert pro.placement.start_seconds < free.placement.start_seconds

    def test_quota_validation(self):
        with pytest.raises(ConfigurationError, match="max_active"):
            TenantQuota(max_active=0)
        with pytest.raises(ConfigurationError, match="budget"):
            TenantQuota(budget=3.0)


class TestAdmission:
    def test_queue_bound_sheds_arrivals(self):
        async def main():
            service = OptimizationService(
                n_devices=1, streams_per_device=1, max_queue=1
            )
            tickets = [
                await service.submit(JOB.with_overrides(seed=s), at=0.0)
                for s in range(3)
            ]
            await service.drain()
            return tickets

        tickets = asyncio.run(main())
        statuses = [t.status for t in tickets]
        assert statuses[0] == "completed"  # ran eagerly, never queued
        assert statuses[1] == "completed"  # queued within the bound
        assert statuses[2] == "shed"
        assert "queue bound 1" in tickets[2].admission_reason

    def test_strict_mode_raises(self):
        async def main():
            service = OptimizationService(
                n_devices=1, streams_per_device=1,
                admission="strict", max_queue=1,
            )
            for s in range(2):
                await service.submit(JOB.with_overrides(seed=s), at=0.0)
            await service.submit(JOB.with_overrides(seed=99), at=0.0)

        with pytest.raises(AdmissionError, match="queue bound"):
            asyncio.run(main())

    def test_arrivals_must_be_non_decreasing(self):
        async def main():
            service = OptimizationService()
            await service.submit(JOB, at=5.0)
            await service.submit(JOB, at=4.0)

        with pytest.raises(InvalidParameterError, match="non-decreasing"):
            asyncio.run(main())


class TestAutoscaling:
    def test_grows_under_queue_pressure_and_shrinks_when_idle(self):
        policy = AutoscalePolicy(
            min_devices=1, max_devices=3, queue_high=2.0,
            idle_observations=2,
        )

        async def main():
            service = OptimizationService(
                n_devices=1, streams_per_device=1, autoscale=policy
            )
            # Burst at t=0 queues deep; the autoscaler grows the fleet.
            for s in range(6):
                await service.submit(JOB.with_overrides(seed=s), at=0.0)
            await service.drain()
            grown = service.n_devices
            # Sparse arrivals leave the fleet idle; it shrinks back.
            t = service.now
            for s in range(4):
                t += 1.0
                await service.submit(JOB.with_overrides(seed=10 + s), at=t)
            await service.drain()
            return service, grown

        service, grown = asyncio.run(main())
        assert grown > 1
        kinds = [e.kind for e in service.events]
        assert "scale_up" in kinds and "scale_down" in kinds
        assert len(service.active_devices) < grown

    def test_boot_delay_defers_new_lanes(self):
        policy = AutoscalePolicy(
            min_devices=1, max_devices=2, queue_high=1.0, boot_seconds=50.0
        )

        async def main():
            service = OptimizationService(
                n_devices=1, streams_per_device=1, autoscale=policy
            )
            for s in range(3):
                await service.submit(JOB.with_overrides(seed=s), at=0.0)
            await service.drain()
            return service

        service = asyncio.run(main())
        ups = [e for e in service.events if e.kind == "scale_up"]
        assert ups and ups[0].detail["lanes_open_at"] == pytest.approx(
            ups[0].time + 50.0
        )
        # Lanes open too late to help this burst: everything ran on dev 0.
        devices = {
            e.detail["device"]
            for e in service.events
            if e.kind == "dispatch"
        }
        assert devices == {0}

    def test_n_devices_must_respect_bounds(self):
        with pytest.raises(ConfigurationError, match="bounds"):
            OptimizationService(
                n_devices=5, autoscale=AutoscalePolicy(max_devices=4)
            )

    def test_decisions_are_replayable(self):
        async def run_once():
            service = OptimizationService(
                n_devices=1,
                streams_per_device=1,
                autoscale=AutoscalePolicy(max_devices=3, queue_high=2.0),
            )
            for s in range(6):
                await service.submit(JOB.with_overrides(seed=s), at=0.0)
            await service.drain()
            return service.events_json()

        assert asyncio.run(run_once()) == asyncio.run(run_once())


class TestStatusAndReport:
    def test_status_rows_and_report_counts(self):
        async def main():
            service = OptimizationService(n_devices=1)
            await service.submit(JOB, at=0.0)
            await service.submit(JOB.with_overrides(seed=9), at=0.0)
            await service.drain()
            return service

        service = asyncio.run(main())
        rows = service.status()
        assert [row["job_id"] for row in rows] == [0, 1]
        assert all(row["status"] == "completed" for row in rows)
        assert service.status(0)["latency"] > 0
        report = service.report()
        assert report.n_jobs == 2
        assert report.counts == {"completed": 2}
        assert report.p50_latency_seconds > 0
        assert report.p99_latency_seconds >= report.p50_latency_seconds
        assert report.throughput_per_second > 0
        assert report.shed_rate == 0.0
        assert "2 job(s)" in report.summary()

    def test_unknown_job_id_rejected(self):
        service = OptimizationService()
        with pytest.raises(InvalidParameterError, match="unknown job id"):
            service.status(3)

    def test_empty_report_is_all_zeroes(self):
        # No submissions: the degenerate report must not raise on the
        # empty latency set — every rate and percentile is a plain 0.0.
        report = OptimizationService().report()
        assert report.n_jobs == 0
        assert report.counts == {}
        assert report.p50_latency_seconds == 0.0
        assert report.p99_latency_seconds == 0.0
        assert report.mean_latency_seconds == 0.0
        assert report.throughput_per_second == 0.0
        assert report.shed_rate == 0.0
        assert "0 job(s)" in report.summary()

    def test_all_refused_report_sheds_everything_with_zeroed_latencies(
        self, tmp_path
    ):
        # A drill where every submission is refused (degraded read-only
        # service) has no finished latencies at all: shed_rate pegs at
        # 1.0 and the percentile fields report 0.0 instead of raising.
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory\n")
        service = OptimizationService(journal_dir=blocker / "wal")

        async def main():
            for seed in (1, 2, 3):
                await service.submit(JOB.with_overrides(seed=seed), at=0.0)

        asyncio.run(main())
        report = service.report()
        assert report.n_jobs == 3
        assert report.counts == {"refused": 3}
        assert report.shed_rate == 1.0
        assert report.p50_latency_seconds == 0.0
        assert report.p99_latency_seconds == 0.0
        assert report.mean_latency_seconds == 0.0
        assert report.throughput_per_second == 0.0
        assert "shed=100.00%" in report.summary()
