"""Watchdog leases and serve-level retry: stalls detected, attempts retried.

The lease is simulated seconds between progress marks: a run that stops
advancing (injected ``stall`` fault) trips the watchdog, is journaled as
``stalled``, and retries under the service's :class:`RetryPolicy` — with
CPU failover through the breaker path on the final attempt, exactly like
``run_with_recovery``.  The drill must end with no hung lanes and, thanks
to the fastpso family's bit-identical numerics, the retried job's answer
equal to its un-faulted run.
"""

import asyncio

import pytest

from repro.batch import Job
from repro.errors import InvalidParameterError
from repro.reliability.faults import FaultPlan, FaultSpec
from repro.reliability.retry import RetryPolicy
from repro.serve import OptimizationService
from repro.serve.journal import read_journal

JOBS = [
    Job("sphere", dim=8, n_particles=32, max_iter=25, engine="fastpso", seed=s)
    for s in range(3)
]
ARRIVALS = [0.0, 1e-5, 2e-5]

STALL_PLAN = FaultPlan(
    {1: (FaultSpec("stall", after=8, stall_seconds=5e-3),)}, seed=7
)


def drive(service):
    async def main():
        tickets = []
        for job, at in zip(JOBS, ARRIVALS):
            tickets.append(await service.submit(job, at=at))
        await service.drain()
        return tickets

    return asyncio.run(main())


def solo_best(job):
    from repro.engines import make_engine

    result = make_engine("fastpso").optimize(
        job.resolved_problem(),
        n_particles=job.n_particles,
        max_iter=job.max_iter,
        params=job.resolved_params,
    )
    return result.best_value


class TestWatchdog:
    def test_stalled_run_retries_and_completes(self, tmp_path):
        service = OptimizationService(
            n_devices=1,
            streams_per_device=2,
            journal_dir=tmp_path / "wal",
            checkpoint_every=5,
            faults=STALL_PLAN,
            retry=RetryPolicy(max_attempts=3, backoff_seconds=1e-4),
            watchdog_seconds=1e-3,
            breaker=True,
        )
        tickets = drive(service)
        # No hung lanes: drain() returned and every ticket is terminal.
        assert all(t.finished for t in tickets)
        assert [t.status for t in tickets] == ["completed"] * 3

        kinds = [e.kind for e in service.events]
        assert "stalled" in kinds and "retry" in kinds
        stalled = next(e for e in service.events if e.kind == "stalled")
        assert stalled.job_id == 1
        assert "watchdog" in stalled.detail["error"].lower() or (
            "stall" in stalled.detail["error"].lower()
        )
        retry = next(e for e in service.events if e.kind == "retry")
        assert retry.job_id == 1
        assert retry.detail["attempt"] == 1
        assert retry.detail["backoff_seconds"] == 1e-4

        report = service.report()
        assert report.retries == 1
        assert report.stalled == 1
        assert report.to_dict()["retries"] == 1

        # Bit-identical numerics across the retry: the stalled job's
        # answer matches its never-faulted solo run.
        assert tickets[1].result.best_value == solo_best(JOBS[1])

        # The attempt is recorded durably, not just in memory.
        records, _ = read_journal(tmp_path / "wal" / "service.wal")
        journaled = [
            r["event"]["kind"] for r in records if r["type"] == "event"
        ]
        assert "stalled" in journaled and "retry" in journaled
        retry_rec = next(
            r
            for r in records
            if r["type"] == "event" and r["event"]["kind"] == "retry"
        )
        assert retry_rec["extra"]["overhead"] > 0.0
        assert retry_rec["extra"]["injector"] is not None

    def test_stall_without_retry_policy_fails_the_job(self, tmp_path):
        service = OptimizationService(
            n_devices=1,
            streams_per_device=2,
            faults=STALL_PLAN,
            watchdog_seconds=1e-3,
        )
        tickets = drive(service)
        assert [t.status for t in tickets] == [
            "completed",
            "failed",
            "completed",
        ]
        failed = next(e for e in service.events if e.kind == "failed")
        assert failed.job_id == 1
        assert "StalledRunError" in failed.detail["error"]
        kinds = [e.kind for e in service.events]
        assert "stalled" in kinds and "retry" not in kinds

    def test_watchdog_lease_must_be_positive(self):
        with pytest.raises(InvalidParameterError):
            OptimizationService(watchdog_seconds=0.0)

    def test_retry_count_shorthand_and_bool_rejection(self):
        service = OptimizationService(retry=2)
        assert service.retry.max_attempts == 2
        with pytest.raises(InvalidParameterError):
            OptimizationService(retry=True)


class TestCpuFailover:
    def test_sticky_device_fault_fails_over_to_cpu(self, tmp_path):
        # A sticky device-lost fault burns every GPU attempt; the final
        # attempt degrades to the CPU substrate and completes with
        # bit-identical numerics.
        plan = FaultPlan({0: (FaultSpec("device_lost", after=6),)}, seed=3)
        service = OptimizationService(
            n_devices=1,
            streams_per_device=2,
            journal_dir=tmp_path / "wal",
            checkpoint_every=5,
            faults=plan,
            retry=RetryPolicy(max_attempts=2, backoff_seconds=1e-4),
            breaker=True,
        )
        tickets = drive(service)
        assert [t.status for t in tickets] == ["completed"] * 3
        complete = next(
            e
            for e in service.events
            if e.kind == "complete" and e.job_id == 0
        )
        assert complete.detail["cpu_fallback"] is True
        assert complete.detail["attempts"] == 2
        assert tickets[0].result.best_value == solo_best(JOBS[0])

    def test_failover_drill_replays_identically(self, tmp_path):
        plan = FaultPlan({0: (FaultSpec("device_lost", after=6),)}, seed=3)
        kw = dict(
            n_devices=1,
            streams_per_device=2,
            checkpoint_every=5,
            faults=plan,
            retry=RetryPolicy(max_attempts=2, backoff_seconds=1e-4),
            breaker=True,
        )
        first = OptimizationService(journal_dir=tmp_path / "a", **kw)
        drive(first)
        second = OptimizationService(journal_dir=tmp_path / "b", **kw)
        drive(second)
        assert first.events_json() == second.events_json()
