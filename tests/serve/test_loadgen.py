"""Load generator: deterministic sessions, replay drills, the CLI."""

import pytest

from repro.errors import ConfigurationError
from repro.serve import (
    AutoscalePolicy,
    LoadProfile,
    build_sessions,
    run_drill,
)
from repro.serve.__main__ import main as serve_main

SMALL = LoadProfile(n_sessions=40, seed=7)


class TestBuildSessions:
    def test_deterministic_and_monotone(self):
        a = build_sessions(SMALL)
        b = build_sessions(SMALL)
        assert a == b
        arrivals = [s.arrival for s in a]
        assert arrivals == sorted(arrivals)
        assert len({s.seed for s in a}) > 1  # per-session seeds vary

    def test_tenant_mix_draws_from_profile(self):
        tenants = {s.tenant for s in build_sessions(LoadProfile(
            n_sessions=200, seed=7
        ))}
        assert tenants == {"free", "pro"}

    def test_cancel_fraction_marks_sessions(self):
        sessions = build_sessions(
            LoadProfile(n_sessions=100, seed=7, cancel_fraction=0.5)
        )
        cancelling = [s for s in sessions if s.cancel_after_updates]
        assert 20 < len(cancelling) < 80

    def test_profile_validation(self):
        with pytest.raises(ConfigurationError, match="n_sessions"):
            LoadProfile(n_sessions=0)
        with pytest.raises(ConfigurationError, match="mean_interarrival"):
            LoadProfile(mean_interarrival=0.0)
        with pytest.raises(ConfigurationError, match="cancel_fraction"):
            LoadProfile(cancel_fraction=1.5)


class TestReplayDrill:
    def test_drill_is_byte_replayable_with_cancels(self):
        profile = LoadProfile(n_sessions=30, seed=7, cancel_fraction=0.3)
        a = run_drill(profile, n_devices=2)
        b = run_drill(profile, n_devices=2)
        assert a.events_json() == b.events_json()
        assert a.report().counts.get("cancelled", 0) > 0

    def test_autoscale_beats_pinned_fleet_on_tail_latency(self):
        # Same arrival storm; the only difference is whether the fleet may
        # grow.  All latencies are virtual, so the comparison is exact.
        pinned = run_drill(SMALL, n_devices=1, autoscale=None)
        scaled = run_drill(
            SMALL,
            n_devices=1,
            autoscale=AutoscalePolicy(max_devices=4, queue_high=2.0),
        )
        assert scaled.report().scale_ups > 0
        assert (
            scaled.report().p99_latency_seconds
            < pinned.report().p99_latency_seconds
        )

    def test_strict_sheds_are_absorbed(self):
        profile = LoadProfile(n_sessions=20, seed=7)
        service = run_drill(
            profile,
            n_devices=1,
            streams_per_device=1,
            admission="strict",
            max_queue=2,
            autoscale=None,
        )
        report = service.report()
        assert report.counts.get("shed", 0) > 0
        assert report.n_jobs == profile.n_sessions


class TestServeCli:
    def test_runs_twice_byte_identical(self, tmp_path, capsys):
        def drill(tag):
            out = tmp_path / f"report-{tag}.json"
            events = tmp_path / f"events-{tag}.json"
            code = serve_main([
                "--sessions", "25",
                "--seed", "3",
                "--cancel-fraction", "0.2",
                "--out", str(out),
                "--events-json", str(events),
            ])
            assert code == 0
            return out.read_bytes(), events.read_bytes()

        report_a, events_a = drill("a")
        report_b, events_b = drill("b")
        assert events_a == events_b
        assert report_a == report_b
        assert "job(s)" in capsys.readouterr().out

    def test_no_autoscale_pins_fleet(self, tmp_path):
        events = tmp_path / "events.json"
        code = serve_main([
            "--sessions", "15",
            "--no-autoscale",
            "--events-json", str(events),
        ])
        assert code == 0
        assert b"scale_up" not in events.read_bytes()
