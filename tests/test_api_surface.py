"""API-surface snapshot: the public names are a contract, pinned here.

Adding a name is deliberate (extend the snapshot in the same change);
removing or renaming one is a breaking change and must go through a
deprecation cycle like the ``spec``→``device`` rename — this test is what
makes accidental drift impossible.  ``__all__`` and the importable module
namespace are checked against each other too, so every advertised name
actually resolves.
"""

import pytest

REPRO_PUBLIC = {
    "AdmissionPolicy",
    "AutoscalePolicy",
    "BatchResult",
    "BatchScheduler",
    "BreakerPolicy",
    "Budget",
    "CheckpointManager",
    "ENGINE_NAMES",
    "FastPSO",
    "FaultPlan",
    "FaultSpec",
    "Job",
    "LoadProfile",
    "OptimizationService",
    "OptimizeResult",
    "PAPER_DEFAULTS",
    "PSOParams",
    "Problem",
    "RUN_STATUSES",
    "RecoveryReport",
    "ReproError",
    "RetryPolicy",
    "SwarmHealthGuard",
    "TenantQuota",
    "__version__",
    "available_engines",
    "available_functions",
    "calibrate",
    "device_names",
    "get_function",
    "make_device",
    "make_engine",
    "make_function",
    "resolve_device",
    "resolve_engine",
    "resolve_function",
    "resolve_policy",
    "resume",
    "run_with_recovery",
    "use_device",
}

RELIABILITY_PUBLIC = {
    "BreakerPolicy",
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointManager",
    "CircuitBreaker",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FleetHealth",
    "GuardEvent",
    "RecoveryReport",
    "RetryPolicy",
    "RunSnapshot",
    "SwarmHealthGuard",
    "capture_live_run",
    "capture_run",
    "read_snapshot",
    "resume",
    "run_with_recovery",
    "write_snapshot",
}

ENGINES_PUBLIC = {
    "AsyncFastPSOEngine",
    "BACKENDS",
    "ENGINE_NAMES",
    "Engine",
    "FastPSOEngine",
    "GpuHeteroEngine",
    "GpuParticleEngine",
    "LibraryEngineBase",
    "MultiGpuFastPSOEngine",
    "OpenMPEngine",
    "PySwarmsLikeEngine",
    "ScikitOptLikeEngine",
    "resolve_engine",
    "SequentialEngine",
    "available_engines",
    "engine_accepts_device",
    "engine_supports_graph",
    "make_engine",
}

BATCH_PUBLIC = {
    "ADMISSION_MODES",
    "AdmissionDecision",
    "AdmissionPolicy",
    "BatchResult",
    "BatchScheduler",
    "FleetTimeline",
    "Job",
    "JobOutcome",
    "LanePlacement",
    "POLICIES",
    "RunningJob",
    "WORKLOAD_PROBLEMS",
    "estimate_job_bytes",
    "mixed_workload",
    "resolve_policy",
    "start_job",
}

SERVE_PUBLIC = {
    "AutoscalePolicy",
    "Autoscaler",
    "ClientSession",
    "EVENT_KINDS",
    "JOURNAL_SCHEMA_VERSION",
    "JobTicket",
    "JournalKillPoint",
    "LoadProfile",
    "OptimizationService",
    "ProgressUpdate",
    "ServiceEvent",
    "ServiceJournal",
    "ServiceReport",
    "TenantQuota",
    "build_sessions",
    "events_to_json",
    "job_from_spec",
    "job_to_spec",
    "read_journal",
    "replay",
    "run_drill",
}

DEVICES_PUBLIC = {
    "CalibrationResult",
    "CalibrationTarget",
    "CapturedWorkload",
    "CatalogEntry",
    "MACHINES_DIR",
    "PAPER_TARGETS",
    "calibrate",
    "capture_workload",
    "device_entries",
    "device_names",
    "get_default_device",
    "load_machine_file",
    "make_device",
    "register_machine_file",
    "resolve_device",
    "resolve_entry",
    "set_default_device",
    "use_device",
}

FUNCTIONS_PUBLIC = {
    "Ackley",
    "BenchmarkFunction",
    "DixonPrice",
    "Easom",
    "EvalProfile",
    "Griewank",
    "Levy",
    "Michalewicz",
    "PAPER_FUNCTIONS",
    "Rastrigin",
    "Rosenbrock",
    "Schwefel",
    "Sphere",
    "StyblinskiTang",
    "Zakharov",
    "available_functions",
    "get_function",
    "make_function",
    "register",
    "resolve_function",
}

#: Registry names are part of the surface: scripts and configs key on them.
CANONICAL_ENGINE_NAMES = {
    "pyswarms",
    "scikit-opt",
    "gpu-pso",
    "hgpu-pso",
    "fastpso-seq",
    "fastpso-omp",
    "fastpso",
}

ENGINE_ALIASES = {
    "async",
    "fastpso-fp16",
    "fastpso-fused",
    "fastpso-global",
    "fastpso-nocache",
    "fastpso-shared",
    "fastpso-tc",
    "fastpso-tensorcore",
    "mgpu",
}


@pytest.mark.parametrize(
    "module_name, snapshot",
    [
        ("repro", REPRO_PUBLIC),
        ("repro.engines", ENGINES_PUBLIC),
        ("repro.batch", BATCH_PUBLIC),
        ("repro.reliability", RELIABILITY_PUBLIC),
        ("repro.serve", SERVE_PUBLIC),
        ("repro.functions", FUNCTIONS_PUBLIC),
        ("repro.devices", DEVICES_PUBLIC),
    ],
)
class TestSurfaceSnapshot:
    def test_all_matches_snapshot(self, module_name, snapshot):
        module = __import__(module_name, fromlist=["__all__"])
        assert set(module.__all__) == snapshot

    def test_every_advertised_name_resolves(self, module_name, snapshot):
        module = __import__(module_name, fromlist=["__all__"])
        for name in snapshot:
            assert getattr(module, name, None) is not None, name


class TestRegistryNames:
    def test_canonical_names_pinned(self):
        from repro import ENGINE_NAMES

        assert set(ENGINE_NAMES) == CANONICAL_ENGINE_NAMES

    def test_available_engines_covers_canonical_plus_extensions(self):
        from repro import available_engines

        names = available_engines()
        assert names == tuple(sorted(names))
        assert CANONICAL_ENGINE_NAMES <= set(names)

    def test_aliases_pinned(self):
        from repro.engines import _ALIASES

        assert set(_ALIASES) == ENGINE_ALIASES

    def test_aliases_resolve_to_canonical_engines(self):
        from repro.engines import _ALIASES, make_engine

        for alias in ENGINE_ALIASES:
            target = _ALIASES[alias][0]
            # mgpu needs a positional worker count; everything else builds
            # with registry defaults.
            if alias == "mgpu":
                engine = make_engine(alias, n_devices=2)
            else:
                engine = make_engine(alias)
            assert engine.name  # constructed, not just looked up
            assert target in _canonical_targets()


def _canonical_targets():
    from repro.engines import available_engines

    return set(available_engines())


class TestTopLevelConvenience:
    def test_one_import_serves_the_common_path(self):
        """The README's quickstart works from a single import."""
        from repro import BatchScheduler, Job, make_engine

        engine = make_engine("fastpso")
        assert engine.name == "fastpso"
        assert BatchScheduler().submit(Job("sphere", dim=4)).dim == 4


#: The serve CLI's flags are a contract too: CI scripts and operator
#: runbooks key on them, so adding one extends this snapshot and removing
#: one is a breaking change.
SERVE_CLI_OPTIONS = {
    "--boot-seconds",
    "--cancel-fraction",
    "--checkpoint-dir",
    "--deadline",
    "--devices",
    "--events-json",
    "--faults",
    "--help",
    "--journal-dir",
    "--kill-at-record",
    "--max-devices",
    "--max-queue",
    "--mean-interarrival",
    "--no-autoscale",
    "--no-journal-fsync",
    "--out",
    "--retry",
    "--seed",
    "--sessions",
    "--streams",
    "--watchdog-seconds",
}


class TestCliSurface:
    def test_serve_cli_flags_pinned(self):
        from repro.serve.__main__ import build_parser

        options = {
            option
            for action in build_parser()._actions
            for option in action.option_strings
            if option.startswith("--")
        }
        assert options == SERVE_CLI_OPTIONS

    def test_serve_help_text_mentions_durability_surface(self):
        from repro.serve.__main__ import build_parser

        text = build_parser().format_help()
        for needle in (
            "--journal-dir",
            "--kill-at-record",
            "--retry",
            "--watchdog-seconds",
            "recover",
        ):
            assert needle in text, needle

    def test_repro_usage_snapshot(self):
        from repro.cli import _USAGE

        assert _USAGE == (
            "usage: repro {serve,batch,bench,devices} [args...]\n"
            "\n"
            "commands:\n"
            "  serve    run the serving-layer load drill "
            "(python -m repro.serve);\n"
            "           'repro serve recover --journal-dir DIR' resumes a\n"
            "           crashed drill from its write-ahead journal\n"
            "  batch    run the batch scheduler CLI (python -m repro.batch)\n"
            "  bench    run paper experiments (fastpso-bench)\n"
            "  devices  inspect the device catalog / calibrate the cost "
            "model\n"
            "           (python -m repro.devices)\n"
        )

    def test_serve_exit_codes_match_batch_convention(self, tmp_path):
        # 2 = refused/shed or configuration error, matching the batch CLI.
        from repro.serve.__main__ import main

        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory\n")
        code = main(
            [
                "--sessions",
                "3",
                "--no-autoscale",
                "--journal-dir",
                str(blocker / "wal"),
            ]
        )
        assert code == 2
        assert main(["recover"]) == 2  # missing --journal-dir
