"""Launch geometry helpers and the Launcher choke point."""

import numpy as np
import pytest

from repro.errors import InvalidLaunchError
from repro.gpusim.clock import SimClock
from repro.gpusim.kernel import Kernel, KernelSpec, LaunchConfig
from repro.gpusim.launch import (
    Launcher,
    resource_aware_config,
    thread_per_item_config,
)


class TestResourceAwareConfig:
    def test_small_problem_gets_exact_threads(self, v100):
        cfg = resource_aware_config(v100, 1000, threads_per_block=256)
        assert cfg.grid_blocks == 4
        assert cfg.workload_per_thread(1000) == 1

    def test_large_problem_capped_at_resident_capacity(self, v100):
        n = 10_000_000
        cfg = resource_aware_config(v100, n)
        assert cfg.total_threads <= v100.max_resident_threads
        # grid-stride covers the rest
        assert cfg.workload_per_thread(n) * cfg.total_threads >= n

    def test_eq3_thread_workload(self, v100):
        """Paper Eq. 3: workload grows once the device saturates."""
        cfg = resource_aware_config(v100, v100.max_resident_threads * 7)
        assert cfg.workload_per_thread(v100.max_resident_threads * 7) == 7

    def test_zero_elements_rejected(self, v100):
        with pytest.raises(InvalidLaunchError):
            resource_aware_config(v100, 0)

    def test_bad_block_size_rejected(self, v100):
        with pytest.raises(InvalidLaunchError):
            resource_aware_config(v100, 100, threads_per_block=4096)


class TestThreadPerItemConfig:
    def test_exact_one_thread_per_item(self, v100):
        cfg = thread_per_item_config(v100, 5000, threads_per_block=128)
        assert cfg.grid_blocks == 40  # ceil(5000/128)
        assert cfg.total_threads >= 5000

    def test_not_capped_by_capacity(self, v100):
        n = 10_000_000
        cfg = thread_per_item_config(v100, n, threads_per_block=256)
        assert cfg.total_threads >= n  # the "thread explosion" behaviour

    def test_zero_items_rejected(self, v100):
        with pytest.raises(InvalidLaunchError):
            thread_per_item_config(v100, 0)


class TestLauncher:
    def _launcher(self, v100):
        # Per-launch records are opt-in since the aggregation-first rework.
        return Launcher(spec=v100, clock=SimClock(), record_launches=True)

    def test_launch_executes_semantics_and_returns(self, v100):
        launcher = self._launcher(v100)
        k = Kernel(KernelSpec(name="double"), semantics=lambda a: a * 2)
        out = launcher.launch(k, 4, np.arange(4))
        np.testing.assert_array_equal(out, [0, 2, 4, 6])

    def test_launch_advances_clock(self, v100):
        launcher = self._launcher(v100)
        k = Kernel(KernelSpec(name="k"), semantics=lambda: None)
        launcher.launch(k, 1_000_000)
        assert launcher.clock.now > 0

    def test_launch_records_profile_entry(self, v100):
        launcher = self._launcher(v100)
        k = Kernel(KernelSpec(name="k"), semantics=lambda: None)
        launcher.launch(k, 123)
        assert len(launcher.records) == 1
        rec = launcher.records[0]
        assert rec.kernel_name == "k"
        assert rec.n_elems == 123

    def test_launch_uses_default_resource_aware_config(self, v100):
        launcher = self._launcher(v100)
        k = Kernel(KernelSpec(name="k"), semantics=lambda: None)
        launcher.launch(k, 10_000_000)
        cfg = launcher.records[0].config
        assert cfg.total_threads <= v100.max_resident_threads

    def test_launch_with_explicit_config(self, v100):
        launcher = self._launcher(v100)
        k = Kernel(KernelSpec(name="k"), semantics=lambda: None)
        launcher.launch(k, 100, config=LaunchConfig(2, 64))
        assert launcher.records[0].config.grid_blocks == 2

    def test_launch_validates_shared_mem(self, v100):
        launcher = self._launcher(v100)
        k = Kernel(
            KernelSpec(name="k", shared_mem_per_block=200 * 1024),
            semantics=lambda: None,
        )
        with pytest.raises(InvalidLaunchError):
            launcher.launch(k, 100)

    def test_launch_tags_active_section(self, v100):
        launcher = self._launcher(v100)
        k = Kernel(KernelSpec(name="k"), semantics=lambda: None)
        with launcher.clock.section("swarm"):
            launcher.launch(k, 100)
        assert launcher.records[0].section == "swarm"
        assert launcher.clock.total("swarm") > 0

    def test_reset_records(self, v100):
        launcher = self._launcher(v100)
        k = Kernel(KernelSpec(name="k"), semantics=lambda: None)
        launcher.launch(k, 100)
        launcher.reset_records()
        assert launcher.records == []

    def test_kwargs_forwarded(self, v100):
        launcher = self._launcher(v100)
        k = Kernel(
            KernelSpec(name="k"), semantics=lambda a, *, scale: a * scale
        )
        out = launcher.launch(k, 4, np.ones(4), scale=3.0)
        np.testing.assert_array_equal(out, 3.0 * np.ones(4))
