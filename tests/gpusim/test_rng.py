"""Philox4x32-10 correctness: known-answer vectors, stream properties."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.gpusim.rng import ParallelRNG, philox4x32


class TestKnownAnswerVectors:
    """Random123's published KAT vectors for philox4x32-10."""

    def test_zero_counter_zero_key(self):
        out = philox4x32(np.zeros((1, 4), np.uint32), np.zeros(2, np.uint32))
        assert [hex(int(x)) for x in out[0]] == [
            "0x6627e8d5",
            "0xe169c58d",
            "0xbc57ac4c",
            "0x9b00dbd8",
        ]

    def test_all_ones_counter_and_key(self):
        ctr = np.full((1, 4), 0xFFFFFFFF, np.uint32)
        key = np.full(2, 0xFFFFFFFF, np.uint32)
        out = philox4x32(ctr, key)
        assert [hex(int(x)) for x in out[0]] == [
            "0x408f276d",
            "0x41c83b0e",
            "0xa20bc7c6",
            "0x6d5451fd",
        ]

    def test_pi_digits_vector(self):
        ctr = np.array(
            [[0x243F6A88, 0x85A308D3, 0x13198A2E, 0x03707344]], np.uint32
        )
        key = np.array([0xA4093822, 0x299F31D0], np.uint32)
        out = philox4x32(ctr, key)
        assert [hex(int(x)) for x in out[0]] == [
            "0xd16cfe09",
            "0x94fdcceb",
            "0x5001e420",
            "0x24126ea1",
        ]


class TestPhiloxBatching:
    def test_batch_matches_single_blocks(self):
        """Vectorised lanes must equal per-block evaluation."""
        ctr = np.arange(40, dtype=np.uint32).reshape(10, 4)
        key = np.array([3, 5], np.uint32)
        batched = philox4x32(ctr, key)
        singles = np.vstack(
            [philox4x32(ctr[i : i + 1], key) for i in range(10)]
        )
        np.testing.assert_array_equal(batched, singles)

    def test_per_row_keys(self):
        ctr = np.zeros((3, 4), np.uint32)
        keys = np.array([[0, 0], [1, 0], [0, 1]], np.uint32)
        out = philox4x32(ctr, keys)
        assert len({tuple(row) for row in out.tolist()}) == 3

    def test_input_not_mutated(self):
        ctr = np.zeros((2, 4), np.uint32)
        before = ctr.copy()
        philox4x32(ctr, np.zeros(2, np.uint32))
        np.testing.assert_array_equal(ctr, before)

    def test_bad_counter_shape_rejected(self):
        with pytest.raises(ValueError, match="counter"):
            philox4x32(np.zeros((4,), np.uint32), np.zeros(2, np.uint32))

    def test_bad_key_shape_rejected(self):
        with pytest.raises(ValueError, match="key"):
            philox4x32(np.zeros((2, 4), np.uint32), np.zeros(3, np.uint32))

    def test_rounds_must_be_positive(self):
        with pytest.raises(ValueError, match="rounds"):
            philox4x32(
                np.zeros((1, 4), np.uint32), np.zeros(2, np.uint32), rounds=0
            )

    def test_fewer_rounds_differ(self):
        ctr = np.zeros((1, 4), np.uint32)
        key = np.zeros(2, np.uint32)
        assert not np.array_equal(
            philox4x32(ctr, key, rounds=7), philox4x32(ctr, key, rounds=10)
        )


class TestParallelRNG:
    def test_deterministic_for_seed(self):
        a = ParallelRNG(99).uniform((100,))
        b = ParallelRNG(99).uniform((100,))
        np.testing.assert_array_equal(a, b)

    def test_sequential_calls_do_not_overlap(self):
        rng = ParallelRNG(1)
        first = rng.random_uint32(64)
        second = rng.random_uint32(64)
        # Disjoint counter blocks -> astronomically unlikely to share values
        # in this tiny sample; equality would indicate counter reuse.
        assert not np.array_equal(first, second)

    def test_split_then_draw_matches_one_shot(self):
        """Counter-based: drawing 128 equals drawing 64 twice."""
        one_shot = ParallelRNG(7).random_uint32(128)
        rng = ParallelRNG(7)
        twice = np.concatenate([rng.random_uint32(64), rng.random_uint32(64)])
        np.testing.assert_array_equal(one_shot, twice)

    def test_streams_are_disjoint(self):
        a = ParallelRNG(5, stream_id=0).random_uint32(256)
        b = ParallelRNG(5, stream_id=1).random_uint32(256)
        assert not np.array_equal(a, b)

    def test_spawn_preserves_seed(self):
        parent = ParallelRNG(11, stream_id=0)
        child = parent.spawn(42)
        assert child.seed == 11 and child.stream_id == 42

    def test_uniform_range_is_open(self):
        u = ParallelRNG(3).uniform((10000,), 0.0, 1.0, dtype=np.float64)
        assert np.all(u > 0.0) and np.all(u < 1.0)

    def test_uniform_scaling(self):
        u = ParallelRNG(3).uniform((10000,), -4.0, 2.0, dtype=np.float64)
        assert np.all(u >= -4.0) and np.all(u < 2.0)
        assert abs(u.mean() - (-1.0)) < 0.1

    def test_uniform_mean_and_var(self):
        u = ParallelRNG(17).uniform((200000,), dtype=np.float64)
        assert abs(u.mean() - 0.5) < 0.005
        assert abs(u.var() - 1.0 / 12.0) < 0.005

    def test_uniform_shape_tuple(self):
        u = ParallelRNG(2).uniform((3, 5, 2))
        assert u.shape == (3, 5, 2)

    def test_uniform_scalar_shape(self):
        assert ParallelRNG(2).uniform(7).shape == (7,)

    def test_uniform_dtype(self):
        assert ParallelRNG(2).uniform((4,), dtype=np.float32).dtype == np.float32

    def test_invalid_range_rejected(self):
        with pytest.raises(InvalidParameterError):
            ParallelRNG(2).uniform((4,), 1.0, 0.0)

    def test_normal_moments(self):
        z = ParallelRNG(23).normal((200000,), mean=2.0, std=3.0, dtype=np.float64)
        assert abs(z.mean() - 2.0) < 0.05
        assert abs(z.std() - 3.0) < 0.05

    def test_normal_odd_count(self):
        assert ParallelRNG(1).normal((7,)).shape == (7,)

    def test_negative_std_rejected(self):
        with pytest.raises(InvalidParameterError):
            ParallelRNG(1).normal((4,), std=-1.0)

    def test_zero_draws(self):
        assert ParallelRNG(1).random_uint32(0).shape == (0,)

    def test_negative_draws_rejected(self):
        with pytest.raises(ValueError):
            ParallelRNG(1).random_uint32(-1)

    def test_seed_validation(self):
        with pytest.raises(InvalidParameterError):
            ParallelRNG(2**64)
        with pytest.raises(InvalidParameterError):
            ParallelRNG(0, stream_id=2**64)

    def test_position_tracks_blocks(self):
        rng = ParallelRNG(1)
        rng.random_uint32(5)  # 2 blocks (8 words)
        assert rng.position == 2

    def test_word_uniformity_chi_square(self):
        """Byte histogram of raw words should be flat (chi-square bound)."""
        words = ParallelRNG(1313).random_uint32(100000)
        bytes_ = words.view(np.uint8)
        counts = np.bincount(bytes_, minlength=256)
        expected = bytes_.size / 256
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        # 255 dof: mean 255, std ~22.6; 400 is a ~6-sigma bound.
        assert chi2 < 400
