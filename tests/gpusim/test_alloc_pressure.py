"""CachingAllocator under memory pressure: OOM, fragmentation, stats.

The happy-path pooling behaviour is covered in ``test_alloc.py``; these
tests push the allocator to its capacity limits — the regime the
reliability layer's injected OOM faults imitate — and pin down the stats
counters the fleet metrics are built from.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DeviceOutOfMemoryError
from repro.gpusim.alloc import CachingAllocator, DirectAllocator, size_class
from repro.gpusim.clock import SimClock
from repro.gpusim.device import tesla_v100
from repro.gpusim.memory import GlobalMemory

KB = 1024


def make_caching(total=64 * KB):
    spec = tesla_v100()
    clock = SimClock()
    memory = GlobalMemory(total)
    return CachingAllocator(spec, memory, clock), memory, clock


class TestOutOfMemory:
    def test_oom_raised_at_capacity(self):
        alloc, memory, _ = make_caching(total=4 * KB)
        held = [alloc.alloc(KB) for _ in range(4)]
        with pytest.raises(DeviceOutOfMemoryError):
            alloc.alloc(KB)
        assert len(held) == 4
        assert memory.used_bytes == 4 * KB

    def test_oom_leaves_accounting_consistent(self):
        """A failed allocation must not leak reservation or stats."""
        alloc, memory, _ = make_caching(total=4 * KB)
        for _ in range(4):
            alloc.alloc(KB)
        used_before = memory.used_bytes
        reserved_before = alloc.stats.bytes_reserved
        live_before = alloc.live_buffers
        with pytest.raises(DeviceOutOfMemoryError):
            alloc.alloc(2 * KB)
        assert memory.used_bytes == used_before
        assert alloc.stats.bytes_reserved == reserved_before
        assert alloc.live_buffers == live_before
        # The device recovers as soon as something is freed.

    def test_pooled_blocks_relieve_pressure_for_matching_class(self):
        alloc, memory, _ = make_caching(total=4 * KB)
        bufs = [alloc.alloc(KB) for _ in range(4)]
        alloc.free(bufs[0])
        # Device is technically full (pool holds the block), but a matching
        # request is served from the pool without touching GlobalMemory.
        again = alloc.alloc(KB)
        assert again.nbytes == KB
        assert alloc.stats.pool_hits == 1
        assert memory.used_bytes == 4 * KB

    def test_pooled_blocks_do_not_serve_larger_classes(self):
        """Pooling is per size class: a freed 1K block can't serve a 2K ask."""
        alloc, memory, _ = make_caching(total=4 * KB)
        bufs = [alloc.alloc(KB) for _ in range(4)]
        alloc.free(bufs[0])
        with pytest.raises(DeviceOutOfMemoryError):
            alloc.alloc(2 * KB)
        # release_all returns pooled blocks to the device, clearing room.
        for buf in bufs[1:]:
            alloc.free(buf)
        alloc.release_all()
        assert memory.used_bytes == 0
        assert alloc.alloc(2 * KB).nbytes == 2 * KB

    def test_direct_allocator_same_capacity_model(self):
        spec, clock = tesla_v100(), SimClock()
        memory = GlobalMemory(4 * KB)
        alloc = DirectAllocator(spec, memory, clock)
        held = [alloc.alloc(KB) for _ in range(4)]
        with pytest.raises(DeviceOutOfMemoryError):
            alloc.alloc(256)
        alloc.free(held[0])  # direct free returns memory immediately
        assert alloc.alloc(256).nbytes == 256


class TestFragmentationMixedSizes:
    def test_mixed_size_churn_bounds_reserved_bytes(self):
        """Steady-state churn over mixed classes reserves each class once."""
        alloc, memory, _ = make_caching(total=1 << 20)
        sizes = [300, 1000, 5000, 300, 1000, 5000]
        for _ in range(50):
            bufs = [alloc.alloc(s) for s in sizes]
            for buf in bufs:
                alloc.free(buf)
        # 3 distinct classes, 2 blocks each: reserved bytes never exceed the
        # peak working set despite 300 allocations.
        expected_reserved = 2 * (
            size_class(300) + size_class(1000) + size_class(5000)
        )
        assert alloc.stats.bytes_reserved == expected_reserved
        assert memory.used_bytes == expected_reserved
        assert alloc.pooled_bytes == expected_reserved
        assert alloc.stats.allocs == 300
        assert alloc.stats.pool_misses == 6  # first round only
        assert alloc.stats.pool_hits == 294
        assert alloc.stats.hit_rate == pytest.approx(294 / 300)

    def test_interleaved_lifetimes_do_not_cross_classes(self):
        alloc, _, _ = make_caching()
        small = alloc.alloc(256)
        big = alloc.alloc(8 * KB)
        alloc.free(small)
        # big is still live; a new small ask pool-hits the freed small block.
        small2 = alloc.alloc(200)
        assert alloc.stats.pool_hits == 1
        assert small2.nbytes == 256
        assert big.alive


class TestStatsAfterReleaseThenReuse:
    def test_release_all_then_reuse_pays_driver_again(self):
        alloc, memory, clock = make_caching()
        alloc.free(alloc.alloc(KB))
        assert alloc.pooled_bytes == KB
        alloc.release_all()
        assert alloc.pooled_bytes == 0
        assert memory.used_bytes == 0
        t0 = clock.now
        alloc.alloc(KB)
        # Post-release there is no pool: the re-allocation is a miss and
        # pays the full driver malloc latency again.
        assert alloc.stats.pool_misses == 2
        assert alloc.stats.pool_hits == 0
        assert clock.now - t0 == pytest.approx(alloc.spec.malloc_overhead_s)

    def test_counters_track_request_vs_reserved_bytes(self):
        alloc, _, _ = make_caching()
        buf = alloc.alloc(700)  # class 1024
        alloc.free(buf)
        again = alloc.alloc(900)  # same class, pool hit
        assert alloc.stats.bytes_requested == 1600
        assert alloc.stats.bytes_reserved == 1024  # reserved once, reused
        assert alloc.stats.allocs == 2
        assert alloc.stats.frees == 1
        assert again.nbytes == 1024

    def test_high_water_mark_survives_release(self):
        alloc, memory, _ = make_caching()
        bufs = [alloc.alloc(4 * KB) for _ in range(3)]
        peak = memory.high_water_bytes
        for buf in bufs:
            alloc.free(buf)
        alloc.release_all()
        assert memory.used_bytes == 0
        assert memory.high_water_bytes == peak == 3 * 4 * KB
