"""Multi-GPU coordination: partitioning and strategy timing."""

import pytest

from repro.errors import InvalidParameterError
from repro.gpusim.device import tesla_v100
from repro.gpusim.multigpu import (
    ExchangeCost,
    partition_particles,
    partition_rows,
    particle_split_time,
    tile_matrix_time,
)


class TestPartitioning:
    def test_even_split(self):
        assert partition_particles(100, 4) == [25, 25, 25, 25]

    def test_remainder_spread_over_first_devices(self):
        assert partition_particles(10, 3) == [4, 3, 3]

    def test_sizes_differ_by_at_most_one(self):
        sizes = partition_particles(1234, 7)
        assert sum(sizes) == 1234
        assert max(sizes) - min(sizes) <= 1

    def test_rows_are_contiguous_cover(self):
        ranges = partition_rows(100, 3)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 100
        for (_, stop), (start, _) in zip(ranges, ranges[1:]):
            assert stop == start

    def test_too_few_particles_rejected(self):
        with pytest.raises(InvalidParameterError):
            partition_particles(2, 3)

    def test_zero_devices_rejected(self):
        with pytest.raises(InvalidParameterError):
            partition_particles(10, 0)


class TestExchangeCost:
    def test_transfer_time_has_latency_floor(self):
        ex = ExchangeCost(tesla_v100())
        assert ex.transfer_time(0) == ex.latency_s

    def test_single_device_broadcast_is_free(self):
        ex = ExchangeCost(tesla_v100())
        assert ex.gbest_broadcast(1, 1024) == 0.0

    def test_broadcast_scales_with_devices(self):
        ex = ExchangeCost(tesla_v100())
        assert ex.gbest_broadcast(8, 1024) > ex.gbest_broadcast(2, 1024)

    def test_negative_bytes_rejected(self):
        with pytest.raises(InvalidParameterError):
            ExchangeCost(tesla_v100()).transfer_time(-1)


class TestStrategyTiming:
    def _ex(self):
        return ExchangeCost(tesla_v100())

    def test_particle_split_bounded_by_slowest_device(self):
        t = particle_split_time([1e-3, 2e-3], 100, 50, self._ex(), 800)
        assert t >= 100 * 2e-3

    def test_split_exchange_interval_reduces_overhead(self):
        args = ([1e-3, 1e-3], 1000, self._ex(), 800)
        frequent = particle_split_time(args[0], args[1], 1, args[2], args[3])
        rare = particle_split_time(args[0], args[1], 100, args[2], args[3])
        assert frequent > rare

    def test_tile_matrix_pays_allgather_every_iteration(self):
        iter_times = [1e-3, 1e-3]
        split = particle_split_time(iter_times, 1000, 50, self._ex(), 800)
        tile = tile_matrix_time(iter_times, 1000, self._ex(), 800)
        assert tile > split

    def test_both_match_on_single_device(self):
        split = particle_split_time([1e-3], 100, 10, self._ex(), 800)
        tile = tile_matrix_time([1e-3], 100, self._ex(), 800)
        assert split == pytest.approx(tile) == pytest.approx(0.1)

    def test_scaling_is_sublinear_but_real(self):
        """2 devices with half the work each run ~2x faster end to end."""
        one = particle_split_time([2e-3], 1000, 50, self._ex(), 800)
        two = particle_split_time([1e-3, 1e-3], 1000, 50, self._ex(), 800)
        assert 1.8 < one / two <= 2.0

    def test_validation(self):
        ex = self._ex()
        with pytest.raises(InvalidParameterError):
            particle_split_time([], 10, 5, ex, 8)
        with pytest.raises(InvalidParameterError):
            particle_split_time([1e-3], -1, 5, ex, 8)
        with pytest.raises(InvalidParameterError):
            particle_split_time([1e-3], 10, 0, ex, 8)
        with pytest.raises(InvalidParameterError):
            tile_matrix_time([], 10, ex, 8)
