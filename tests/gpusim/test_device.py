"""Device spec presets, derived capacities and validation."""

import pytest

from repro.errors import InvalidLaunchError
from repro.gpusim.device import (
    DeviceSpec,
    get_preset,
    laptop_gpu,
    tesla_a100,
    tesla_v100,
)


class TestPresets:
    def test_v100_headline_numbers(self):
        spec = tesla_v100()
        assert spec.sm_count == 80
        assert spec.total_cores == 5120
        assert spec.max_resident_threads == 163_840
        assert spec.global_mem_bytes == 16 * 1024**3
        # ~15.7 TFLOPS FP32
        assert spec.fp32_flops == pytest.approx(15.67e12, rel=0.01)

    def test_v100_tensor_throughput(self):
        # 80 SMs x 8 TCs x 128 FLOP/cycle x 1.53 GHz ~ 125 TFLOPS fp16
        assert tesla_v100().tensor_flops == pytest.approx(125.3e12, rel=0.01)

    def test_a100_has_more_bandwidth_than_v100(self):
        assert tesla_a100().dram_bandwidth > tesla_v100().dram_bandwidth

    def test_laptop_has_no_tensor_cores(self):
        assert laptop_gpu().tensor_cores_per_sm == 0

    def test_get_preset_roundtrip(self):
        assert get_preset("V100").name == tesla_v100().name
        assert get_preset("a100").sm_count == 108

    def test_get_preset_unknown(self):
        with pytest.raises(ValueError, match="unknown device preset"):
            get_preset("h100")

    def test_max_warps_per_sm(self):
        assert tesla_v100().max_warps_per_sm == 64


class TestValidation:
    def test_block_too_large(self, v100):
        with pytest.raises(InvalidLaunchError, match="exceeds device limit"):
            v100.validate_block(2048)

    def test_block_zero_threads(self, v100):
        with pytest.raises(InvalidLaunchError, match="at least one thread"):
            v100.validate_block(0)

    def test_shared_mem_over_limit(self, v100):
        with pytest.raises(InvalidLaunchError, match="shared memory"):
            v100.validate_block(256, shared_mem=v100.shared_mem_per_block_max + 1)

    def test_valid_block_passes(self, v100):
        v100.validate_block(1024, shared_mem=v100.shared_mem_per_block_max)

    def test_spec_rejects_zero_sms(self):
        with pytest.raises(ValueError):
            tesla_v100().with_overrides(sm_count=0)

    def test_spec_rejects_non_warp_multiple_block_limit(self):
        with pytest.raises(ValueError):
            tesla_v100().with_overrides(max_threads_per_block=100)

    def test_spec_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            tesla_v100().with_overrides(dram_bandwidth=0.0)

    def test_with_overrides_returns_new_spec(self, v100):
        bigger = v100.with_overrides(sm_count=160)
        assert bigger.sm_count == 160
        assert v100.sm_count == 80
        assert isinstance(bigger, DeviceSpec)
