"""Device spec presets, derived capacities and validation."""

import pytest

from repro.errors import ConfigurationError, InvalidLaunchError, UnknownDeviceError
from repro.gpusim.device import (
    DeviceSpec,
    get_preset,
    laptop_gpu,
    tesla_a100,
    tesla_v100,
)


class TestPresets:
    def test_v100_headline_numbers(self):
        spec = tesla_v100()
        assert spec.sm_count == 80
        assert spec.total_cores == 5120
        assert spec.max_resident_threads == 163_840
        assert spec.global_mem_bytes == 16 * 1024**3
        # ~15.7 TFLOPS FP32
        assert spec.fp32_flops == pytest.approx(15.67e12, rel=0.01)

    def test_v100_tensor_throughput(self):
        # 80 SMs x 8 TCs x 128 FLOP/cycle x 1.53 GHz ~ 125 TFLOPS fp16
        assert tesla_v100().tensor_flops == pytest.approx(125.3e12, rel=0.01)

    def test_a100_has_more_bandwidth_than_v100(self):
        assert tesla_a100().dram_bandwidth > tesla_v100().dram_bandwidth

    def test_laptop_has_no_tensor_cores(self):
        assert laptop_gpu().tensor_cores_per_sm == 0

    def test_get_preset_roundtrip(self):
        assert get_preset("V100").name == tesla_v100().name
        assert get_preset("a100").sm_count == 108

    def test_get_preset_reaches_catalog_entries(self):
        # get_preset is now a shim over the repro.devices catalog, so
        # entries beyond the in-code presets resolve too.
        assert get_preset("h100").sm_count == 132
        assert get_preset("cpu-xeon").dram_bandwidth == 21.0e9

    def test_get_preset_unknown(self):
        # UnknownDeviceError subclasses ValueError, so historical except
        # clauses keep catching it; the message carries a did-you-mean.
        with pytest.raises(ValueError, match="unknown device"):
            get_preset("h200")
        with pytest.raises(UnknownDeviceError, match="did you mean 'h100'"):
            get_preset("h200")

    def test_in_code_presets_stay_flat(self):
        # The paper presets must keep the v1 flat roofline bit for bit;
        # hierarchy-enabled variants live in the catalog machine files.
        assert not tesla_v100().has_memory_hierarchy
        assert not tesla_a100().has_memory_hierarchy
        assert not laptop_gpu().has_memory_hierarchy

    def test_max_warps_per_sm(self):
        assert tesla_v100().max_warps_per_sm == 64


class TestValidation:
    def test_block_too_large(self, v100):
        with pytest.raises(InvalidLaunchError, match="exceeds device limit"):
            v100.validate_block(2048)

    def test_block_zero_threads(self, v100):
        with pytest.raises(InvalidLaunchError, match="at least one thread"):
            v100.validate_block(0)

    def test_shared_mem_over_limit(self, v100):
        with pytest.raises(InvalidLaunchError, match="shared memory"):
            v100.validate_block(256, shared_mem=v100.shared_mem_per_block_max + 1)

    def test_valid_block_passes(self, v100):
        v100.validate_block(1024, shared_mem=v100.shared_mem_per_block_max)

    def test_spec_rejects_zero_sms(self):
        with pytest.raises(ConfigurationError, match="positive SM"):
            tesla_v100().with_overrides(sm_count=0)

    def test_spec_rejects_non_warp_multiple_block_limit(self):
        with pytest.raises(ConfigurationError, match="multiple of"):
            tesla_v100().with_overrides(max_threads_per_block=100)

    def test_spec_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ConfigurationError, match="must be positive"):
            tesla_v100().with_overrides(dram_bandwidth=0.0)

    def test_spec_rejects_zero_warp_width(self):
        with pytest.raises(ConfigurationError, match="warp_size"):
            tesla_v100().with_overrides(warp_size=0)

    def test_spec_rejects_negative_cache_fields(self):
        with pytest.raises(ConfigurationError, match="cache"):
            tesla_v100().with_overrides(l2_cache_bytes=-1)
        with pytest.raises(ConfigurationError, match="cache"):
            tesla_v100().with_overrides(l2_bandwidth=-1.0)

    def test_spec_rejects_nonpositive_alloc_units(self):
        with pytest.raises(ConfigurationError, match="granularit"):
            tesla_v100().with_overrides(register_alloc_unit=0)

    def test_with_overrides_returns_new_spec(self, v100):
        bigger = v100.with_overrides(sm_count=160)
        assert bigger.sm_count == 160
        assert v100.sm_count == 80
        assert isinstance(bigger, DeviceSpec)
