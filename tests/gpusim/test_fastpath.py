"""Native iteration tier (:mod:`repro.gpusim.fastpath` / ``_fastpath.c``).

The contract under test: when a run is promoted to the native
one-C-call-per-iteration tier, every observable — trajectory, best value
and position, simulated seconds, per-step breakdown, peak memory — is
bit-identical to the Python replay tier and to eager execution; and every
ineligible or degraded configuration falls back to the Python replay tier
*silently*, with the reason visible on ``engine.graph_info["native"]``.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core.parameters import PAPER_DEFAULTS, PSOParams
from repro.core.problem import Problem
from repro.core.schedules import LinearInertia
from repro.engines import make_engine
from repro.gpusim import fastpath, native
from repro.gpusim.fastpath import ENV_GATE
from repro.gpusim.graph import IterationRunner

#: Engines whose default configuration is native-eligible (global-memory
#: float32 storage, global topology) across both engine families.
NATIVE_ENGINES = ["fastpso", "fastpso-fused", "fastpso-seq", "fastpso-omp"]

needs_native = pytest.mark.skipif(
    not fastpath.available(),
    reason="native fast path unavailable (no C compiler or disabled)",
)


@pytest.fixture(autouse=True)
def _clear_env_gate(monkeypatch):
    """Each test controls the gate explicitly; an ambient
    ``REPRO_NO_NATIVE_FASTPATH=1`` (e.g. the CI no-native lane) would
    otherwise shadow every refusal reason with ``disabled-by-env``."""
    monkeypatch.delenv(ENV_GATE, raising=False)


@pytest.fixture
def problem():
    return Problem.from_benchmark("sphere", 10)


def run(name, problem, *, iters=20, n=64, params=None, **opts):
    engine = make_engine(name, **opts)
    result = engine.optimize(
        problem,
        n_particles=n,
        max_iter=iters,
        params=params if params is not None else PSOParams(seed=7),
        record_history=True,
    )
    return engine, result


def assert_identical(a, b):
    """Exact equality on every simulated observable (no tolerances)."""
    assert a.best_value == b.best_value
    np.testing.assert_array_equal(a.best_position, b.best_position)
    assert a.iterations == b.iterations
    assert a.elapsed_seconds == b.elapsed_seconds
    assert a.setup_seconds == b.setup_seconds
    assert a.step_times == b.step_times
    assert a.peak_device_bytes == b.peak_device_bytes
    assert list(a.history.gbest_values) == list(b.history.gbest_values)


@needs_native
class TestNativeTierParity:
    @pytest.mark.parametrize("name", NATIVE_ENGINES)
    def test_native_matches_replay_and_eager(self, name, problem, monkeypatch):
        monkeypatch.delenv(ENV_GATE, raising=False)
        nat_engine, nat_result = run(name, problem)
        assert nat_engine.graph_info["mode"] == "graph"
        assert nat_engine.graph_info["native"] == "active"
        assert nat_engine.graph_info["native_replays"] > 0

        monkeypatch.setenv(ENV_GATE, "1")
        gated_engine, gated_result = run(name, problem)
        assert gated_engine.graph_info["mode"] == "graph"
        assert gated_engine.graph_info["native"] == "disabled-by-env"
        assert gated_engine.graph_info["native_replays"] == 0

        monkeypatch.delenv(ENV_GATE)
        _, eager_result = run(name, problem, graph=False)

        assert_identical(nat_result, gated_result)
        assert_identical(nat_result, eager_result)

    def test_lifecycle_counters(self, problem):
        engine, _ = run("fastpso", problem, iters=20)
        info = engine.graph_info
        # warmup(0) + capture(1) + validate(2), one verified Python replay,
        # one shadow-verified promotion iteration, 15 native iterations.
        assert info["captured_at"] == 1
        assert info["replays"] == 17
        assert info["native"] == "active"
        assert info["native_replays"] == 15
        assert info["eager_reason"] is None

    def test_odd_tail_shapes(self, monkeypatch):
        """n*d not divisible by 4 exercises the partial final Philox block
        and the SIMD remainder loops."""
        problem = Problem.from_benchmark("sphere", 7)
        nat_engine, nat_result = run("fastpso", problem, n=13)
        assert nat_engine.graph_info["native"] == "active"
        monkeypatch.setenv(ENV_GATE, "1")
        _, gated_result = run("fastpso", problem, n=13)
        assert_identical(nat_result, gated_result)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"clip_positions": True},
            {"velocity_clamp": None},
            {"velocity_clamp": 0.5, "adaptive_velocity": False},
            {"inertia_schedule": LinearInertia(0.9, 0.4)},
        ],
        ids=["clip-positions", "no-clamp", "static-clamp", "inertia-schedule"],
    )
    def test_parameter_variants(self, problem, overrides, monkeypatch):
        params = replace(PAPER_DEFAULTS, seed=7, **overrides)
        nat_engine, nat_result = run("fastpso", problem, params=params)
        assert nat_engine.graph_info["native"] == "active"
        monkeypatch.setenv(ENV_GATE, "1")
        _, gated_result = run("fastpso", problem, params=params)
        assert_identical(nat_result, gated_result)

    def test_self_test_known_answer(self):
        lib = fastpath.load()
        assert lib is not None
        # load() already gates on this; assert it directly for a clear
        # failure if the C numerics ever drift from the reference.
        assert fastpath._self_test(lib)


class TestIneligibleConfigurations:
    """Shapes the native tier refuses stay on the Python replay tier with
    the refusal reason recorded — and remain bit-identical to eager."""

    def test_fp16_storage_refused(self, problem):
        engine, result = run("fastpso-fp16", problem)
        assert engine.graph_info["mode"] == "graph"
        assert engine.graph_info["native"] == "native-unsupported-storage-dtype"
        _, eager = run("fastpso-fp16", problem, graph=False)
        assert_identical(result, eager)

    def test_non_global_backend_refused(self, problem):
        engine, result = run("fastpso-shared", problem)
        assert engine.graph_info["mode"] == "graph"
        assert engine.graph_info["native"] == "native-unsupported-backend:shared"
        _, eager = run("fastpso-shared", problem, graph=False)
        assert_identical(result, eager)

    def test_ring_topology_refused(self, problem):
        params = replace(PAPER_DEFAULTS, seed=7, topology="ring")
        engine, result = run("fastpso", problem, params=params)
        assert engine.graph_info["mode"] == "graph"
        assert engine.graph_info["native"] == "native-unsupported-topology:ring"
        _, eager = run("fastpso", problem, params=params, graph=False)
        assert_identical(result, eager)

    def test_eager_runs_never_consider_native(self, problem):
        from repro.reliability.faults import FaultInjector, FaultSpec

        engine = make_engine("fastpso")
        engine.attach_fault_injector(
            FaultInjector([FaultSpec("stall", after=3, stall_seconds=1e-4)])
        )
        engine.optimize(
            problem, n_particles=32, max_iter=10, params=PSOParams(seed=7)
        )
        assert engine.graph_info["mode"] == "eager"
        assert engine.graph_info["eager_reason"] == "fault-injector"
        # The demotion reason is recorded on the native slot too — an
        # eager run can never reach the native tier, and the drill audit
        # trail should say why rather than show a silent None.
        assert engine.graph_info["native"] == "fault-injector"
        assert engine.graph_info["native_replays"] == 0


class TestFallbacks:
    def test_env_gate_disables_without_compiler_dependence(
        self, problem, monkeypatch
    ):
        # The env gate is honored before any build attempt, so this holds
        # on machines with and without a compiler.
        monkeypatch.setenv(ENV_GATE, "1")
        engine, _ = run("fastpso", problem)
        assert engine.graph_info["mode"] == "graph"
        assert engine.graph_info["native"] == "disabled-by-env"
        assert fastpath.load() is None

    def test_no_compiler_falls_back_silently(
        self, problem, monkeypatch, tmp_path
    ):
        # Point the loader at an empty cache dir too: a previously compiled
        # .so would otherwise load fine without a compiler (by design).
        monkeypatch.setattr(native, "compiler_path", lambda: None)
        monkeypatch.setattr(native, "cache_dir", lambda: tmp_path)
        fastpath._MODULE.invalidate()
        try:
            engine, result = run("fastpso", problem)
            assert engine.graph_info["mode"] == "graph"
            assert engine.graph_info["native"] == "native-unavailable"
            assert engine.graph_info["replays"] == 17
        finally:
            monkeypatch.undo()
            fastpath._MODULE.invalidate()
        _, eager = run("fastpso", problem, graph=False)
        assert_identical(result, eager)

    @needs_native
    def test_verify_mismatch_demotes_to_python_replay(
        self, problem, monkeypatch
    ):
        """A failed promotion gate keeps the run on the Python tier with an
        unchanged trajectory — the gate replays the real iteration through
        the trusted path whichever way the verdict goes."""

        def always_mismatch(plan, run_replay, *args, **kwargs):
            run_replay()
            return False

        monkeypatch.setattr(fastpath, "verify_step", always_mismatch)
        engine, result = run("fastpso", problem, iters=20)
        assert engine.graph_info["mode"] == "graph"
        assert engine.graph_info["native"] == "parity-mismatch"
        assert engine.graph_info["native_replays"] == 0
        assert engine.graph_info["replays"] == 17
        monkeypatch.undo()
        _, native_result = run("fastpso", problem, iters=20)
        assert_identical(result, native_result)

    @needs_native
    def test_host_managed_pin_skips_promotion(self, problem, monkeypatch):
        """Hosts that drive the replay closures directly (the fused
        multi-swarm ramp) set ``allow_native = False``; the runner must
        honor the pin and never install the native step."""
        orig = IterationRunner.run_iteration

        def pinned(self, t):
            self.allow_native = False
            return orig(self, t)

        monkeypatch.setattr(IterationRunner, "run_iteration", pinned)
        engine, result = run("fastpso", problem, iters=20)
        assert engine.graph_info["mode"] == "graph"
        assert engine.graph_info["native"] == "host-managed"
        assert engine.graph_info["native_replays"] == 0
        assert engine.graph_info["replays"] == 17
        monkeypatch.undo()
        _, native_result = run("fastpso", problem, iters=20)
        assert_identical(result, native_result)


@needs_native
class TestCheckpointResume:
    def test_restored_run_repromotes_to_native(self, tmp_path):
        """A mid-run restore rebuilds its runner from scratch, so the graph
        re-captures *and* re-promotes — and the continuation is still
        bit-identical to the uninterrupted native run."""
        from repro.reliability import CheckpointManager, read_snapshot

        params = replace(PAPER_DEFAULTS, seed=42)
        problem = Problem.from_benchmark("sphere", 6)
        golden = make_engine("fastpso").optimize(
            problem,
            n_particles=32,
            max_iter=16,
            params=params,
            record_history=True,
        )

        manager = CheckpointManager(tmp_path, every=1, keep=16)
        make_engine("fastpso").optimize(
            problem,
            n_particles=32,
            max_iter=16,
            params=params,
            record_history=True,
            callback=lambda t, state: t + 1 == 6,  # "crash" after iter 6
            checkpoint=manager,
        )
        snap = read_snapshot(manager.latest_path())
        engine = make_engine("fastpso")
        resumed = engine.optimize(
            problem,
            n_particles=32,
            max_iter=16,
            params=params,
            record_history=True,
            restore=snap,
        )
        info = engine.graph_info
        assert info["mode"] == "graph"
        assert info["captured_at"] == snap.iteration + 1
        assert info["native"] == "active"
        assert info["native_replays"] > 0
        assert_identical(resumed, golden)
