"""Roofline cost model: bounds, monotonicity, calibration anchors."""

import pytest

from repro.gpusim.costmodel import (
    DEFAULT_GPU_COST_PARAMS,
    CpuSpec,
    GpuCostParams,
    cpu_loop_cost,
    kernel_cost,
    xeon_e5_2640v4,
)
from repro.gpusim.kernel import KernelSpec, LaunchConfig
from repro.gpusim.launch import resource_aware_config, thread_per_item_config


def streaming_spec(**overrides):
    base = dict(
        name="stream",
        flops_per_elem=2.0,
        bytes_read_per_elem=8.0,
        bytes_written_per_elem=4.0,
    )
    base.update(overrides)
    return KernelSpec(**base)


class TestLatencyHiding:
    def test_curve_reaches_one_at_full_occupancy(self):
        assert DEFAULT_GPU_COST_PARAMS.latency_hiding(1.0) == pytest.approx(1.0)

    def test_curve_monotone(self):
        p = DEFAULT_GPU_COST_PARAMS
        values = [p.latency_hiding(o) for o in (0.01, 0.05, 0.2, 0.5, 1.0)]
        assert values == sorted(values)

    def test_curve_positive_at_tiny_occupancy(self):
        assert DEFAULT_GPU_COST_PARAMS.latency_hiding(1e-9) > 0.0


class TestKernelCost:
    def test_memory_bound_streaming_kernel(self, v100):
        spec = streaming_spec()
        n = 1_000_000
        cost = kernel_cost(v100, spec, resource_aware_config(v100, n), n)
        assert cost.bound == "memory"
        assert cost.bytes_read == 8e6
        assert cost.bytes_written == 4e6

    def test_effective_bandwidth_in_calibrated_band(self, v100):
        """Full-occupancy streaming should land near the paper's ~110-180
        GB/s achieved band (dram_peak_fraction anchor)."""
        spec = streaming_spec()
        n = 4_000_000
        cost = kernel_cost(v100, spec, resource_aware_config(v100, n), n)
        body = cost.seconds - cost.t_launch_overhead
        gbs = (cost.bytes_read + cost.bytes_written) / body / 1e9
        assert 100 < gbs < 250

    def test_compute_bound_kernel(self, v100):
        spec = streaming_spec(
            flops_per_elem=5000.0, bytes_read_per_elem=4.0, bytes_written_per_elem=0.0
        )
        n = 1_000_000
        cost = kernel_cost(v100, spec, resource_aware_config(v100, n), n)
        assert cost.bound == "compute"

    def test_sfu_bound_kernel(self, v100):
        spec = streaming_spec(
            flops_per_elem=0.0,
            sfu_per_elem=500.0,
            bytes_read_per_elem=4.0,
            bytes_written_per_elem=0.0,
        )
        n = 1_000_000
        cost = kernel_cost(v100, spec, resource_aware_config(v100, n), n)
        assert cost.bound == "sfu"

    def test_latency_bound_serial_loop(self, v100):
        """Thread-per-particle with a long dependent loop is latency bound."""
        spec = streaming_spec(
            bytes_read_per_elem=0.1,
            bytes_written_per_elem=0.0,
            dependent_loads_per_elem=2.0,
        )
        n = 200 * 100  # 100 threads x 200 serial elements
        cfg = thread_per_item_config(v100, 100, threads_per_block=32)
        cost = kernel_cost(v100, spec, cfg, n)
        assert cost.t_latency > 0
        assert cost.bound == "latency"

    def test_launch_overhead_floor(self, v100):
        spec = streaming_spec()
        cost = kernel_cost(v100, spec, LaunchConfig(1, 32), 1)
        assert cost.seconds >= v100.kernel_launch_overhead_s

    def test_zero_elements(self, v100):
        cost = kernel_cost(v100, streaming_spec(), LaunchConfig(1, 32), 0)
        assert cost.seconds == v100.kernel_launch_overhead_s
        assert cost.flops == 0

    def test_negative_elements_rejected(self, v100):
        with pytest.raises(ValueError):
            kernel_cost(v100, streaming_spec(), LaunchConfig(1, 32), -5)

    def test_monotone_in_elements(self, v100):
        spec = streaming_spec()
        times = []
        for n in (10_000, 100_000, 1_000_000, 10_000_000):
            cfg = resource_aware_config(v100, n)
            times.append(kernel_cost(v100, spec, cfg, n).seconds)
        assert times == sorted(times)

    def test_uncoalesced_slower(self, v100):
        n = 1_000_000
        cfg = resource_aware_config(v100, n)
        fast = kernel_cost(v100, streaming_spec(), cfg, n).seconds
        slow = kernel_cost(v100, streaming_spec(coalesced=False), cfg, n).seconds
        assert slow > fast * 4

    def test_low_occupancy_slower_per_byte(self, v100):
        """The paper's core mechanism: starved launches waste bandwidth."""
        spec = streaming_spec()
        n = 1_000_000
        full = kernel_cost(v100, spec, resource_aware_config(v100, n), n)
        starved = kernel_cost(
            v100, spec, thread_per_item_config(v100, 5000, threads_per_block=128), n
        )
        assert starved.seconds > full.seconds * 1.5
        assert starved.occupancy < 0.05

    def test_tensor_core_kernel_uses_tensor_peak(self, v100):
        n = 1_000_000
        cfg = resource_aware_config(v100, n)
        fp32 = streaming_spec(flops_per_elem=5000.0, bytes_read_per_elem=0.5,
                              bytes_written_per_elem=0.0)
        tc = fp32.scaled(tensor_core=True)
        t_fp32 = kernel_cost(v100, fp32, cfg, n).t_compute
        t_tc = kernel_cost(v100, tc, cfg, n).t_compute
        assert t_tc < t_fp32 / 3  # tensor peak is ~8x FP32 on V100

    def test_wave_quantization_penalty(self, v100):
        """A grid one block over capacity pays for an extra wave."""
        spec = streaming_spec()
        # capacity for 256-thread, 32-reg blocks: 8 blocks/SM x 80 = 640.
        n_elems = 640 * 256  # exactly one wave, one elem per thread
        aligned = kernel_cost(v100, spec, LaunchConfig(640, 256), n_elems)
        spilled = kernel_cost(v100, spec, LaunchConfig(641, 256), n_elems)
        assert spilled.seconds > aligned.seconds * 1.5

    def test_cost_params_customisable(self, v100):
        slow = GpuCostParams(dram_peak_fraction=0.05)
        n = 1_000_000
        cfg = resource_aware_config(v100, n)
        default = kernel_cost(v100, streaming_spec(), cfg, n).seconds
        derated = kernel_cost(v100, streaming_spec(), cfg, n, slow).seconds
        assert derated > default * 2


def reread_spec(**overrides):
    """A kernel that re-references most of its reads (cost model v2 bait)."""
    base = dict(
        name="reread",
        flops_per_elem=4.0,
        bytes_read_per_elem=16.0,
        bytes_written_per_elem=4.0,
        reread_fraction=0.75,
        working_set_bytes_per_elem=12.0,
    )
    base.update(overrides)
    return KernelSpec(**base)


class TestMemoryHierarchy:
    """Cost model v2: L1/L2 capacity hit model (hierarchy-enabled specs)."""

    @pytest.fixture()
    def cat_v100(self):
        from repro.devices import resolve_device

        return resolve_device("v100")

    @pytest.fixture()
    def cat_a100(self):
        from repro.devices import resolve_device

        return resolve_device("a100")

    def test_flat_device_ignores_hints_bit_for_bit(self, v100):
        """The paper preset (no hierarchy fields) must compute the exact v1
        expression regardless of access-pattern hints — this is what keeps
        every existing golden timing valid."""
        n = 1_000_000
        cfg = resource_aware_config(v100, n)
        hinted = kernel_cost(v100, reread_spec(), cfg, n)
        plain = kernel_cost(
            v100,
            reread_spec(reread_fraction=0.0, working_set_bytes_per_elem=0.0),
            cfg,
            n,
        )
        assert hinted.seconds == plain.seconds
        assert hinted.t_l2 == 0.0
        assert hinted.l2_hit_fraction == 0.0

    def test_streaming_kernel_unchanged_on_hierarchy_device(
        self, v100, cat_v100
    ):
        """reread_fraction=0 degenerates to the flat roofline bit for bit
        even when the device has caches (same silicon, same numbers)."""
        n = 1_000_000
        spec = streaming_spec()
        flat = kernel_cost(v100, spec, resource_aware_config(v100, n), n)
        hier = kernel_cost(
            cat_v100, spec, resource_aware_config(cat_v100, n), n
        )
        assert hier.t_memory == flat.t_memory

    def test_working_set_fits_l2_full_hit(self, cat_a100):
        # 12 B/elem x 1e6 elems = 12 MB << 40 MiB A100 L2.
        n = 1_000_000
        cfg = resource_aware_config(cat_a100, n)
        cost = kernel_cost(cat_a100, reread_spec(), cfg, n)
        assert cost.l2_hit_fraction == 1.0
        assert cost.bytes_l2 > 0.0

    def test_working_set_partial_hit_on_smaller_l2(self, cat_v100):
        # 12 MB working set vs the V100's 6 MiB L2: capacity-ratio hit.
        n = 1_000_000
        cfg = resource_aware_config(cat_v100, n)
        cost = kernel_cost(cat_v100, reread_spec(), cfg, n)
        expected = cat_v100.l2_cache_bytes / (12.0 * n)
        assert cost.l2_hit_fraction == pytest.approx(expected)
        assert 0.0 < cost.l2_hit_fraction < 1.0
        assert cost.l1_hit_fraction <= cost.l2_hit_fraction

    def test_hierarchy_beats_flat_for_reread_kernels(self, v100, cat_v100):
        """Hits served from L2 beat the flat model's all-DRAM pricing."""
        n = 1_000_000
        spec = reread_spec()
        flat = kernel_cost(v100, spec, resource_aware_config(v100, n), n)
        hier = kernel_cost(
            cat_v100, spec, resource_aware_config(cat_v100, n), n
        )
        assert hier.t_memory < flat.t_memory

    def test_bigger_l2_is_faster(self, cat_v100, cat_a100):
        """The headline margin: the same kernel is cheaper on the device
        whose L2 holds more of the working set (beyond the DRAM ratio)."""
        n = 1_000_000
        spec = reread_spec()
        t_v = kernel_cost(
            cat_v100, spec, resource_aware_config(cat_v100, n), n
        )
        t_a = kernel_cost(
            cat_a100, spec, resource_aware_config(cat_a100, n), n
        )
        dram_ratio = cat_a100.dram_bandwidth / cat_v100.dram_bandwidth
        assert t_v.t_memory / t_a.t_memory > dram_ratio

    def test_t_memory_is_max_of_dram_and_l2(self, cat_v100):
        n = 1_000_000
        cfg = resource_aware_config(cat_v100, n)
        cost = kernel_cost(cat_v100, reread_spec(), cfg, n)
        assert cost.t_memory >= cost.t_l2
        assert cost.t_l2 > 0.0

    def test_l2_peak_fraction_param(self, cat_a100):
        """Derating the L2 slows an L2-bound kernel (the fitted knob)."""
        n = 4_000_000
        # All-reread, working set between L1 total (~4.4 MB) and the A100's
        # 40 MiB L2: a large L2-served share that the derate slows down.
        spec = reread_spec(
            reread_fraction=1.0, working_set_bytes_per_elem=2.0
        )
        cfg = resource_aware_config(cat_a100, n)
        fast = kernel_cost(cat_a100, spec, cfg, n).seconds
        slow = kernel_cost(
            cat_a100, spec, cfg, n, GpuCostParams(l2_peak_fraction=0.05)
        ).seconds
        assert slow > fast


class TestCpuLoopCost:
    def test_zero_elements(self):
        cost = cpu_loop_cost(xeon_e5_2640v4(), 0, flops_per_elem=10)
        assert cost.seconds == 0.0

    def test_memory_bound_loop(self):
        cpu = xeon_e5_2640v4()
        cost = cpu_loop_cost(cpu, 10_000_000, bytes_per_elem=24.0)
        assert cost.bound == "memory"
        assert cost.seconds == pytest.approx(
            24.0 * 10_000_000 / cpu.mem_bandwidth_core
        )

    def test_bandwidth_ceiling_limits_scaling(self):
        """20 threads gain only ~2x on streaming: the paper's OpenMP wall."""
        cpu = xeon_e5_2640v4()
        seq = cpu_loop_cost(cpu, 10_000_000, bytes_per_elem=24.0, threads=1)
        par = cpu_loop_cost(cpu, 10_000_000, bytes_per_elem=24.0, threads=20)
        assert 1.5 < seq.seconds / par.seconds < 2.5

    def test_compute_scales_with_threads(self):
        cpu = xeon_e5_2640v4()
        seq = cpu_loop_cost(cpu, 10_000_000, flops_per_elem=100.0, threads=1)
        par = cpu_loop_cost(cpu, 10_000_000, flops_per_elem=100.0, threads=20)
        assert seq.seconds / par.seconds == pytest.approx(20.0)

    def test_threads_capped_at_cores(self):
        cpu = xeon_e5_2640v4()
        at_cores = cpu_loop_cost(cpu, 1_000_000, flops_per_elem=10.0, threads=20)
        beyond = cpu_loop_cost(cpu, 1_000_000, flops_per_elem=10.0, threads=100)
        assert at_cores.seconds == beyond.seconds

    def test_transcendentals_add_serial_cost(self):
        cpu = xeon_e5_2640v4()
        plain = cpu_loop_cost(cpu, 1_000_000, flops_per_elem=2.0)
        trans = cpu_loop_cost(
            cpu, 1_000_000, flops_per_elem=2.0, transcendental_per_elem=2.0
        )
        assert trans.seconds > plain.seconds

    def test_rng_cost(self):
        cpu = xeon_e5_2640v4()
        cost = cpu_loop_cost(cpu, 2_000_000, rng_per_elem=1.0)
        expected = 2_000_000 * cpu.rng_cycles / (cpu.clock_ghz * 1e9)
        assert cost.t_rng == pytest.approx(expected)

    def test_negative_elems_rejected(self):
        with pytest.raises(ValueError):
            cpu_loop_cost(xeon_e5_2640v4(), -1)

    def test_bandwidth_validation(self):
        with pytest.raises(ValueError):
            xeon_e5_2640v4().bandwidth(0)

    def test_custom_cpu_spec(self):
        tiny = CpuSpec(name="tiny", cores=2, clock_ghz=1.0)
        fast = cpu_loop_cost(tiny, 1_000_000, flops_per_elem=8.0, threads=2)
        slow = cpu_loop_cost(tiny, 1_000_000, flops_per_elem=8.0, threads=1)
        assert fast.seconds < slow.seconds
