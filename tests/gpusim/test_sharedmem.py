"""Shared-memory tiling: traversal, equivalence, derived specs."""

import numpy as np
import pytest

from repro.errors import InvalidLaunchError
from repro.gpusim.kernel import KernelSpec
from repro.gpusim.sharedmem import (
    apply_tiled,
    shared_mem_spec,
    tile_count,
    tile_iter,
)


class TestTileIter:
    def test_exact_cover(self):
        tiles = list(tile_iter((64, 64), 32))
        assert len(tiles) == 4

    def test_clipped_edges(self):
        tiles = list(tile_iter((33, 65), 32))
        assert len(tiles) == 2 * 3
        last_rows, last_cols = tiles[-1]
        assert last_rows.stop == 33 and last_cols.stop == 65

    def test_covers_every_element_once(self):
        shape = (37, 51)
        cover = np.zeros(shape, dtype=int)
        for rows, cols in tile_iter(shape, 16):
            cover[rows, cols] += 1
        assert np.all(cover == 1)

    def test_tile_count_matches_iter(self):
        shape = (100, 70)
        assert tile_count(shape, 32) == len(list(tile_iter(shape, 32)))

    def test_bad_tile_size(self):
        with pytest.raises(InvalidLaunchError):
            list(tile_iter((4, 4), 0))
        with pytest.raises(InvalidLaunchError):
            tile_count((4, 4), -1)


class TestApplyTiled:
    def test_bitwise_equal_to_unfused(self, rng_np):
        a = rng_np.normal(size=(70, 45)).astype(np.float32)
        b = rng_np.normal(size=(70, 45)).astype(np.float32)
        expected = a * b + a
        out = np.empty_like(a)
        apply_tiled(out, lambda x, y: x * y + x, a, b, tile_size=32)
        np.testing.assert_array_equal(out, expected)

    def test_multiple_inputs(self, rng_np):
        arrays = [rng_np.normal(size=(20, 20)).astype(np.float32) for _ in range(5)]
        out = np.empty((20, 20), dtype=np.float32)
        apply_tiled(out, lambda *xs: sum(xs), *arrays, tile_size=8)
        np.testing.assert_array_equal(out, sum(arrays))

    def test_tile_size_does_not_change_result(self, rng_np):
        a = rng_np.normal(size=(33, 17)).astype(np.float32)
        outs = []
        for tile in (4, 16, 64):
            out = np.empty_like(a)
            apply_tiled(out, lambda x: np.sqrt(np.abs(x)), a, tile_size=tile)
            outs.append(out)
        np.testing.assert_array_equal(outs[0], outs[1])
        np.testing.assert_array_equal(outs[1], outs[2])


class TestSharedMemSpec:
    def _base(self):
        return KernelSpec(
            name="update", flops_per_elem=10.0, bytes_read_per_elem=20.0,
            bytes_written_per_elem=4.0,
        )

    def test_allocates_tiles_for_inputs_plus_output(self):
        spec = shared_mem_spec(self._base(), n_input_matrices=5)
        assert spec.shared_mem_per_block == 6 * 32 * 32 * 4

    def test_name_suffixed(self):
        assert shared_mem_spec(self._base(), 2).name == "update_smem"

    def test_forces_coalesced(self):
        base = self._base().scaled(coalesced=False)
        assert shared_mem_spec(base, 2).coalesced

    def test_adds_staging_instructions(self):
        spec = shared_mem_spec(self._base(), 2)
        assert spec.flops_per_elem > self._base().flops_per_elem

    def test_requires_inputs(self):
        with pytest.raises(InvalidLaunchError):
            shared_mem_spec(self._base(), 0)

    def test_custom_tile_size(self):
        spec = shared_mem_spec(self._base(), 1, tile_size=16)
        assert spec.shared_mem_per_block == 2 * 16 * 16 * 4
