"""KernelSpec/LaunchConfig/Kernel construction and validation."""

import pytest

from repro.errors import InvalidLaunchError
from repro.gpusim.kernel import Kernel, KernelSpec, LaunchConfig


class TestKernelSpec:
    def test_defaults(self):
        spec = KernelSpec(name="k")
        assert spec.bytes_per_elem == 8.0
        assert spec.coalesced

    def test_arithmetic_intensity(self):
        spec = KernelSpec(
            name="k", flops_per_elem=16.0, bytes_read_per_elem=4.0,
            bytes_written_per_elem=4.0,
        )
        assert spec.arithmetic_intensity == 2.0

    def test_arithmetic_intensity_zero_bytes(self):
        spec = KernelSpec(
            name="k", bytes_read_per_elem=0.0, bytes_written_per_elem=0.0
        )
        assert spec.arithmetic_intensity == float("inf")

    def test_unnamed_rejected(self):
        with pytest.raises(ValueError, match="named"):
            KernelSpec(name="")

    @pytest.mark.parametrize(
        "field",
        ["flops_per_elem", "bytes_read_per_elem", "bytes_written_per_elem",
         "sfu_per_elem", "dependent_loads_per_elem"],
    )
    def test_negative_mix_rejected(self, field):
        with pytest.raises(ValueError, match=field):
            KernelSpec(name="k", **{field: -1.0})

    def test_nonpositive_registers_rejected(self):
        with pytest.raises(ValueError):
            KernelSpec(name="k", registers_per_thread=0)

    def test_negative_smem_rejected(self):
        with pytest.raises(ValueError):
            KernelSpec(name="k", shared_mem_per_block=-1)

    def test_scaled_override(self):
        spec = KernelSpec(name="k", flops_per_elem=2.0)
        variant = spec.scaled(name="k2", tensor_core=True)
        assert variant.name == "k2" and variant.tensor_core
        assert spec.name == "k" and not spec.tensor_core


class TestLaunchConfig:
    def test_total_threads(self):
        assert LaunchConfig(10, 128).total_threads == 1280

    def test_zero_blocks_rejected(self):
        with pytest.raises(InvalidLaunchError):
            LaunchConfig(0, 128)

    def test_zero_threads_rejected(self):
        with pytest.raises(InvalidLaunchError):
            LaunchConfig(10, 0)

    def test_workload_per_thread_ceil(self):
        cfg = LaunchConfig(1, 100)
        assert cfg.workload_per_thread(250) == 3
        assert cfg.workload_per_thread(100) == 1
        assert cfg.workload_per_thread(0) == 0

    def test_validate_against_device(self, v100):
        LaunchConfig(1, 1024).validate(v100)
        with pytest.raises(InvalidLaunchError):
            LaunchConfig(1, 1056).validate(v100)


class TestKernel:
    def test_semantics_must_be_callable(self):
        with pytest.raises(TypeError):
            Kernel(KernelSpec(name="k"), semantics="not callable")

    def test_name_delegates_to_spec(self):
        k = Kernel(KernelSpec(name="my_kernel"), semantics=lambda: None)
        assert k.name == "my_kernel"
