"""Streams and events on the simulated timeline."""

import pytest

from repro.errors import StreamError
from repro.gpusim.clock import SimClock
from repro.gpusim.streams import Event, Stream


class TestStream:
    def test_enqueue_is_fifo(self):
        clock = SimClock()
        stream = Stream(clock)
        stream.enqueue(1.0)
        done = stream.enqueue(2.0)
        assert done == 3.0

    def test_enqueue_starts_no_earlier_than_host(self):
        clock = SimClock()
        clock.advance(5.0)
        stream = Stream(clock)
        assert stream.enqueue(1.0) == 6.0

    def test_two_streams_overlap(self):
        clock = SimClock()
        a, b = Stream(clock), Stream(clock)
        a.enqueue(3.0)
        b.enqueue(2.0)
        # Both finish relative to t=0: concurrent, not serialised.
        assert a.horizon == 3.0 and b.horizon == 2.0

    def test_synchronize_advances_host(self):
        clock = SimClock()
        stream = Stream(clock)
        stream.enqueue(4.0)
        stream.synchronize()
        assert clock.now == 4.0

    def test_synchronize_noop_when_drained(self):
        clock = SimClock()
        clock.advance(10.0)
        stream = Stream(clock)
        stream.enqueue(1.0)  # finishes at 11
        clock.advance(5.0)  # host at 15
        stream.synchronize()
        assert clock.now == 15.0

    def test_negative_duration_rejected(self):
        with pytest.raises(StreamError):
            Stream(SimClock()).enqueue(-1.0)


class TestEvents:
    def test_record_and_wait(self):
        clock = SimClock()
        producer, consumer = Stream(clock), Stream(clock)
        producer.enqueue(3.0)
        ev = producer.record_event()
        consumer.enqueue(1.0)
        consumer.wait_event(ev)
        done = consumer.enqueue(1.0)
        assert done == 4.0  # waited for the producer

    def test_wait_on_unrecorded_event_rejected(self):
        clock = SimClock()
        with pytest.raises(StreamError, match="unrecorded"):
            Stream(clock).wait_event(Event())

    def test_event_reuse(self):
        clock = SimClock()
        stream = Stream(clock)
        ev = Event()
        stream.enqueue(2.0)
        stream.record_event(ev)
        assert ev.recorded and ev.timestamp == 2.0

    def test_wait_does_not_rewind(self):
        clock = SimClock()
        early, late = Stream(clock), Stream(clock)
        early.enqueue(1.0)
        ev = early.record_event()
        late.enqueue(10.0)
        late.wait_event(ev)
        assert late.horizon == 10.0
