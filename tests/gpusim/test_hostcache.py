"""Host-side memoization: cached results must equal the uncached originals.

The launch/cost pipeline (``occupancy``, ``resource_aware_config``,
``kernel_cost``) is pure in its arguments, so per-process memoization is a
host-only optimization — it must never change a simulated second.  These
tests sweep the cached functions against their ``.uncached`` originals,
check that distinct device specs and cost params get distinct entries, and
pin the Launcher's aggregation-first memory behaviour.
"""

import numpy as np
import pytest

from repro.gpusim import hostcache
from repro.gpusim.clock import SimClock
from repro.gpusim.costmodel import (
    DEFAULT_GPU_COST_PARAMS,
    GpuCostParams,
    kernel_cost,
)
from repro.gpusim.device import tesla_a100, tesla_v100
from repro.gpusim.kernel import Kernel, KernelSpec, LaunchConfig
from repro.gpusim.launch import Launcher, resource_aware_config
from repro.gpusim.occupancy import occupancy
from repro.gpusim.profiler import build_report, build_report_from_stats


@pytest.fixture(autouse=True)
def fresh_caches():
    hostcache.clear_all_caches()
    yield
    hostcache.set_enabled(True)
    hostcache.clear_all_caches()


SPECS = [
    KernelSpec(name="a"),
    KernelSpec(name="b", flops_per_elem=9.0, bytes_read_per_elem=16.0),
    KernelSpec(
        name="c",
        registers_per_thread=64,
        shared_mem_per_block=16 * 1024,
        dependent_loads_per_elem=2.0,
    ),
]
SIZES = [1, 100, 4096, 1_000_000]


class TestMemoizedEqualsUncached:
    def test_occupancy_sweep(self):
        for device in (tesla_v100(), tesla_a100()):
            for tpb in (32, 128, 256, 1024):
                for regs in (16, 64):
                    cached = occupancy(
                        device, tpb, registers_per_thread=regs
                    )
                    again = occupancy(device, tpb, registers_per_thread=regs)
                    direct = occupancy.uncached(
                        device, tpb, registers_per_thread=regs
                    )
                    assert cached == direct
                    assert again is cached  # served from cache

    def test_resource_aware_config_sweep(self):
        device = tesla_v100()
        for kspec in SPECS:
            for n in SIZES:
                cached = resource_aware_config(device, n, kernel_spec=kspec)
                direct = resource_aware_config.uncached(
                    device, n, kernel_spec=kspec
                )
                assert cached == direct

    def test_kernel_cost_sweep(self):
        device = tesla_v100()
        for kspec in SPECS:
            for n in SIZES:
                cfg = resource_aware_config(device, n, kernel_spec=kspec)
                cached = kernel_cost(device, kspec, cfg, n)
                direct = kernel_cost.uncached(device, kspec, cfg, n)
                assert cached == direct

    def test_distinct_cost_params_not_conflated(self):
        device = tesla_v100()
        kspec = SPECS[1]
        cfg = resource_aware_config(device, 4096, kernel_spec=kspec)
        default = kernel_cost(device, kspec, cfg, 4096)
        slow = GpuCostParams(
            dram_peak_fraction=DEFAULT_GPU_COST_PARAMS.dram_peak_fraction / 4
        )
        tweaked = kernel_cost(device, kspec, cfg, 4096, slow)
        assert tweaked.seconds > default.seconds
        # the original keyed entry is untouched
        assert kernel_cost(device, kspec, cfg, 4096) == default

    def test_distinct_device_specs_not_conflated(self):
        v100, a100 = tesla_v100(), tesla_a100()
        kspec = SPECS[1]
        costs = {}
        for device in (v100, a100):
            cfg = resource_aware_config(device, 1_000_000, kernel_spec=kspec)
            costs[device.name] = kernel_cost(device, kspec, cfg, 1_000_000)
        # the A100's higher bandwidth must show through the cache
        assert costs[a100.name].seconds < costs[v100.name].seconds
        cfg = resource_aware_config(v100, 1_000_000, kernel_spec=kspec)
        assert costs[v100.name] == kernel_cost.uncached(
            v100, kspec, cfg, 1_000_000
        )

    def test_set_enabled_false_bypasses_cache(self):
        device = tesla_v100()
        first = occupancy(device, 256)
        hostcache.set_enabled(False)
        assert not hostcache.cache_enabled()
        bypass = occupancy(device, 256)
        assert bypass == first
        assert bypass is not first  # freshly computed, not the cached object

    def test_invalid_inputs_raise_every_time(self):
        from repro.errors import InvalidLaunchError

        device = tesla_v100()
        for _ in range(2):  # errors must not be cached away
            with pytest.raises(InvalidLaunchError):
                resource_aware_config(device, 0)


class TestHashability:
    def test_kernel_spec_hash_stable_and_eq_consistent(self):
        a = KernelSpec(name="k", flops_per_elem=2.0)
        b = KernelSpec(name="k", flops_per_elem=2.0)
        assert a == b and hash(a) == hash(b)
        assert hash(a) == hash(a)  # cached hash is deterministic

    def test_launch_config_hash(self):
        assert hash(LaunchConfig(4, 256)) == hash(LaunchConfig(4, 256))
        assert {LaunchConfig(4, 256), LaunchConfig(4, 256)} == {
            LaunchConfig(4, 256)
        }

    def test_device_spec_hashable(self):
        assert hash(tesla_v100()) == hash(tesla_v100())

    def test_cost_params_hashable(self):
        assert hash(GpuCostParams()) == hash(GpuCostParams())


class TestLauncherMemory:
    def _launch_many(self, launcher, n_launches):
        k = Kernel(KernelSpec(name="k"), semantics=lambda: None)
        for _ in range(n_launches):
            launcher.launch(k, 1000)

    def test_default_memory_is_per_kernel_not_per_launch(self, v100):
        launcher = Launcher(spec=v100, clock=SimClock())
        self._launch_many(launcher, 500)
        assert launcher.records == []  # opt-in only
        assert len(launcher.stats) == 1  # O(distinct kernels), not O(launches)
        ((_, bucket),) = launcher.stats.items()
        assert bucket.launches == 500

    def test_stats_track_sections(self, v100):
        launcher = Launcher(spec=v100, clock=SimClock())
        k = Kernel(KernelSpec(name="k"), semantics=lambda: None)
        with launcher.clock.section("swarm"):
            launcher.launch(k, 100)
        assert ("k", "swarm") in launcher.stats

    def test_record_mode_report_matches_stats_report(self, v100):
        launcher = Launcher(spec=v100, clock=SimClock(), record_launches=True)
        specs = [
            KernelSpec(name="a", flops_per_elem=3.0),
            KernelSpec(name="b", bytes_read_per_elem=8.0),
        ]
        for spec in specs:
            k = Kernel(spec, semantics=lambda: None)
            for n in (100, 2048, 100):
                launcher.launch(k, n)
        from_records = build_report(launcher.records)
        from_stats = build_report_from_stats(launcher.stats)
        assert from_records.kernels == from_stats.kernels
        assert from_records.total_kernel_seconds == pytest.approx(
            from_stats.total_kernel_seconds
        )

    def test_launch_cache_identical_timing(self, v100):
        """Cached (config, cost) replay advances the clock identically."""
        times = []
        for _ in range(2):
            launcher = Launcher(spec=v100, clock=SimClock())
            self._launch_many(launcher, 50)
            times.append(launcher.clock.now)
        hostcache.set_enabled(False)
        launcher = Launcher(spec=v100, clock=SimClock())
        self._launch_many(launcher, 50)
        times.append(launcher.clock.now)
        assert times[0] == times[1] == times[2]

    def test_reset_records_clears_stats(self, v100):
        launcher = Launcher(spec=v100, clock=SimClock(), record_launches=True)
        self._launch_many(launcher, 3)
        launcher.reset_records()
        assert launcher.records == [] and launcher.stats == {}


class TestEngineEquivalenceWithCachesOff:
    def test_fastpso_identical_with_and_without_host_caches(self):
        from repro.core.parameters import PSOParams
        from repro.core.problem import Problem
        from repro.engines import FastPSOEngine

        problem = Problem.from_benchmark("rastrigin", 16)
        results = {}
        for enabled in (True, False):
            hostcache.set_enabled(enabled)
            hostcache.clear_all_caches()
            r = FastPSOEngine().optimize(
                problem, n_particles=32, max_iter=8, params=PSOParams(seed=7)
            )
            results[enabled] = r
        hostcache.set_enabled(True)
        assert results[True].best_value == results[False].best_value
        np.testing.assert_array_equal(
            results[True].best_position, results[False].best_position
        )
        assert (
            results[True].elapsed_seconds == results[False].elapsed_seconds
        )
