"""Occupancy calculator against hand-computed V100 cases."""

import pytest

from repro.errors import InvalidLaunchError
from repro.gpusim.occupancy import achieved_occupancy, occupancy


class TestTheoreticalOccupancy:
    def test_full_occupancy_config(self, v100):
        """256 threads, 32 regs: 8 blocks/SM x 8 warps = 64 warps = 100 %."""
        res = occupancy(v100, 256, registers_per_thread=32)
        assert res.occupancy == 1.0
        assert res.blocks_per_sm == 8
        assert res.warps_per_sm == 64

    def test_thread_limited(self, v100):
        """1024-thread blocks: 2 blocks fill the 2048-thread SM."""
        res = occupancy(v100, 1024, registers_per_thread=32)
        assert res.blocks_per_sm == 2
        assert res.occupancy == 1.0
        assert res.limiter == "threads"

    def test_register_limited(self, v100):
        """128 regs/thread: 65536/(128*32*8 warps) => 2 blocks of 256."""
        res = occupancy(v100, 256, registers_per_thread=128)
        assert res.limiter == "registers"
        assert res.blocks_per_sm == 2
        assert res.occupancy == pytest.approx(16 / 64)

    def test_block_slot_limited(self, v100):
        """Tiny 32-thread blocks hit the 32-blocks/SM cap: 32 warps = 50 %."""
        res = occupancy(v100, 32, registers_per_thread=16)
        assert res.limiter == "blocks"
        assert res.blocks_per_sm == 32
        assert res.occupancy == 0.5

    def test_shared_memory_limited(self, v100):
        """48 KiB/block on a 96 KiB SM: 2 resident blocks."""
        res = occupancy(
            v100, 256, registers_per_thread=32, shared_mem_per_block=48 * 1024
        )
        assert res.limiter == "shared_memory"
        assert res.blocks_per_sm == 2
        assert res.occupancy == pytest.approx(16 / 64)

    def test_non_warp_multiple_block(self, v100):
        """100 threads round up to 4 warps for residency accounting."""
        res = occupancy(v100, 100, registers_per_thread=32)
        assert res.warps_per_sm == res.blocks_per_sm * 4

    def test_impossible_config_raises(self, v100):
        with pytest.raises(InvalidLaunchError, match="more registers"):
            occupancy(v100, 1024, registers_per_thread=255)

    def test_zero_registers_rejected(self, v100):
        with pytest.raises(InvalidLaunchError):
            occupancy(v100, 256, registers_per_thread=0)

    def test_oversized_block_rejected(self, v100):
        with pytest.raises(InvalidLaunchError):
            occupancy(v100, 2048)

    def test_occupancy_monotone_in_registers(self, v100):
        values = [
            occupancy(v100, 256, registers_per_thread=r).occupancy
            for r in (16, 32, 64, 128, 200)
        ]
        assert values == sorted(values, reverse=True)


class TestAchievedOccupancy:
    def test_full_grid_matches_theoretical(self, v100):
        theo = occupancy(v100, 256).occupancy
        # 8 blocks/SM x 80 SMs = 640 blocks saturate the device.
        assert achieved_occupancy(v100, 640, 256) == pytest.approx(theo)

    def test_small_grid_scales_down(self, v100):
        # 40 blocks of 128 threads = 5120 threads on a 163840-thread device.
        small = achieved_occupancy(v100, 40, 128)
        assert small == pytest.approx(40 / (16 * 80), rel=1e-6)

    def test_more_blocks_than_capacity_caps_at_theoretical(self, v100):
        theo = occupancy(v100, 256).occupancy
        assert achieved_occupancy(v100, 100_000, 256) == pytest.approx(theo)

    def test_thread_per_particle_starvation(self, v100):
        """The paper's core observation: 5000 particles => ~3 % occupancy."""
        blocks = -(-5000 // 128)
        occ = achieved_occupancy(v100, blocks, 128)
        assert occ < 0.05

    def test_zero_blocks_rejected(self, v100):
        with pytest.raises(InvalidLaunchError):
            achieved_occupancy(v100, 0, 256)

    def test_string_rendering(self, v100):
        text = str(occupancy(v100, 256))
        assert "warps/SM" in text and "%" in text
