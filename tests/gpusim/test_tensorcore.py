"""Tensor-core model: fp16 rounding semantics and derived specs."""

import numpy as np
import pytest

from repro.errors import InvalidLaunchError
from repro.gpusim.device import laptop_gpu, tesla_v100
from repro.gpusim.kernel import KernelSpec
from repro.gpusim.tensorcore import (
    fragment_multiply_add,
    supports_tensor_cores,
    tensor_core_spec,
    to_half,
)


class TestToHalf:
    def test_rounds_to_fp16_grid(self):
        x = np.array([1.0 + 2**-12], dtype=np.float32)
        assert to_half(x)[0] == np.float16(1.0)  # dropped below fp16 ulp

    def test_exact_values_preserved(self):
        x = np.array([0.5, 1.0, 2.0, -3.5], dtype=np.float32)
        np.testing.assert_array_equal(to_half(x).astype(np.float32), x)

    def test_overflow_saturates_to_inf(self):
        assert np.isinf(to_half(np.array([1e6], dtype=np.float32))[0])


class TestFragmentMultiplyAdd:
    def test_matches_fp16_rounded_product(self, rng_np):
        a = rng_np.uniform(0, 1, (16, 16)).astype(np.float32)
        b = rng_np.uniform(-5, 5, (16, 16)).astype(np.float32)
        out = fragment_multiply_add(a, b)
        expected = a.astype(np.float16).astype(np.float32) * b.astype(
            np.float16
        ).astype(np.float32)
        np.testing.assert_array_equal(out, expected)

    def test_accumulation_stays_fp32(self, rng_np):
        a = np.full((4, 4), 1.0, dtype=np.float32)
        b = np.full((4, 4), 2.0**-11, dtype=np.float32)
        acc = np.full((4, 4), 1000.0, dtype=np.float32)
        out = fragment_multiply_add(a, b, acc)
        # 2^-11 is representable in fp16; fp32 accumulation keeps the sum
        # distinguishable from the accumulator alone.
        assert np.all(out > 1000.0)

    def test_rounding_error_bounded(self, rng_np):
        """Relative error of the product is within fp16 epsilon-ish bounds."""
        a = rng_np.uniform(0.5, 1.0, 10000).astype(np.float32)
        b = rng_np.uniform(0.5, 1.0, 10000).astype(np.float32)
        exact = a.astype(np.float64) * b.astype(np.float64)
        approx = fragment_multiply_add(a, b).astype(np.float64)
        rel = np.abs(approx - exact) / exact
        assert rel.max() < 2e-3  # fp16 eps ~ 9.8e-4 per operand

    def test_shape_mismatch_rejected(self):
        with pytest.raises(InvalidLaunchError):
            fragment_multiply_add(np.zeros((2, 2)), np.zeros((2, 3)))

    def test_accumulator_shape_checked(self):
        with pytest.raises(InvalidLaunchError):
            fragment_multiply_add(
                np.zeros((2, 2)), np.zeros((2, 2)), np.zeros((3, 3))
            )


class TestTensorCoreSpec:
    def _base(self):
        return KernelSpec(name="update", flops_per_elem=10.0)

    def test_sets_tensor_core_flag(self):
        assert tensor_core_spec(self._base()).tensor_core

    def test_allocates_fragment_staging(self):
        spec = tensor_core_spec(self._base(), block_threads=256)
        warps = 256 // 32
        assert spec.shared_mem_per_block == warps * (2 * 512 + 1024)

    def test_non_warp_block_rejected(self):
        with pytest.raises(InvalidLaunchError):
            tensor_core_spec(self._base(), block_threads=100)

    def test_support_detection(self):
        assert supports_tensor_cores(tesla_v100())
        assert not supports_tensor_cores(laptop_gpu())
