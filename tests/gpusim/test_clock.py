"""SimClock: advancement, sections, nesting."""

import pytest

from repro.gpusim.clock import SimClock


class TestAdvance:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == 2.0

    def test_advance_returns_new_time(self):
        assert SimClock().advance(3.0) == 3.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            SimClock().advance(-1.0)

    def test_zero_advance_allowed(self):
        clock = SimClock()
        clock.advance(0.0)
        assert clock.now == 0.0


class TestSections:
    def test_time_attributed_to_section(self):
        clock = SimClock()
        with clock.section("eval"):
            clock.advance(2.0)
        clock.advance(1.0)
        assert clock.total("eval") == 2.0
        assert clock.now == 3.0

    def test_unknown_section_total_is_zero(self):
        assert SimClock().total("nothing") == 0.0

    def test_nested_sections_charge_innermost(self):
        clock = SimClock()
        with clock.section("outer"):
            clock.advance(1.0)
            with clock.section("inner"):
                clock.advance(2.0)
            clock.advance(3.0)
        assert clock.total("outer") == 4.0
        assert clock.total("inner") == 2.0

    def test_section_reentrant(self):
        clock = SimClock()
        for _ in range(3):
            with clock.section("swarm"):
                clock.advance(1.0)
        assert clock.total("swarm") == 3.0

    def test_reset_clears_everything(self):
        clock = SimClock()
        with clock.section("a"):
            clock.advance(1.0)
        clock.reset()
        assert clock.now == 0.0
        assert clock.section_totals == {}

    def test_exception_unwinds_section_stack(self):
        clock = SimClock()
        with pytest.raises(RuntimeError):
            with clock.section("a"):
                raise RuntimeError("boom")
        clock.advance(1.0)
        assert clock.total("a") == 0.0
