"""Allocators: size classes, pooling behaviour, timing, stats."""

import numpy as np
import pytest

from repro.errors import AllocationError, DeviceOutOfMemoryError
from repro.gpusim.alloc import CachingAllocator, DirectAllocator, size_class
from repro.gpusim.clock import SimClock
from repro.gpusim.device import tesla_v100
from repro.gpusim.memory import GlobalMemory


def make_allocators(total=1 << 20):
    spec = tesla_v100()
    clock = SimClock()
    mem = GlobalMemory(total)
    return spec, clock, mem


class TestSizeClass:
    @pytest.mark.parametrize(
        "request_bytes,expected",
        [(0, 256), (1, 256), (256, 256), (257, 512), (1000, 1024), (4096, 4096)],
    )
    def test_rounding(self, request_bytes, expected):
        assert size_class(request_bytes) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            size_class(-1)


class TestDirectAllocator:
    def test_alloc_free_cycle(self):
        spec, clock, mem = make_allocators()
        alloc = DirectAllocator(spec, mem, clock)
        buf = alloc.alloc(1000)
        assert mem.used_bytes == 1024
        alloc.free(buf)
        assert mem.used_bytes == 0
        assert not buf.alive

    def test_every_alloc_pays_driver_latency(self):
        spec, clock, mem = make_allocators()
        alloc = DirectAllocator(spec, mem, clock)
        for _ in range(5):
            alloc.free(alloc.alloc(1000))
        expected = 5 * (spec.malloc_overhead_s + spec.free_overhead_s)
        assert clock.now == pytest.approx(expected)

    def test_double_free_rejected(self):
        spec, clock, mem = make_allocators()
        alloc = DirectAllocator(spec, mem, clock)
        buf = alloc.alloc(100)
        alloc.free(buf)
        with pytest.raises(AllocationError, match="already-freed"):
            alloc.free(buf)

    def test_oom_propagates(self):
        spec, clock, mem = make_allocators(total=2048)
        alloc = DirectAllocator(spec, mem, clock)
        alloc.alloc(1024)
        with pytest.raises(DeviceOutOfMemoryError):
            alloc.alloc(2048)

    def test_alloc_like_shapes(self):
        spec, clock, mem = make_allocators()
        alloc = DirectAllocator(spec, mem, clock)
        buf = alloc.alloc_like((4, 8), np.float64)
        assert buf.array().shape == (4, 8)
        assert buf.nbytes >= 4 * 8 * 8

    def test_live_buffer_count(self):
        spec, clock, mem = make_allocators()
        alloc = DirectAllocator(spec, mem, clock)
        a = alloc.alloc(100)
        b = alloc.alloc(100)
        assert alloc.live_buffers == 2
        alloc.free(a)
        assert alloc.live_buffers == 1
        alloc.free(b)


class TestCachingAllocator:
    def test_pool_hit_on_same_class(self):
        spec, clock, mem = make_allocators()
        alloc = CachingAllocator(spec, mem, clock)
        buf = alloc.alloc(1000)
        alloc.free(buf)
        buf2 = alloc.alloc(900)  # same 1024 class
        assert alloc.stats.pool_hits == 1
        assert alloc.stats.pool_misses == 1
        assert buf2.nbytes == 1024

    def test_pool_hit_does_not_touch_device_memory(self):
        spec, clock, mem = make_allocators()
        alloc = CachingAllocator(spec, mem, clock)
        alloc.free(alloc.alloc(1000))
        used = mem.used_bytes
        alloc.alloc(1000)
        assert mem.used_bytes == used  # reused the pooled block

    def test_pool_hit_is_cheap(self):
        spec, clock, mem = make_allocators()
        alloc = CachingAllocator(spec, mem, clock)
        alloc.free(alloc.alloc(1000))
        t0 = clock.now
        alloc.alloc(1000)
        assert clock.now - t0 < spec.malloc_overhead_s / 10

    def test_miss_on_larger_class(self):
        spec, clock, mem = make_allocators()
        alloc = CachingAllocator(spec, mem, clock)
        alloc.free(alloc.alloc(1000))
        alloc.alloc(5000)
        assert alloc.stats.pool_misses == 2

    def test_reused_block_is_zeroed_with_new_shape(self):
        spec, clock, mem = make_allocators()
        alloc = CachingAllocator(spec, mem, clock)
        buf = alloc.alloc_like((10,), np.float32)
        buf.array()[:] = 7.0
        alloc.free(buf)
        buf2 = alloc.alloc_like((5, 2), np.float32)
        assert buf2.array().shape == (5, 2)
        assert np.all(buf2.array() == 0.0)

    def test_pooled_bytes_accounting(self):
        spec, clock, mem = make_allocators()
        alloc = CachingAllocator(spec, mem, clock)
        a = alloc.alloc(1000)
        b = alloc.alloc(3000)
        alloc.free(a)
        alloc.free(b)
        assert alloc.pooled_bytes == 1024 + 4096

    def test_release_all_returns_memory(self):
        spec, clock, mem = make_allocators()
        alloc = CachingAllocator(spec, mem, clock)
        alloc.free(alloc.alloc(1000))
        alloc.release_all()
        assert mem.used_bytes == 0
        assert alloc.pooled_bytes == 0

    def test_hit_rate(self):
        spec, clock, mem = make_allocators()
        alloc = CachingAllocator(spec, mem, clock)
        for _ in range(4):
            alloc.free(alloc.alloc(512))
        assert alloc.stats.hit_rate == pytest.approx(3 / 4)

    def test_double_free_rejected(self):
        spec, clock, mem = make_allocators()
        alloc = CachingAllocator(spec, mem, clock)
        buf = alloc.alloc(128)
        alloc.free(buf)
        with pytest.raises(AllocationError):
            alloc.free(buf)

    def test_steady_state_iteration_is_driver_free(self):
        """The paper's per-iteration L/G allocations become pure pool hits."""
        spec, clock, mem = make_allocators(total=1 << 22)
        alloc = CachingAllocator(spec, mem, clock)
        # warm-up iteration
        l1, g1 = alloc.alloc(8192), alloc.alloc(8192)
        alloc.free(l1)
        alloc.free(g1)
        misses = alloc.stats.pool_misses
        for _ in range(100):
            l, g = alloc.alloc(8192), alloc.alloc(8192)
            alloc.free(l)
            alloc.free(g)
        assert alloc.stats.pool_misses == misses
