"""Profiler aggregation: kernel summaries and whole-run metrics."""

import pytest

from repro.gpusim.clock import SimClock
from repro.gpusim.kernel import Kernel, KernelSpec
from repro.gpusim.launch import Launcher
from repro.gpusim.profiler import build_report


@pytest.fixture
def launcher(v100):
    # build_report consumes per-launch records, which are opt-in now.
    return Launcher(spec=v100, clock=SimClock(), record_launches=True)


def _kernel(name, **spec_kwargs):
    return Kernel(KernelSpec(name=name, **spec_kwargs), semantics=lambda: None)


class TestBuildReport:
    def test_empty_log(self):
        report = build_report([])
        assert report.total_kernel_seconds == 0.0
        assert report.dram_read_throughput_gbs == 0.0
        assert report.gflops == 0.0
        assert report.kernels == {}

    def test_aggregates_by_kernel_name(self, launcher):
        k = _kernel("a", bytes_read_per_elem=8.0)
        launcher.launch(k, 1000)
        launcher.launch(k, 2000)
        report = build_report(launcher.records)
        assert report.kernels["a"].launches == 2
        assert report.kernels["a"].total_bytes_read == 8.0 * 3000

    def test_separate_kernels_kept_separate(self, launcher):
        launcher.launch(_kernel("a"), 100)
        launcher.launch(_kernel("b"), 100)
        assert set(build_report(launcher.records).kernels) == {"a", "b"}

    def test_throughput_excludes_launch_overhead(self, launcher, v100):
        k = _kernel("a", bytes_read_per_elem=4.0, bytes_written_per_elem=0.0)
        launcher.launch(k, 1_000_000)
        report = build_report(launcher.records)
        rec = launcher.records[0]
        body = rec.cost.seconds - rec.cost.t_launch_overhead
        assert report.dram_read_throughput_gbs == pytest.approx(
            4e6 / body / 1e9
        )

    def test_totals_sum_over_launches(self, launcher):
        launcher.launch(_kernel("a", flops_per_elem=3.0), 1000)
        launcher.launch(_kernel("b", flops_per_elem=5.0), 1000)
        report = build_report(launcher.records)
        assert report.total_flops == 3000 + 5000

    def test_sections_passed_through(self, launcher):
        report = build_report(launcher.records, {"swarm": 1.5})
        assert report.sections["swarm"] == 1.5

    def test_mean_occupancy(self, launcher, v100):
        k = _kernel("a")
        launcher.launch(k, v100.max_resident_threads)  # full occupancy
        report = build_report(launcher.records)
        assert report.kernels["a"].mean_occupancy == pytest.approx(1.0)

    def test_write_throughput(self, launcher):
        k = _kernel("w", bytes_read_per_elem=0.0, bytes_written_per_elem=8.0)
        launcher.launch(k, 1_000_000)
        report = build_report(launcher.records)
        assert report.dram_write_throughput_gbs > 0
        assert report.dram_read_throughput_gbs == 0.0

    def test_kernel_summary_rates(self, launcher):
        launcher.launch(_kernel("a", flops_per_elem=10.0), 1_000_000)
        summary = build_report(launcher.records).kernels["a"]
        assert summary.gflops > 0
        assert summary.read_throughput_gbs > 0
