"""Launch-graph capture & replay (:mod:`repro.gpusim.graph`).

The contract under test: with ``graph=True`` (the default) an engine's
results are bit-identical to eager execution — trajectory, best value,
simulated seconds, per-step breakdown, allocator counters and aggregated
profiler totals — while the steady-state iterations actually go through the
replay path; and everything that can change the iteration shape falls back
to eager execution, visibly via ``engine.graph_info``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.parameters import PSOParams
from repro.core.problem import Problem
from repro.core.stopping import StallStop
from repro.engines import make_engine
from repro.gpusim.graph import LaunchGraph
from repro.gpusim.launch import LaunchStats

GRAPH_ENGINES = [
    "fastpso",
    "fastpso-shared",
    "fastpso-tensorcore",
    "fastpso-fused",
    "fastpso-fp16",
    "fastpso-seq",
    "fastpso-omp",
    "fastpso-mgpu",
]


@pytest.fixture
def problem():
    return Problem.from_benchmark("sphere", 10)


def run(name, problem, *, iters=20, n=64, **opts):
    engine = make_engine(name, **opts)
    result = engine.optimize(
        problem,
        n_particles=n,
        max_iter=iters,
        params=PSOParams(seed=7),
        record_history=True,
    )
    return engine, result


class TestBitIdenticalReplay:
    @pytest.mark.parametrize("name", GRAPH_ENGINES)
    def test_graph_matches_eager(self, name, problem):
        graph_engine, graph_result = run(name, problem, graph=True)
        eager_engine, eager_result = run(name, problem, graph=False)
        assert graph_engine.graph_info["mode"] == "graph"
        assert graph_engine.graph_info["replays"] > 0
        assert eager_engine.graph_info["mode"] == "eager"
        assert eager_engine.graph_info["eager_reason"] == "graph=False"

        assert graph_result.best_value == eager_result.best_value
        np.testing.assert_array_equal(
            graph_result.best_position, eager_result.best_position
        )
        assert graph_result.elapsed_seconds == eager_result.elapsed_seconds
        assert graph_result.setup_seconds == eager_result.setup_seconds
        assert graph_result.step_times == eager_result.step_times
        assert list(graph_result.history.gbest_values) == list(
            eager_result.history.gbest_values
        )
        assert (
            graph_result.peak_device_bytes == eager_result.peak_device_bytes
        )

    def test_lifecycle_counters(self, problem):
        engine, _ = run("fastpso", problem, iters=20)
        info = engine.graph_info
        # warmup(0) + capture(1) + validate(2) leaves 17 replayed iterations.
        assert info["captured_at"] == 1
        assert info["replays"] == 17
        assert info["eager_reason"] is None

    def test_profiler_stats_match_eager(self, problem):
        graph_engine, _ = run("fastpso", problem, graph=True)
        eager_engine, _ = run("fastpso", problem, graph=False)
        gstats = graph_engine.ctx.launcher.stats
        estats = eager_engine.ctx.launcher.stats
        assert set(gstats) == set(estats)
        for key, expected in estats.items():
            got = gstats[key]
            assert got.launches == expected.launches, key
            assert got.total_elems == expected.total_elems, key
            assert got.seconds == pytest.approx(expected.seconds), key
            assert got.flops == pytest.approx(expected.flops), key

    def test_allocator_counters_stay_truthful(self, problem):
        engine, _ = run("fastpso", problem, iters=20)
        stats = engine.ctx.allocator.stats
        # Replayed iterations do real alloc/free: 2 weight buffers per
        # iteration, pool hits from iteration 1 on.
        assert stats.pool_hits >= 2 * 18
        assert stats.allocs == stats.frees


class TestEagerFallbacks:
    def test_stop_criterion_forces_eager(self, problem):
        engine = make_engine("fastpso")
        engine.optimize(
            problem,
            n_particles=32,
            max_iter=10,
            params=PSOParams(seed=7),
            stop=StallStop(patience=50),
        )
        assert engine.graph_info["mode"] == "eager"
        assert engine.graph_info["eager_reason"] == "stop-criterion"

    def test_callback_forces_eager(self, problem):
        engine = make_engine("fastpso")
        engine.optimize(
            problem,
            n_particles=32,
            max_iter=10,
            params=PSOParams(seed=7),
            callback=lambda t, state: False,
        )
        assert engine.graph_info["eager_reason"] == "callback"

    def test_record_launches_forces_eager(self, problem):
        engine, result = run("fastpso", problem, record_launches=True)
        assert engine.graph_info["eager_reason"] == "record-launches"
        # The per-launch log is complete: every iteration's launches are
        # individually recorded, which replay could not provide.
        names = {r.kernel_name for r in engine.ctx.launcher.records}
        assert "evaluation_kernel" in names
        assert "swarm_velocity_update" in names

    def test_fault_injector_forces_eager(self, problem):
        from repro.reliability.faults import FaultInjector, FaultSpec

        engine = make_engine("fastpso")
        engine.attach_fault_injector(
            FaultInjector([FaultSpec("stall", after=3, stall_seconds=1e-4)])
        )
        engine.optimize(
            problem, n_particles=32, max_iter=10, params=PSOParams(seed=7)
        )
        assert engine.graph_info["eager_reason"] == "fault-injector"

    def test_graph_false_respected_via_batch_default(self, problem):
        # The scheduler-style injection path: an explicit option wins.
        engine, _ = run("fastpso", problem, graph=False)
        assert engine.graph_enabled is False
        assert engine.graph_info["mode"] == "eager"

    def test_unsupported_engine_reports_reason(self, problem):
        engine = make_engine("pyswarms")
        engine.optimize(
            problem, n_particles=32, max_iter=5, params=PSOParams(seed=7)
        )
        assert (
            engine.graph_info["eager_reason"]
            == "engine-does-not-support-graphs"
        )


def _cost(seconds=1e-6, overhead=1e-7, **overrides):
    from repro.gpusim.costmodel import KernelCost

    fields = dict(
        seconds=seconds,
        t_memory=0.0,
        t_compute=0.0,
        t_sfu=0.0,
        t_issue=0.0,
        t_latency=0.0,
        t_launch_overhead=overhead,
        bytes_read=8.0,
        bytes_written=4.0,
        flops=16.0,
        occupancy=1.0,
    )
    fields.update(overrides)
    return KernelCost(**fields)


class TestLaunchGraphPrimitives:
    def test_trace_match_wildcards_dynamic_slots(self):
        graph = LaunchGraph(
            trace=[("eval", 1.0, False), ("pbest", 0.5, True)]
        )
        assert graph.trace_matches([("eval", 1.0, False), ("pbest", 9.0, True)])
        assert not graph.trace_matches(
            [("eval", 2.0, False), ("pbest", 0.5, True)]
        )
        assert not graph.trace_matches([("eval", 1.0, False)])
        assert not graph.trace_matches(
            [("eval", 1.0, True), ("pbest", 0.5, True)]
        )

    def test_add_many_equals_repeated_add(self):
        cost = _cost(
            seconds=2.5e-6,
            overhead=5e-7,
            bytes_read=1024.0,
            bytes_written=512.0,
            flops=4096.0,
            occupancy=0.75,
        )
        one = LaunchStats(kernel_name="k", section="eval")
        for _ in range(7):
            one.add(cost, 100)
        many = LaunchStats(kernel_name="k", section="eval")
        many.add_many(cost, 100, 7)
        assert many.launches == one.launches
        assert many.total_elems == one.total_elems
        assert many.seconds == pytest.approx(one.seconds)
        assert many.body_seconds == pytest.approx(one.body_seconds)
        assert many.flops == pytest.approx(one.flops)
        assert many.occupancy_sum == pytest.approx(one.occupancy_sum)

    def test_flush_stats_creates_and_folds_buckets(self):
        from repro.gpusim.kernel import LaunchConfig

        cost = _cost()
        graph = LaunchGraph(
            launches=[("k", "eval", 50, LaunchConfig(1, 256), cost)]
        )
        stats: dict = {}
        graph.flush_stats(stats, replays=5)
        bucket = stats[("k", "eval")]
        assert bucket.launches == 5
        assert bucket.total_elems == 250
        graph.flush_stats(stats, replays=0)  # no-op
        assert bucket.launches == 5
