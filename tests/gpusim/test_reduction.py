"""Parallel argmin reduction: exactness vs np.argmin, tie-breaking, costs."""

import numpy as np
import pytest

from repro.gpusim.clock import SimClock
from repro.gpusim.launch import Launcher
from repro.gpusim.reduction import REDUCE_BLOCK_SIZE, ParallelReducer


@pytest.fixture
def reducer(v100):
    return ParallelReducer(Launcher(spec=v100, clock=SimClock()))


class TestArgminCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 17, 255, 256, 257, 1000, 5000, 70000])
    def test_matches_numpy(self, reducer, rng_np, n):
        values = rng_np.normal(size=n)
        idx, val = reducer.argmin(values)
        assert idx == int(np.argmin(values))
        assert val == float(values.min())

    def test_ties_resolve_to_lowest_index(self, reducer):
        values = np.array([5.0, 1.0, 3.0, 1.0, 1.0])
        idx, val = reducer.argmin(values)
        assert idx == 1 and val == 1.0

    def test_tie_across_block_boundary(self, reducer):
        values = np.full(2 * REDUCE_BLOCK_SIZE, 2.0)
        values[REDUCE_BLOCK_SIZE - 1] = 1.0
        values[REDUCE_BLOCK_SIZE] = 1.0
        idx, _ = reducer.argmin(values)
        assert idx == REDUCE_BLOCK_SIZE - 1

    def test_minimum_in_padded_tail(self, reducer):
        n = REDUCE_BLOCK_SIZE + 3
        values = np.full(n, 10.0)
        values[-1] = -1.0
        idx, val = reducer.argmin(values)
        assert idx == n - 1 and val == -1.0

    def test_inf_values_handled(self, reducer):
        values = np.array([np.inf, np.inf, 3.0, np.inf])
        idx, val = reducer.argmin(values)
        assert idx == 2 and val == 3.0

    def test_all_inf(self, reducer):
        values = np.full(10, np.inf)
        idx, val = reducer.argmin(values)
        assert idx == 0 and val == np.inf

    def test_empty_rejected(self, reducer):
        with pytest.raises(ValueError, match="non-empty"):
            reducer.argmin(np.empty(0))

    def test_2d_rejected(self, reducer):
        with pytest.raises(ValueError):
            reducer.argmin(np.zeros((3, 3)))


class TestReductionCosts:
    def test_two_launches_for_large_input(self, v100, rng_np):
        launcher = Launcher(spec=v100, clock=SimClock(), record_launches=True)
        reducer = ParallelReducer(launcher)
        reducer.argmin(rng_np.normal(size=10_000))
        names = [r.kernel_name for r in launcher.records]
        assert names == ["reduce_argmin_pass1", "reduce_argmin_pass2"]

    def test_single_element_still_costs_a_kernel(self, v100):
        launcher = Launcher(spec=v100, clock=SimClock(), record_launches=True)
        reducer = ParallelReducer(launcher)
        reducer.argmin(np.array([4.0]))
        assert len(launcher.records) == 1
        assert launcher.clock.now >= v100.kernel_launch_overhead_s

    def test_cost_scales_with_input(self, v100, rng_np):
        def time_for(n):
            launcher = Launcher(spec=v100, clock=SimClock())
            ParallelReducer(launcher).argmin(rng_np.normal(size=n))
            return launcher.clock.now

        assert time_for(5_000_000) > time_for(10_000)
