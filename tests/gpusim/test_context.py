"""GpuContext wiring: factory, allocator flavours, profiling, OOM."""

import numpy as np
import pytest

from repro.errors import DeviceOutOfMemoryError
from repro.gpusim.alloc import CachingAllocator, DirectAllocator
from repro.gpusim.context import make_context
from repro.gpusim.device import laptop_gpu
from repro.gpusim.kernel import Kernel, KernelSpec


class TestMakeContext:
    def test_default_is_v100_with_caching(self, ctx):
        assert ctx.spec.sm_count == 80
        assert isinstance(ctx.allocator, CachingAllocator)

    def test_direct_allocator_flavour(self, ctx_direct):
        assert isinstance(ctx_direct.allocator, DirectAllocator)

    def test_custom_spec(self):
        ctx = make_context(laptop_gpu())
        assert ctx.spec.name == "Laptop-GTX1650"

    def test_shared_clock(self, ctx):
        """Launcher, allocator and transfers advance one timeline."""
        buf = ctx.alloc_matrix(100, 10)
        t_alloc = ctx.now
        assert t_alloc > 0
        k = Kernel(KernelSpec(name="k"), semantics=lambda: None)
        ctx.launcher.launch(k, 1000)
        assert ctx.now > t_alloc
        ctx.transfers.htod(buf, np.zeros((100, 10), np.float32))
        assert ctx.now > t_alloc

    def test_alloc_helpers(self, ctx):
        mat = ctx.alloc_matrix(8, 4, dtype=np.float64)
        vec = ctx.alloc_vector(8)
        assert mat.array().shape == (8, 4)
        assert vec.array().shape == (8,)
        ctx.free(mat)
        ctx.free(vec)

    def test_oom_on_oversized_swarm(self):
        ctx = make_context(laptop_gpu())  # 4 GB card
        with pytest.raises(DeviceOutOfMemoryError):
            ctx.alloc_matrix(200_000, 10_000)  # 8 GB of float32

    def test_rng_namespaced_by_device(self):
        a = make_context(device_index=0).make_rng(1).random_uint32(64)
        b = make_context(device_index=1).make_rng(1).random_uint32(64)
        assert not np.array_equal(a, b)

    def test_profile_report_reflects_launches(self, ctx):
        k = Kernel(KernelSpec(name="probe"), semantics=lambda: None)
        ctx.launcher.launch(k, 1000)
        report = ctx.profile_report()
        assert "probe" in report.kernels

    def test_reset_timeline(self, ctx):
        k = Kernel(KernelSpec(name="probe"), semantics=lambda: None)
        ctx.launcher.launch(k, 1000)
        ctx.reset_timeline()
        assert ctx.now == 0.0
        assert ctx.launcher.records == []

    def test_new_stream_registered(self, ctx):
        s = ctx.new_stream()
        assert s in ctx.streams
