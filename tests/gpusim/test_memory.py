"""Global memory accounting, buffer lifetime and transfer timing."""

import numpy as np
import pytest

from repro.errors import DeviceOutOfMemoryError, MemoryAccessError
from repro.gpusim.clock import SimClock
from repro.gpusim.device import tesla_v100
from repro.gpusim.memory import DeviceBuffer, GlobalMemory, TransferEngine


class TestGlobalMemory:
    def test_reserve_release_roundtrip(self):
        mem = GlobalMemory(1000)
        mem.reserve(600)
        assert mem.free_bytes == 400
        mem.release(600)
        assert mem.used_bytes == 0

    def test_oom_raises_with_details(self):
        mem = GlobalMemory(1000)
        mem.reserve(900)
        with pytest.raises(DeviceOutOfMemoryError) as exc:
            mem.reserve(200)
        assert exc.value.requested == 200
        assert exc.value.free == 100
        assert exc.value.total == 1000

    def test_oom_leaves_state_unchanged(self):
        mem = GlobalMemory(1000)
        mem.reserve(900)
        with pytest.raises(DeviceOutOfMemoryError):
            mem.reserve(200)
        assert mem.used_bytes == 900

    def test_high_water_mark(self):
        mem = GlobalMemory(1000)
        mem.reserve(700)
        mem.release(500)
        mem.reserve(100)
        assert mem.high_water_bytes == 700

    def test_over_release_rejected(self):
        mem = GlobalMemory(1000)
        mem.reserve(100)
        with pytest.raises(MemoryAccessError):
            mem.release(200)

    def test_negative_amounts_rejected(self):
        mem = GlobalMemory(1000)
        with pytest.raises(ValueError):
            mem.reserve(-1)
        with pytest.raises(ValueError):
            mem.release(-1)


class TestDeviceBuffer:
    def test_array_shape_and_dtype(self):
        buf = DeviceBuffer(1024, (4, 8), np.float32)
        arr = buf.array()
        assert arr.shape == (4, 8)
        assert arr.dtype == np.float32
        assert np.all(arr == 0)

    def test_use_after_free(self):
        buf = DeviceBuffer(64, (4,), np.float32)
        buf.retire()
        with pytest.raises(MemoryAccessError, match="after free"):
            buf.array()

    def test_shape_exceeding_reservation_rejected(self):
        with pytest.raises(ValueError, match="bytes"):
            DeviceBuffer(16, (100,), np.float64)

    def test_reshape_view_revives_buffer(self):
        buf = DeviceBuffer(1024, (4, 8), np.float32)
        buf.retire()
        buf.reshape_view((16, 8), np.float64)
        arr = buf.array()
        assert arr.shape == (16, 8) and arr.dtype == np.float64

    def test_reshape_view_too_large_rejected(self):
        buf = DeviceBuffer(64, (4,), np.float32)
        with pytest.raises(ValueError):
            buf.reshape_view((100,), np.float64)

    def test_buffer_ids_unique(self):
        a, b = DeviceBuffer(64, (4,), np.float32), DeviceBuffer(64, (4,), np.float32)
        assert a.buffer_id != b.buffer_id


class TestTransferEngine:
    def _engine(self):
        clock = SimClock()
        return TransferEngine(tesla_v100(), clock), clock

    def test_htod_copies_and_charges_time(self):
        eng, clock = self._engine()
        buf = DeviceBuffer(1024, (16,), np.float32)
        eng.htod(buf, np.arange(16, dtype=np.float32))
        np.testing.assert_array_equal(buf.array(), np.arange(16))
        assert clock.now > 0
        assert eng.bytes_h2d == 64

    def test_dtoh_returns_copy(self):
        eng, _ = self._engine()
        buf = DeviceBuffer(1024, (8,), np.float32)
        buf.array()[:] = 3.0
        host = eng.dtoh(buf)
        host[:] = 0.0
        assert np.all(buf.array() == 3.0)

    def test_transfer_time_scales_with_bytes(self):
        eng, clock = self._engine()
        small = DeviceBuffer(4096, (1024,), np.float32)
        big = DeviceBuffer(4 << 20, (1 << 20,), np.float32)
        eng.htod(small, np.zeros(1024, np.float32))
        t_small = clock.now
        eng.htod(big, np.zeros(1 << 20, np.float32))
        t_big = clock.now - t_small
        assert t_big > t_small

    def test_htod_shape_mismatch(self):
        eng, _ = self._engine()
        buf = DeviceBuffer(1024, (16,), np.float32)
        with pytest.raises(MemoryAccessError, match="shape mismatch"):
            eng.htod(buf, np.zeros(8, np.float32))

    def test_transfer_to_freed_buffer_rejected(self):
        eng, _ = self._engine()
        buf = DeviceBuffer(1024, (16,), np.float32)
        buf.retire()
        with pytest.raises(MemoryAccessError):
            eng.htod(buf, np.zeros(16, np.float32))
