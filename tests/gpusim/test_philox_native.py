"""Native (compiled C) Philox path vs the NumPy reference implementation.

The native library is an opt-in acceleration: when a C compiler is present
the block function is compiled once per process; otherwise — or with
``REPRO_NO_NATIVE_RNG=1`` — the NumPy path runs.  Either way the bits must
be identical, which these tests pin directly (native vs ``philox4x32``)
and indirectly (a ``ParallelRNG`` with the native path disabled draws the
same streams as one with it enabled).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim import philox_native
from repro.gpusim.rng import ParallelRNG

needs_native = pytest.mark.skipif(
    not philox_native.available(),
    reason="no C compiler available (or native RNG disabled)",
)


@needs_native
class TestNativeBitParity:
    def test_unit_f64_matches_reference(self):
        from repro.gpusim.rng import philox4x32

        seed, sid, block0, n_blocks = 0x123456789ABCDEF0, 7, 5, 64
        rng = ParallelRNG(seed=seed, stream_id=sid)
        lib = philox_native.load()
        out = np.empty(4 * n_blocks, dtype=np.float64)
        philox_native.unit_f64(lib, block0, sid, n_blocks, rng._flat_keys, out)

        # Reference: raw counter words mapped with the same (w + 0.5) * 2^-32.
        idx = np.arange(block0, block0 + n_blocks, dtype=np.uint64)
        ctr = np.empty((n_blocks, 4), dtype=np.uint32)
        ctr[:, 0] = (idx & np.uint64(0xFFFFFFFF)).astype(np.uint32)
        ctr[:, 1] = (idx >> np.uint64(32)).astype(np.uint32)
        ctr[:, 2] = np.uint32(sid)
        ctr[:, 3] = 0
        key = np.array(
            [seed & 0xFFFFFFFF, (seed >> 32) & 0xFFFFFFFF], dtype=np.uint32
        )
        words = philox4x32(ctr, key)
        expected = (words.reshape(-1).astype(np.float64) + 0.5) * 2.0**-32
        np.testing.assert_array_equal(out, expected)

    def test_unit_f32_is_f64_rounded_once(self):
        rng = ParallelRNG(seed=99, stream_id=3)
        lib = philox_native.load()
        n_blocks = 32
        f32 = np.empty(4 * n_blocks, dtype=np.float32)
        f64 = np.empty(4 * n_blocks, dtype=np.float64)
        philox_native.unit_f32(lib, 0, 3, n_blocks, rng._flat_keys, f32)
        philox_native.unit_f64(lib, 0, 3, n_blocks, rng._flat_keys, f64)
        np.testing.assert_array_equal(f32, f64.astype(np.float32))


class TestStreamEquivalence:
    """Draws are identical whether or not the native path is active."""

    def _fallback_rng(self, *args, **kwargs):
        rng = ParallelRNG(*args, **kwargs)
        rng._native = None  # force the NumPy path on this instance
        return rng

    @pytest.mark.parametrize("dtype", [np.float32, np.float64, np.float16])
    def test_uniform_out_matches_fallback(self, dtype):
        native = ParallelRNG(seed=1234, stream_id=2)
        fallback = self._fallback_rng(seed=1234, stream_id=2)
        a = np.empty((50, 8), dtype=dtype)
        b = np.empty((50, 8), dtype=dtype)
        native.uniform((50, 8), 0.0, 1.0, out=a)
        fallback.uniform((50, 8), 0.0, 1.0, out=b)
        np.testing.assert_array_equal(a, b)
        assert native.position == fallback.position

    def test_ranged_and_odd_sizes_match_fallback(self):
        native = ParallelRNG(seed=77)
        fallback = self._fallback_rng(seed=77)
        np.testing.assert_array_equal(
            native.uniform(13, -2.5, 4.0), fallback.uniform(13, -2.5, 4.0)
        )
        np.testing.assert_array_equal(
            native.random_uint32(9), fallback.random_uint32(9)
        )
        assert native.position == fallback.position

    def test_seek_replays_identically(self):
        rng = ParallelRNG(seed=5, stream_id=1)
        first = rng.uniform(64, 0.0, 1.0)
        pos = rng.position
        rng.uniform(32, 0.0, 1.0)
        rng.seek(0)
        np.testing.assert_array_equal(rng.uniform(64, 0.0, 1.0), first)
        assert rng.position == pos

    def test_env_gate_disables_native(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NATIVE_RNG", "1")
        monkeypatch.setattr(philox_native, "_lib", philox_native._UNSET)
        assert philox_native.load() is None
        assert not philox_native.available()
        # monkeypatch teardown restores the original cached handle.
