"""Shifted and rotated function transforms."""

import numpy as np
import pytest

from repro.errors import InvalidProblemError
from repro.functions import Sphere, make_function
from repro.functions.transforms import Rotated, Shifted, random_rotation


class TestShifted:
    def test_optimum_moves_by_offset(self):
        offset = np.array([1.0, -2.0, 0.5])
        fn = Shifted(Sphere(), offset)
        x_star = fn.true_minimum_position(3)
        np.testing.assert_allclose(x_star, offset)
        assert fn.evaluate(x_star[np.newaxis, :])[0] == pytest.approx(0.0)

    def test_values_are_translations(self, rng_np):
        offset = np.array([0.3, 0.3])
        inner = make_function("rastrigin")
        fn = Shifted(inner, offset)
        p = rng_np.uniform(-2, 2, (5, 2))
        np.testing.assert_allclose(
            fn.evaluate(p), inner.evaluate(p - offset)
        )

    def test_reference_value_preserved(self):
        fn = Shifted(make_function("styblinski_tang"), np.ones(4))
        assert fn.reference_value(4) == make_function(
            "styblinski_tang"
        ).reference_value(4)

    def test_profile_adds_shift_cost(self):
        fn = Shifted(Sphere(), np.zeros(2))
        assert fn.profile().flops_per_elem == Sphere().profile().flops_per_elem + 1

    def test_name_and_domain(self):
        fn = Shifted(Sphere(), np.zeros(2))
        assert fn.name == "shifted_sphere"
        assert fn.domain == Sphere().domain

    def test_validation(self):
        with pytest.raises(TypeError):
            Shifted(lambda x: x, np.zeros(2))  # type: ignore[arg-type]
        with pytest.raises(InvalidProblemError):
            Shifted(Sphere(), np.zeros((2, 2)))

    def test_offset_dim_checked_at_evaluate(self):
        fn = Shifted(Sphere(), np.zeros(3))
        with pytest.raises(InvalidProblemError):
            fn.evaluate(np.zeros((1, 5)))


class TestRandomRotation:
    def test_orthogonal(self):
        q = random_rotation(6, seed=1)
        np.testing.assert_allclose(q @ q.T, np.eye(6), atol=1e-10)

    def test_seeded(self):
        np.testing.assert_array_equal(
            random_rotation(4, seed=9), random_rotation(4, seed=9)
        )

    def test_dim_validated(self):
        with pytest.raises(InvalidProblemError):
            random_rotation(0)


class TestRotated:
    def test_identity_rotation_is_noop(self, rng_np):
        fn = Rotated(Sphere(), np.eye(4))
        p = rng_np.uniform(-3, 3, (6, 4))
        np.testing.assert_allclose(fn.evaluate(p), Sphere().evaluate(p))

    def test_optimum_value_preserved(self):
        q = random_rotation(5, seed=2)
        inner = make_function("styblinski_tang")
        fn = Rotated(inner, q)
        x_star = fn.true_minimum_position(5)
        val = fn.evaluate(x_star[np.newaxis, :])[0]
        assert val == pytest.approx(inner.true_minimum_value(5), rel=1e-6)

    def test_breaks_separability(self, rng_np):
        """A rotated sphere is still a sphere about the centre; a rotated
        Rastrigin is not axis-separable: permuting coordinates changes it."""
        q = random_rotation(4, seed=3)
        fn = Rotated(make_function("rastrigin"), q)
        p = rng_np.uniform(-2, 2, (1, 4))
        permuted = p[:, ::-1].copy()
        assert fn.evaluate(p)[0] != pytest.approx(fn.evaluate(permuted)[0])

    def test_non_orthogonal_rejected(self):
        with pytest.raises(InvalidProblemError, match="orthogonal"):
            Rotated(Sphere(), np.ones((3, 3)))

    def test_non_square_rejected(self):
        with pytest.raises(InvalidProblemError, match="square"):
            Rotated(Sphere(), np.ones((2, 3)))

    def test_dim_mismatch_at_evaluate(self):
        fn = Rotated(Sphere(), np.eye(3))
        with pytest.raises(InvalidProblemError, match="dimension"):
            fn.evaluate(np.zeros((1, 5)))

    def test_profile_charges_matvec(self):
        fn = Rotated(Sphere(), np.eye(8))
        assert fn.profile().flops_per_elem >= 2 * 8


class TestOptimizerIntegration:
    def test_pso_solves_shifted_sphere(self):
        from repro.core.parameters import PSOParams
        from repro.core.problem import Problem
        from repro.engines import FastPSOEngine

        fn = Shifted(Sphere(), np.full(6, 2.0))
        problem = Problem.from_benchmark(fn, 6)
        r = FastPSOEngine().optimize(
            problem, n_particles=128, max_iter=150, params=PSOParams(seed=8)
        )
        assert r.best_value < 1.0
        np.testing.assert_allclose(r.best_position, 2.0, atol=0.5)
