"""The unified lookup surface: did-you-mean errors and the rename shim."""

import pytest

from repro.batch import BatchScheduler
from repro.engines import make_engine, resolve_engine
from repro.errors import (
    InvalidParameterError,
    InvalidProblemError,
    UnknownFunctionError,
)
from repro.functions import (
    available_functions,
    get_function,
    make_function,
    resolve_function,
)


class TestResolveFunction:
    def test_resolves_known_names_case_insensitively(self):
        assert resolve_function("sphere") == "sphere"
        assert resolve_function("Rastrigin") == "rastrigin"

    def test_unknown_name_raises_with_suggestion(self):
        with pytest.raises(InvalidParameterError) as exc:
            resolve_function("spherre")
        message = str(exc.value)
        assert "unknown benchmark function 'spherre'" in message
        assert "did you mean 'sphere'?" in message
        for name in available_functions():
            assert repr(name) in message

    def test_unknown_name_is_also_an_invalid_problem_error(self):
        """Problem.from_benchmark callers pinned InvalidProblemError; the
        resolver rename must not break that except clause."""
        with pytest.raises(InvalidProblemError):
            resolve_function("nope")
        with pytest.raises(UnknownFunctionError):
            make_function("nope")

    def test_no_suggestion_for_distant_names(self):
        with pytest.raises(InvalidParameterError) as exc:
            resolve_function("zzzzqqqq")
        assert "did you mean" not in str(exc.value)

    def test_make_function_builds_instances(self):
        fn = make_function("ackley")
        assert fn.name == "ackley"


class TestGetFunctionShim:
    def test_get_function_warns_and_forwards(self):
        with pytest.deprecated_call(match="renamed to make_function"):
            fn = get_function("sphere")
        assert fn.name == "sphere"

    def test_shim_result_matches_make_function(self):
        with pytest.deprecated_call():
            old = get_function("levy")
        assert type(old) is type(make_function("levy"))


class TestUnifiedSuggestionFormat:
    """All three lookup surfaces speak the same error dialect."""

    def test_engine_suggestion(self):
        with pytest.raises(InvalidParameterError) as exc:
            make_engine("fastpso-sq")
        message = str(exc.value)
        assert "unknown engine 'fastpso-sq'" in message
        assert "did you mean 'fastpso-seq'?" in message
        assert "choose from" in message

    def test_policy_suggestion(self):
        with pytest.raises(InvalidParameterError) as exc:
            BatchScheduler(policy="fussed")
        message = str(exc.value)
        assert "unknown policy 'fussed'" in message
        assert "did you mean 'fused'?" in message
        assert "'fifo', 'packed', 'fused'" in message

    def test_function_suggestion_same_shape(self):
        with pytest.raises(InvalidParameterError) as exc:
            resolve_function("grievank")
        message = str(exc.value)
        assert "did you mean 'griewank'?" in message
        assert "choose from" in message

    def test_resolve_engine_passthrough(self):
        name, options = resolve_engine("fastpso")
        assert name == "fastpso"
        assert options == {}
        alias, alias_options = resolve_engine("fastpso-tc")
        assert alias == "fastpso"
        assert alias_options  # the alias carries its preset options
