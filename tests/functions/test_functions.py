"""Benchmark functions: optima, domains, vectorisation, registry."""

import numpy as np
import pytest

from repro.errors import InvalidProblemError
from repro.functions import available_functions, make_function
from repro.functions.base import BenchmarkFunction, EvalProfile, register

ALL_NAMES = available_functions()
# Functions defined for any dimension >= 1 vs those needing >= 2.
MIN_DIM = {"rosenbrock": 2, "dixon_price": 2}


@pytest.mark.parametrize("name", ALL_NAMES)
class TestEveryFunction:
    def test_registered_and_instantiable(self, name):
        fn = make_function(name)
        assert isinstance(fn, BenchmarkFunction)
        assert fn.name == name

    def test_domain_well_formed(self, name):
        lo, hi = make_function(name).domain
        assert lo < hi

    def test_profile_valid(self, name):
        prof = make_function(name).profile()
        assert isinstance(prof, EvalProfile)
        assert prof.flops_per_elem >= 0

    def test_returns_one_value_per_row(self, name, rng_np):
        fn = make_function(name)
        d = max(MIN_DIM.get(name, 1), 5)
        lo, hi = fn.domain
        p = rng_np.uniform(lo, hi, (7, d))
        vals = fn.evaluate(p)
        assert vals.shape == (7,)
        assert np.all(np.isfinite(vals))

    def test_value_at_known_minimum(self, name):
        fn = make_function(name)
        d = max(MIN_DIM.get(name, 1), 6)
        x_star = fn.true_minimum_position(d)
        f_star = fn.true_minimum_value(d)
        value = float(fn.evaluate(x_star[np.newaxis, :])[0])
        if name == "michalewicz":
            # documented lower bound, not an attained value
            assert value >= f_star
        else:
            assert value == pytest.approx(f_star, abs=1e-3)

    def test_minimum_is_local_minimum(self, name, rng_np):
        """Small random perturbations never score below the optimum."""
        fn = make_function(name)
        if name == "michalewicz":
            pytest.skip("optimum position has no closed form")
        d = max(MIN_DIM.get(name, 1), 4)
        x_star = fn.true_minimum_position(d)
        f_star = float(fn.evaluate(x_star[np.newaxis, :])[0])
        perturbed = x_star + rng_np.normal(0, 1e-3, (50, d))
        vals = fn.evaluate(perturbed)
        assert np.all(vals >= f_star - 1e-6)

    def test_row_vectorisation_consistent(self, name, rng_np):
        """evaluate(P) must equal row-by-row evaluation."""
        fn = make_function(name)
        d = max(MIN_DIM.get(name, 1), 5)
        lo, hi = fn.domain
        p = rng_np.uniform(lo, hi, (6, d))
        batch = fn.evaluate(p)
        rows = np.array([fn.evaluate(row[np.newaxis, :])[0] for row in p])
        np.testing.assert_allclose(batch, rows, rtol=1e-12)

    def test_callable_protocol(self, name, rng_np):
        fn = make_function(name)
        d = max(MIN_DIM.get(name, 1), 3)
        p = rng_np.uniform(*fn.domain, (2, d))
        np.testing.assert_array_equal(fn(p), fn.evaluate(p))

    def test_1d_input_treated_as_single_particle(self, name):
        fn = make_function(name)
        d = max(MIN_DIM.get(name, 1), 4)
        x = np.zeros(d)
        assert fn.evaluate(x).shape == (1,)


class TestSpecificValues:
    def test_sphere(self):
        fn = make_function("sphere")
        np.testing.assert_allclose(
            fn.evaluate(np.array([[1.0, 2.0, 2.0]])), [9.0]
        )

    def test_griewank_at_origin(self):
        fn = make_function("griewank")
        np.testing.assert_allclose(fn.evaluate(np.zeros((1, 10))), [0.0])

    def test_griewank_known_point(self):
        # f(x) with a single coordinate x_1 = pi*sqrt(1): quad + 1 - cos(pi)
        fn = make_function("griewank")
        val = fn.evaluate(np.array([[np.pi]]))[0]
        assert val == pytest.approx(np.pi**2 / 4000 + 2.0)

    def test_easom_2d_classic(self):
        fn = make_function("easom")
        val = fn.evaluate(np.array([[np.pi, np.pi]]))[0]
        assert val == pytest.approx(-1.0)

    def test_easom_plateau_far_away(self):
        fn = make_function("easom")
        val = fn.evaluate(np.full((1, 50), 6.0))[0]
        assert abs(val) < 1e-10

    def test_easom_underflow_is_zero_not_nan(self):
        fn = make_function("easom")
        val = fn.evaluate(np.full((1, 400), 0.5))[0]
        assert np.isfinite(val)

    def test_easom_exact_cos_zero(self):
        fn = make_function("easom")
        val = fn.evaluate(np.array([[np.pi / 2, np.pi]]))[0]
        assert val == pytest.approx(0.0, abs=1e-12)

    def test_rastrigin_regular_minima(self):
        fn = make_function("rastrigin")
        # integer lattice points are the local minima: f(1,1) = 2
        val = fn.evaluate(np.array([[1.0, 1.0]]))[0]
        assert val == pytest.approx(2.0, abs=1e-9)

    def test_rosenbrock_valley(self):
        fn = make_function("rosenbrock")
        np.testing.assert_allclose(fn.evaluate(np.ones((1, 5))), [0.0])
        assert fn.evaluate(np.zeros((1, 2)))[0] == pytest.approx(1.0)

    def test_rosenbrock_needs_2d(self):
        with pytest.raises(InvalidProblemError):
            make_function("rosenbrock").evaluate(np.zeros((1, 1)))

    def test_dixon_price_needs_2d(self):
        with pytest.raises(InvalidProblemError):
            make_function("dixon_price").evaluate(np.zeros((1, 1)))

    def test_ackley_at_origin(self):
        val = make_function("ackley").evaluate(np.zeros((1, 8)))[0]
        assert val == pytest.approx(0.0, abs=1e-9)

    def test_schwefel_optimum(self):
        fn = make_function("schwefel")
        x = fn.true_minimum_position(10)[np.newaxis, :]
        assert fn.evaluate(x)[0] == pytest.approx(0.0, abs=1e-2)

    def test_zakharov_origin(self):
        assert make_function("zakharov").evaluate(np.zeros((1, 6)))[0] == 0.0

    def test_levy_ones(self):
        assert make_function("levy").evaluate(np.ones((1, 7)))[0] == pytest.approx(
            0.0, abs=1e-12
        )


class TestRegistry:
    def test_paper_functions_present(self):
        for name in ("sphere", "griewank", "easom"):
            assert name in ALL_NAMES

    def test_lookup_case_insensitive(self):
        assert make_function("SPHERE").name == "sphere"

    def test_unknown_function(self):
        with pytest.raises(InvalidProblemError):
            make_function("does_not_exist")

    def test_register_requires_name(self):
        with pytest.raises(ValueError, match="name"):

            @register
            class Unnamed(BenchmarkFunction):
                def evaluate(self, positions):
                    return np.zeros(positions.shape[0])

                def profile(self):
                    return EvalProfile(flops_per_elem=1.0)

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):

            @register
            class FakeSphere(BenchmarkFunction):
                name = "sphere"

                def evaluate(self, positions):
                    return np.zeros(positions.shape[0])

                def profile(self):
                    return EvalProfile(flops_per_elem=1.0)

    def test_zero_dim_input_rejected(self):
        with pytest.raises(InvalidProblemError):
            make_function("sphere").evaluate(np.zeros((3, 0)))
