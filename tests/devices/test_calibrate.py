"""Calibration harness: capture, fit determinism, and the paper regression.

The headline regression pins the fitted parameters AND the residuals of
``calibrate(PAPER_TARGETS)`` — the same fit committed in
``BENCH_devices.json``.  A cost-model change that silently un-fits the
paper's Table 1 wall times (fastpso 0.67 s, gpu-pso 4.90 s) fails here
before it reaches the benchmark.
"""

import pytest

from repro.devices import (
    PAPER_TARGETS,
    CalibrationTarget,
    calibrate,
    capture_workload,
    resolve_device,
)
from repro.errors import CalibrationError
from repro.gpusim.costmodel import DEFAULT_GPU_COST_PARAMS

# Small-but-real workload: cheap to capture, same kernel cadence as the
# paper's (costs depend only on shapes, so iters can stay tiny).
SMALL = CalibrationTarget(
    engine="fastpso", seconds=0.01, n_particles=64, dim=8, iters=20
)


class TestCalibrationTarget:
    def test_defaults_describe_the_paper_workload(self):
        target = CalibrationTarget(engine="fastpso", seconds=0.67)
        assert (target.n_particles, target.dim, target.iters) == (5000, 200, 1000)
        assert target.function == "sphere"

    def test_paper_targets_cover_both_pure_gpu_engines(self):
        assert tuple(t.engine for t in PAPER_TARGETS) == ("fastpso", "gpu-pso")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"seconds": 0.0},
            {"seconds": -1.0},
            {"n_particles": 0},
            {"dim": 0},
            {"iters": 1},
        ],
    )
    def test_validation(self, kwargs):
        base = {"engine": "fastpso", "seconds": 1.0}
        with pytest.raises(CalibrationError):
            CalibrationTarget(**{**base, **kwargs})


class TestCaptureWorkload:
    def test_capture_yields_launch_groups(self):
        captured = capture_workload(SMALL)
        assert captured.target is SMALL
        assert len(captured.groups) > 0
        for _spec, _config, n_elems, _per_iter, _fixed in captured.groups:
            assert n_elems >= 1
        # The fixed-cadence kernels that dominate the paper workload must be
        # captured with exactly one launch per iteration.  (Data-dependent
        # kernels like pbest_position_copy have noisier fits; that is fine —
        # they are a rounding error at paper scale.)
        per_iter_by_name = {}
        for kspec, _config, _n, per_iter, _fixed in captured.groups:
            per_iter_by_name.setdefault(kspec.name, 0.0)
            per_iter_by_name[kspec.name] += per_iter
        for name in (
            "swarm_velocity_update",
            "swarm_position_update",
            "pbest_update",
            "reduce_argmin_pass1",
        ):
            assert per_iter_by_name[name] == pytest.approx(1.0), name

    def test_capture_is_deterministic(self):
        assert capture_workload(SMALL) == capture_workload(SMALL)

    def test_predict_seconds_positive_and_device_sensitive(self):
        captured = capture_workload(SMALL)
        v100 = captured.predict_seconds(
            resolve_device("v100"), DEFAULT_GPU_COST_PARAMS
        )
        a100 = captured.predict_seconds(
            resolve_device("a100"), DEFAULT_GPU_COST_PARAMS
        )
        assert v100 > 0 and a100 > 0
        assert v100 != a100

    def test_sample_iters_validated(self):
        with pytest.raises(CalibrationError):
            capture_workload(SMALL, sample_iters=(6, 3))
        with pytest.raises(CalibrationError):
            capture_workload(SMALL, sample_iters=(0, 3))


class TestPaperRegression:
    """Pins the committed fit — update alongside any cost-model change."""

    @pytest.fixture(scope="class")
    def result(self):
        return calibrate(PAPER_TARGETS)

    def test_fit_reproduces_paper_within_tolerance(self, result):
        assert result.max_abs_rel_error <= 0.10

    def test_fitted_params_pinned(self, result):
        assert result.params.dram_peak_fraction == pytest.approx(0.0972)
        assert result.params.latency_hiding_half_occ == pytest.approx(0.0324)
        assert result.params.fp32_peak_fraction == pytest.approx(0.55)
        assert result.params.l2_peak_fraction == pytest.approx(0.55)

    def test_residuals_pinned(self, result):
        assert result.max_abs_rel_error == pytest.approx(0.0843, abs=5e-4)
        by_engine = {r["engine"]: r for r in result.residuals}
        assert by_engine["fastpso"]["rel_error"] == pytest.approx(-0.0843, abs=5e-4)
        assert by_engine["gpu-pso"]["rel_error"] == pytest.approx(0.0404, abs=5e-4)

    def test_search_is_deterministic(self, result):
        again = calibrate(PAPER_TARGETS)
        assert again.params == result.params
        assert again.objective == result.objective
        assert again.n_evaluations == result.n_evaluations == 97

    def test_report_surfaces(self, result):
        text = result.report_text()
        assert "fastpso" in text and "gpu-pso" in text
        payload = result.to_json_dict()
        assert payload["max_abs_rel_error"] == result.max_abs_rel_error
        assert set(payload["fitted_params"]) >= {
            "dram_peak_fraction",
            "l2_peak_fraction",
        }
