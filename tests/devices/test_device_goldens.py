"""Cross-device determinism: same trajectory bits, different simulated clocks.

The catalog's whole contract in one suite: a :class:`DeviceSpec` only
prices launches — kernel *semantics* never see it — so the seeded golden
workload (``tests/data/golden_fastpso.json``) must land on bit-identical
trajectories on every catalog entry, while the predicted wall times must
differ device to device (that difference is the what-if signal
``BENCH_devices.json`` reports).
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.parameters import PSOParams
from repro.core.problem import Problem
from repro.devices import device_names, resolve_device, use_device
from repro.engines import FastPSOEngine

GOLDEN_PATH = Path(__file__).parent.parent / "data" / "golden_fastpso.json"


@pytest.fixture(scope="module")
def golden():
    with GOLDEN_PATH.open() as fh:
        return json.load(fh)


def run_golden_workload(golden, device=None):
    problem = Problem.from_benchmark(
        golden["problem"]["function"], golden["problem"]["dim"]
    )
    engine = (
        FastPSOEngine() if device is None else FastPSOEngine(device=device)
    )
    return engine.optimize(
        problem,
        n_particles=golden["run"]["n_particles"],
        max_iter=golden["run"]["max_iter"],
        params=PSOParams(seed=golden["run"]["seed"]),
        record_history=True,
    )


@pytest.mark.parametrize("name", ["a100", "cpu-xeon", "h100", "laptop", "v100"])
class TestTrajectoriesPinnedAcrossDevices:
    def test_trajectory_matches_the_flat_v100_golden(self, golden, name):
        expected = golden["engines"]["global"]
        result = run_golden_workload(golden, device=resolve_device(name))
        assert result.history.gbest_values == expected["gbest_trajectory"]
        assert (
            result.history.mean_pbest_values
            == expected["mean_pbest_trajectory"]
        )
        assert result.best_value == expected["best_value"]
        np.testing.assert_array_equal(
            result.best_position, np.asarray(expected["best_position"])
        )


class TestClocksDiffer:
    def test_parametrization_covers_the_whole_catalog(self):
        assert device_names() == ("a100", "cpu-xeon", "h100", "laptop", "v100")

    def test_catalog_v100_prices_differently_from_the_flat_preset(self, golden):
        # Same silicon, but the catalog variant has the L1/L2 hierarchy
        # enabled — the golden's elapsed seconds were pinned on the flat
        # preset and must NOT be reproduced by the hierarchy-priced run.
        flat_elapsed = golden["engines"]["global"]["elapsed_seconds"]
        result = run_golden_workload(golden, device=resolve_device("v100"))
        assert result.elapsed_seconds != flat_elapsed

    def test_every_device_has_a_distinct_clock(self, golden):
        elapsed = {
            name: run_golden_workload(
                golden, device=resolve_device(name)
            ).elapsed_seconds
            for name in ("v100", "a100", "h100", "laptop")
        }
        assert len(set(elapsed.values())) == len(elapsed), elapsed

    def test_default_run_still_matches_the_golden_clock(self, golden):
        # No device argument, no ambient default: the historical flat-V100
        # timing contract is untouched.
        result = run_golden_workload(golden)
        expected = golden["engines"]["global"]
        assert result.elapsed_seconds == expected["elapsed_seconds"]
        assert result.setup_seconds == expected["setup_seconds"]


class TestAmbientDefaultEquivalence:
    def test_use_device_matches_the_explicit_spec(self, golden):
        explicit = run_golden_workload(golden, device=resolve_device("a100"))
        with use_device("a100"):
            ambient = run_golden_workload(golden)
        assert ambient.best_value == explicit.best_value
        assert (
            ambient.history.gbest_values == explicit.history.gbest_values
        )
        assert ambient.elapsed_seconds == explicit.elapsed_seconds
        assert ambient.setup_seconds == explicit.setup_seconds
