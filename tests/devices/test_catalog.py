"""Device-catalog contract: lookup surface, machine files, ambient default.

The catalog mirrors the other registries (engines, policies, functions):
case-insensitive names + aliases, did-you-mean on typos, a factory flavour
with overrides, and loader errors that always name the offending file.
Tests that mutate the live catalog or the ambient default go through
``_reset_catalog_for_tests`` so order never matters.
"""

import json

import pytest

from repro.devices import (
    CatalogEntry,
    MACHINES_DIR,
    device_entries,
    device_names,
    get_default_device,
    load_machine_file,
    make_device,
    register_machine_file,
    resolve_device,
    resolve_entry,
    set_default_device,
    use_device,
)
from repro.devices.catalog import PRESET_NAMES, _reset_catalog_for_tests
from repro.errors import ConfigurationError, UnknownDeviceError
from repro.gpusim.device import PRESETS, DeviceSpec


@pytest.fixture(autouse=True)
def fresh_catalog():
    """Every test starts (and leaves) with the pristine built-in catalog."""
    _reset_catalog_for_tests()
    yield
    _reset_catalog_for_tests()


def machine_payload(**overrides):
    """A minimal valid machine file body, clonable per test."""
    base = json.loads((MACHINES_DIR / "v100.json").read_text())
    base["name"] = "testdev"
    base["aliases"] = ["td"]
    base.update(overrides)
    return base


def write_machine(tmp_path, payload, filename="testdev.json"):
    path = tmp_path / filename
    path.write_text(json.dumps(payload))
    return path


class TestResolution:
    def test_canonical_names(self):
        assert device_names() == ("a100", "cpu-xeon", "h100", "laptop", "v100")

    def test_catalog_shadows_every_preset(self):
        # The historical in-code names must stay resolvable forever.
        for name in PRESET_NAMES:
            assert resolve_device(name) is not None
        assert set(PRESET_NAMES) == set(PRESETS)

    def test_resolve_by_alias_and_case(self):
        canonical = resolve_device("a100")
        assert resolve_device("tesla-a100") == canonical
        assert resolve_device("AMPERE") == canonical
        assert resolve_device("A100") == canonical

    def test_catalog_variants_carry_the_hierarchy(self):
        # The catalog entries are the hierarchy-enabled flavour; the in-code
        # presets stay flat so historical goldens hold.
        assert resolve_device("v100").has_memory_hierarchy
        assert not PRESETS["v100"]().has_memory_hierarchy

    def test_spec_passes_through(self):
        spec = PRESETS["v100"]()
        assert resolve_device(spec) is spec

    def test_unknown_name_did_you_mean(self):
        with pytest.raises(UnknownDeviceError, match="did you mean"):
            resolve_device("a10")
        with pytest.raises(UnknownDeviceError, match="v100"):
            resolve_device("v10")

    def test_unknown_device_error_is_a_value_error(self):
        # Callers that predate UnknownDeviceError catch ValueError.
        with pytest.raises(ValueError):
            resolve_device("not-a-device")

    def test_resolve_entry_metadata(self):
        entry = resolve_entry("hopper")
        assert entry.name == "h100"
        assert entry.kind == "gpu"
        assert entry.path is not None and entry.path.name == "h100.json"

    def test_entries_sorted_and_json_safe_rows(self):
        entries = device_entries()
        assert [e.name for e in entries] == sorted(e.name for e in entries)
        for entry in entries:
            row = entry.to_row()
            json.dumps(row)  # every value must serialise
            assert row["memory_hierarchy"] is True


class TestMakeDevice:
    def test_overrides_apply(self):
        spec = make_device("v100", sm_count=40)
        assert spec.sm_count == 40
        # Untouched fields come from the catalog entry.
        assert spec.l2_cache_bytes == resolve_device("v100").l2_cache_bytes

    def test_no_overrides_is_resolve(self):
        assert make_device("a100") == resolve_device("a100")

    def test_invalid_override_raises_configuration_error(self):
        with pytest.raises(ConfigurationError):
            make_device("v100", sm_count=0)

    def test_unknown_field_rejected(self):
        with pytest.raises((ConfigurationError, TypeError)):
            make_device("v100", smcount=40)


class TestMachineFileLoader:
    def test_roundtrip(self, tmp_path):
        path = write_machine(tmp_path, machine_payload())
        entry = load_machine_file(path)
        assert isinstance(entry, CatalogEntry)
        assert entry.name == "testdev"
        assert entry.aliases == ("td",)
        assert isinstance(entry.spec, DeviceSpec)
        assert entry.path == path

    def test_names_lowercased(self, tmp_path):
        path = write_machine(
            tmp_path, machine_payload(name="TestDev", aliases=["TD", "Dev2"])
        )
        entry = load_machine_file(path)
        assert entry.name == "testdev"
        assert entry.aliases == ("td", "dev2")

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read machine file"):
            load_machine_file(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="is not valid JSON"):
            load_machine_file(path)

    def test_non_object_top_level(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(ConfigurationError, match="must hold a JSON object"):
            load_machine_file(path)

    def test_schema_version_mismatch(self, tmp_path):
        path = write_machine(tmp_path, machine_payload(schema_version=2))
        with pytest.raises(ConfigurationError, match="schema_version=2"):
            load_machine_file(path)

    def test_missing_name(self, tmp_path):
        payload = machine_payload()
        del payload["name"]
        path = write_machine(tmp_path, payload)
        with pytest.raises(ConfigurationError, match="needs a 'name' string"):
            load_machine_file(path)

    def test_bad_kind(self, tmp_path):
        path = write_machine(tmp_path, machine_payload(kind="tpu"))
        with pytest.raises(ConfigurationError, match="kind must be"):
            load_machine_file(path)

    def test_missing_spec(self, tmp_path):
        payload = machine_payload()
        del payload["spec"]
        path = write_machine(tmp_path, payload)
        with pytest.raises(ConfigurationError, match="needs a 'spec' object"):
            load_machine_file(path)

    def test_unknown_spec_field_named(self, tmp_path):
        payload = machine_payload()
        payload["spec"]["smcount"] = 80
        path = write_machine(tmp_path, payload)
        with pytest.raises(
            ConfigurationError, match=r"unknown spec field\(s\) \['smcount'\]"
        ):
            load_machine_file(path)

    def test_invalid_spec_value_named(self, tmp_path):
        payload = machine_payload()
        payload["spec"]["sm_count"] = 0
        path = write_machine(tmp_path, payload)
        with pytest.raises(ConfigurationError, match="has an invalid spec"):
            load_machine_file(path)

    def test_bad_aliases(self, tmp_path):
        path = write_machine(tmp_path, machine_payload(aliases="td"))
        with pytest.raises(ConfigurationError, match="aliases must be a list"):
            load_machine_file(path)


class TestRegistration:
    def test_registered_entry_resolves_like_a_builtin(self, tmp_path):
        path = write_machine(tmp_path, machine_payload())
        entry = register_machine_file(path)
        assert entry.name == "testdev"
        assert resolve_device("testdev") == entry.spec
        assert resolve_device("TD") == entry.spec
        assert "testdev" in device_names()

    def test_duplicate_name_rejected(self, tmp_path):
        path = write_machine(tmp_path, machine_payload(name="a100"))
        with pytest.raises(ConfigurationError, match="already registered"):
            register_machine_file(path)

    def test_alias_collision_rejected(self, tmp_path):
        path = write_machine(tmp_path, machine_payload(aliases=["ampere"]))
        with pytest.raises(ConfigurationError, match="already registered"):
            register_machine_file(path)


class TestAmbientDefault:
    def test_unset_by_default(self):
        assert get_default_device() is None

    def test_set_returns_previous(self):
        assert set_default_device("a100") is None
        a100 = resolve_device("a100")
        assert get_default_device() == a100
        assert set_default_device(None) == a100
        assert get_default_device() is None

    def test_use_device_scopes_and_restores(self):
        with use_device("h100") as spec:
            assert spec == resolve_device("h100")
            assert get_default_device() == spec
        assert get_default_device() is None

    def test_use_device_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_device("a100"):
                raise RuntimeError("boom")
        assert get_default_device() is None

    def test_make_context_picks_up_the_default(self):
        from repro.gpusim import make_context

        with use_device("a100"):
            ctx = make_context()
        assert ctx.spec == resolve_device("a100")
        assert make_context().spec == PRESETS["v100"]()

    def test_explicit_spec_beats_the_default(self):
        from repro.gpusim import make_context

        laptop = resolve_device("laptop")
        with use_device("a100"):
            ctx = make_context(laptop)
        assert ctx.spec == laptop
