"""Shared experiment runner: problems and timing projection."""

import pytest

from repro.bench.runner import (
    PAPER_PROBLEMS,
    build_problem,
    timed_run,
)
from repro.engines import SequentialEngine
from repro.errors import BenchmarkError


class TestBuildProblem:
    def test_paper_problem_list(self):
        assert PAPER_PROBLEMS == ("sphere", "griewank", "easom", "threadconf")

    def test_benchmark_problem(self):
        p = build_problem("sphere", 16)
        assert p.name == "sphere" and p.dim == 16

    def test_threadconf_problem(self):
        p = build_problem("threadconf", 10)
        assert p.name == "threadconf" and p.dim == 10

    def test_threadconf_odd_dim_rounded_up(self):
        assert build_problem("threadconf", 9).dim == 10


class TestTimedRun:
    def test_projection_consistency(self, sphere10, small_params):
        """Projected time must equal an actual longer run's clock."""
        full = SequentialEngine().optimize(
            sphere10, n_particles=32, max_iter=40, params=small_params
        )
        tr = timed_run(
            SequentialEngine(),
            sphere10,
            n_particles=32,
            full_iters=40,
            sample_iters=8,
            params=small_params,
        )
        # The only data-dependent cost term is the pbest position-copy
        # traffic (improvement counts decay over a run), so projection from
        # a short sample is a slight over-estimate, never off by much.
        assert tr.projected_seconds == pytest.approx(
            full.elapsed_seconds, rel=0.2
        )
        assert tr.projected_seconds >= full.elapsed_seconds * 0.95

    def test_engine_by_name(self, sphere10):
        tr = timed_run(
            "fastpso-seq",
            sphere10,
            n_particles=16,
            full_iters=20,
            sample_iters=2,
        )
        assert tr.engine == "fastpso-seq"
        assert tr.problem == "sphere"

    def test_step_projection_scales_loop_steps(self, sphere10):
        tr = timed_run(
            "fastpso-seq",
            sphere10,
            n_particles=16,
            full_iters=100,
            sample_iters=2,
        )
        assert tr.projected_steps.swarm == pytest.approx(
            tr.result.step_times.swarm * 50, rel=1e-6
        )
        assert tr.projected_steps.init == tr.result.step_times.init

    def test_sample_bounds_validated(self, sphere10):
        with pytest.raises(BenchmarkError):
            timed_run(
                "fastpso-seq", sphere10, n_particles=4, full_iters=2,
                sample_iters=5,
            )
        with pytest.raises(BenchmarkError):
            timed_run(
                "fastpso-seq", sphere10, n_particles=4, full_iters=2,
                sample_iters=0,
            )
