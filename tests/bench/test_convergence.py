"""Convergence-study experiment (extension)."""

import pytest

from repro.bench.experiments import convergence
from repro.errors import BenchmarkError


@pytest.fixture(scope="module")
def result(tiny_scale):
    return convergence.run(tiny_scale)


class TestConvergence:
    def test_traces_cover_engines_and_iterations(self, result, tiny_scale):
        assert set(result.traces) == set(convergence.ENGINES)
        for trace in result.traces.values():
            assert len(trace) == tiny_scale.error_iters

    def test_traces_monotone_nonincreasing(self, result):
        for engine, trace in result.traces.items():
            assert all(
                b <= a + 1e-12 for a, b in zip(trace, trace[1:])
            ), engine

    def test_fastpso_ends_below_libraries(self, result):
        assert result.traces["fastpso"][-1] < result.traces["pyswarms"][-1]
        assert result.traces["fastpso"][-1] < result.traces["scikit-opt"][-1]

    def test_checkpoints_thin_the_trace(self, result):
        points = result.checkpoints("fastpso")
        assert len(points) == convergence.CHECKPOINT_COUNT
        assert points[0] == result.traces["fastpso"][0]
        assert points[-1] == result.traces["fastpso"][-1]

    def test_checkpoints_need_enough_iterations(self, result):
        import dataclasses

        short = dataclasses.replace(
            result, traces={"fastpso": [1.0, 0.5]}
        )
        with pytest.raises(BenchmarkError):
            short.checkpoints("fastpso")

    def test_plateau_fraction_in_unit_range(self, result):
        for engine in result.traces:
            frac = result.plateau_fraction(engine)
            assert 0.0 <= frac <= 1.0

    def test_renders_table_and_chart(self, result):
        text = result.to_text()
        assert "Convergence" in text
        assert "fastpso" in text
        assert "|" in text  # the ASCII chart axis
