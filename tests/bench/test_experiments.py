"""Every experiment driver runs end to end at a tiny scale and renders."""

import pytest

from repro.bench.experiments import (
    EXPERIMENTS,
    ablations,
    figure4,
    figure5,
    figure6,
    table1,
    table2,
    table3,
    table4,
    table5,
)
from repro.engines import ENGINE_NAMES


class TestRegistry:
    def test_all_paper_artefacts_covered(self):
        assert set(EXPERIMENTS) == {
            "table1",
            "table2",
            "table3",
            "table4",
            "table5",
            "figure4",
            "figure5",
            "figure6",
            "ablations",
            "convergence",
            "devices",
        }

    def test_every_module_has_run(self):
        for module in EXPERIMENTS.values():
            assert callable(module.run)


class TestTable1(object):
    @pytest.fixture(scope="class")
    def result(self, request):
        scale = request.getfixturevalue("tiny_scale")
        return table1.run(scale)

    def test_covers_all_engines_and_problems(self, result):
        assert len(result.rows) == 4
        for row in result.rows:
            assert set(row.seconds) == set(ENGINE_NAMES)

    def test_fastpso_wins_everywhere(self, result):
        for row in result.rows:
            assert all(
                row.speedup_over(e) > 1.0
                for e in ENGINE_NAMES
                if e != "fastpso"
            ), row.problem

    def test_renders(self, result):
        text = result.to_text()
        assert "Table 1" in text and "sphere" in text


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self, request):
        return table2.run(request.getfixturevalue("tiny_scale"))

    def test_library_errors_worse_on_sphere(self, result):
        assert (
            result.errors["pyswarms"]["sphere"]
            > result.errors["fastpso"]["sphere"]
        )

    def test_family_errors_identical(self, result):
        assert (
            result.errors["fastpso"]["sphere"]
            == result.errors["fastpso-seq"]["sphere"]
            == result.errors["gpu-pso"]["sphere"]
        )

    def test_renders(self, result):
        assert "Table 2" in result.to_text()


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self, request):
        return table3.run(request.getfixturevalue("tiny_scale"))

    def test_fastpso_highest_read_throughput(self, result):
        assert result.read_gbs["fastpso"] > result.read_gbs["gpu-pso"]
        assert result.read_gbs["fastpso"] > result.read_gbs["hgpu-pso"]

    def test_renders(self, result):
        assert "dram_read_throughput" in result.to_text()


class TestTable4:
    @pytest.fixture(scope="class")
    def result(self, request):
        return table4.run(request.getfixturevalue("tiny_scale"))

    def test_caching_faster_for_every_problem(self, result):
        for p in ("sphere", "griewank", "easom"):
            assert result.speedup_percent(p) > 0

    def test_renders(self, result):
        assert "caching" in result.to_text()


class TestTable5:
    @pytest.fixture(scope="class")
    def result(self, request):
        return table5.run(request.getfixturevalue("tiny_scale"))

    def test_all_datasets_present(self, result):
        assert set(result.results) == {"covtype", "susy", "higgs", "e2006"}

    def test_speedups_at_least_one(self, result):
        for res in result.results.values():
            assert res.speedup >= 1.0

    def test_renders(self, result):
        assert "ThunderGBM" in result.to_text()


class TestFigure4:
    @pytest.fixture(scope="class")
    def result(self, request):
        return figure4.run(request.getfixturevalue("tiny_scale"))

    def test_eight_series(self, result):
        assert len(result.series) == 8

    def test_get_accessor(self, result):
        series = result.get("sphere", "particles")
        assert series.points == (32, 64)
        with pytest.raises(KeyError):
            result.get("sphere", "banana")

    def test_renders(self, result):
        assert "Figure 4" in result.to_text()


class TestFigure5:
    @pytest.fixture(scope="class")
    def result(self, request):
        return figure5.run(request.getfixturevalue("tiny_scale"))

    def test_breakdowns_cover_engines(self, result):
        for engines in result.breakdowns.values():
            assert set(engines) == {"fastpso-seq", "fastpso-omp", "fastpso"}

    def test_cpu_swarm_fraction_dominant(self, result):
        assert result.swarm_fraction("sphere", "fastpso-seq") > 0.5

    def test_renders(self, result):
        assert "Figure 5" in result.to_text()


class TestFigure6:
    @pytest.fixture(scope="class")
    def result(self, request):
        return figure6.run(request.getfixturevalue("tiny_scale"))

    def test_all_techniques_present(self, result):
        for per_problem in result.swarm_seconds.values():
            assert set(per_problem) == set(figure6.TECHNIQUES)

    def test_gpu_beats_cpu_for_loop(self, result):
        for per_problem in result.swarm_seconds.values():
            assert per_problem["global-mem"] < per_problem["for-loop"]

    def test_renders(self, result):
        assert "swarm-update" in result.to_text()


class TestAblations:
    def test_runs_and_renders(self, tiny_scale):
        report = ablations.run(tiny_scale)
        text = report.to_text()
        tokens = ("mapping", "tile", "adaptive", "topology", "multi-GPU",
                  "variants")
        for token in tokens:
            assert token.lower() in text.lower()
        assert len(report.sections) == 6
