"""Engine x function grid suite runner."""

import pytest

from repro.bench.suite import SuiteGrid, run_suite
from repro.errors import BenchmarkError


@pytest.fixture(scope="module")
def grid():
    return run_suite(
        engines=("fastpso", "fastpso-seq"),
        functions=("sphere", "rastrigin", "rosenbrock"),
        dim=6,
        n_particles=24,
        max_iter=15,
    )


class TestRunSuite:
    def test_full_grid_populated(self, grid):
        assert len(grid.cells) == 6
        assert grid.engines == ["fastpso", "fastpso-seq"]
        assert grid.functions == ["sphere", "rastrigin", "rosenbrock"]

    def test_cell_lookup(self, grid):
        cell = grid.cell("fastpso", "sphere")
        assert cell.dim == 6
        assert cell.iterations == 15
        with pytest.raises(KeyError):
            grid.cell("fastpso", "ackley")

    def test_family_engines_agree_on_quality(self, grid):
        for fn in grid.functions:
            assert (
                grid.cell("fastpso", fn).best_value
                == grid.cell("fastpso-seq", fn).best_value
            )

    def test_defaults_cover_whole_registry(self):
        small = run_suite(
            engines=("fastpso",), dim=4, n_particles=8, max_iter=3
        )
        from repro.functions import available_functions

        assert set(small.functions) == set(available_functions())

    def test_dim_validated(self):
        with pytest.raises(BenchmarkError):
            run_suite(dim=1)


class TestExport:
    def test_csv(self, grid, tmp_path):
        path = grid.write_csv(tmp_path / "grid.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("engine,function,dim")
        assert len(lines) == 1 + len(grid.cells)

    def test_pivot_text(self, grid):
        text = grid.to_text("error")
        assert "sphere" in text and "fastpso" in text

    def test_pivot_validates_column(self, grid):
        with pytest.raises(BenchmarkError):
            grid.to_text("banana")

    def test_empty_grid(self):
        grid = SuiteGrid()
        assert grid.engines == [] and grid.functions == []
