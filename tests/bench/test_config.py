"""Benchmark scale presets and environment selection."""

import pytest

from repro.bench.config import (
    PAPER_SCALE,
    QUICK_SCALE,
    BenchScale,
    get_scale,
    scale_from_env,
)
from repro.errors import BenchmarkError


class TestScales:
    def test_paper_scale_matches_section_41(self):
        assert PAPER_SCALE.timing_particles == 5000
        assert PAPER_SCALE.timing_dim == 200
        assert PAPER_SCALE.timing_iters == 2000
        assert PAPER_SCALE.particle_sweep == (2000, 3000, 4000, 5000)
        assert PAPER_SCALE.dim_sweep == (50, 100, 150, 200)

    def test_quick_scale_reduces_error_workload(self):
        assert QUICK_SCALE.error_particles < PAPER_SCALE.error_particles
        assert QUICK_SCALE.error_iters < PAPER_SCALE.error_iters

    def test_quick_scale_keeps_timing_shapes(self):
        """Timing projection is exact, so quick keeps paper-sized shapes."""
        assert QUICK_SCALE.timing_particles == PAPER_SCALE.timing_particles
        assert QUICK_SCALE.timing_dim == PAPER_SCALE.timing_dim

    def test_get_scale(self):
        assert get_scale("paper") is PAPER_SCALE
        assert get_scale("QUICK") is QUICK_SCALE
        with pytest.raises(BenchmarkError):
            get_scale("huge")

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "paper")
        assert scale_from_env() is PAPER_SCALE
        monkeypatch.delenv("REPRO_BENCH_SCALE")
        assert scale_from_env() is QUICK_SCALE

    def test_validation(self):
        with pytest.raises(BenchmarkError):
            BenchScale(name="bad", sample_iters=0)
