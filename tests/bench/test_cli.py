"""CLI dispatch."""

import pytest

from repro.bench import cli


class TestCli:
    def test_single_experiment(self, capsys, monkeypatch, tiny_scale):
        monkeypatch.setattr(
            "repro.bench.cli.get_scale", lambda name: tiny_scale
        )
        assert cli.main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out and "regenerated" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["table99"])

    def test_scale_flag_parsed(self, capsys, monkeypatch, tiny_scale):
        seen = {}

        def fake_get_scale(name):
            seen["name"] = name
            return tiny_scale

        monkeypatch.setattr("repro.bench.cli.get_scale", fake_get_scale)
        cli.main(["table4", "--scale", "paper"])
        assert seen["name"] == "paper"

    def test_suite_command(self, capsys, monkeypatch, tiny_scale, tmp_path):
        monkeypatch.setattr(
            "repro.bench.cli.get_scale", lambda name: tiny_scale
        )
        csv_path = tmp_path / "grid.csv"
        assert cli.main(["suite", "--csv", str(csv_path)]) == 0
        out = capsys.readouterr().out
        assert "Suite grid" in out
        assert csv_path.exists()
        assert csv_path.read_text().startswith("engine,function")

    def test_all_runs_every_experiment(self, capsys, monkeypatch, tiny_scale):
        ran = []
        monkeypatch.setattr(
            "repro.bench.cli.get_scale", lambda name: tiny_scale
        )

        class FakeResult:
            def to_text(self):
                return "fake"

        from repro.bench.experiments import EXPERIMENTS

        fakes = {}
        for name in EXPERIMENTS:
            class FakeModule:
                def __init__(self, n):
                    self.n = n

                def run(self, scale):
                    ran.append(self.n)
                    return FakeResult()

            fakes[name] = FakeModule(name)
        monkeypatch.setattr("repro.bench.cli.EXPERIMENTS", fakes)
        cli.main(["all"])
        assert set(ran) == set(fakes)
