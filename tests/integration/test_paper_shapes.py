"""End-to-end assertions of the paper's headline result *shapes*.

These are the claims EXPERIMENTS.md reports against; they run at a reduced
but GPU-meaningful scale (paper-sized matrix shapes for timing, scaled
workloads for errors).  Absolute numbers are simulator outputs; the
assertions encode who-wins-by-what-factor bands, not exact values.
"""

import pytest

from repro.bench.config import BenchScale
from repro.bench.runner import build_problem, timed_run
from repro.core.problem import Problem
from repro.engines import ENGINE_NAMES, make_engine

#: Paper-shape scale: real Table 1 shapes, two sampled iterations.
SCALE = BenchScale(
    name="shape",
    timing_particles=5000,
    timing_dim=200,
    timing_iters=2000,
    sample_iters=2,
    error_particles=400,
    error_dim=50,
    error_iters=250,
)


@pytest.fixture(scope="module")
def table1_sphere():
    problem = build_problem("sphere", SCALE.timing_dim)
    return {
        engine: timed_run(
            engine,
            problem,
            n_particles=SCALE.timing_particles,
            full_iters=SCALE.timing_iters,
            sample_iters=SCALE.sample_iters,
        ).projected_seconds
        for engine in ENGINE_NAMES
    }


class TestTable1Bands:
    def test_fastpso_two_orders_over_cpu_libraries(self, table1_sphere):
        t = table1_sphere
        assert t["pyswarms"] / t["fastpso"] > 100
        assert t["scikit-opt"] / t["fastpso"] > 100

    def test_fastpso_5_to_10x_over_gpu_baselines(self, table1_sphere):
        t = table1_sphere
        assert 4 < t["gpu-pso"] / t["fastpso"] < 12
        assert 5 < t["hgpu-pso"] / t["fastpso"] < 15

    def test_fastpso_order_of_magnitude_over_cpu_ports(self, table1_sphere):
        t = table1_sphere
        assert t["fastpso-seq"] / t["fastpso"] > 10
        assert t["fastpso-omp"] / t["fastpso"] > 8

    def test_openmp_modest_gain_over_sequential(self, table1_sphere):
        t = table1_sphere
        assert 1.1 < t["fastpso-seq"] / t["fastpso-omp"] < 3.0

    def test_hetero_slower_than_pure_gpu(self, table1_sphere):
        assert table1_sphere["hgpu-pso"] > table1_sphere["gpu-pso"]

    def test_absolute_times_near_paper(self, table1_sphere):
        """Sphere column of Table 1, generous bands around the paper."""
        t = table1_sphere
        assert 0.3 < t["fastpso"] < 1.5  # paper 0.67
        assert 2.5 < t["gpu-pso"] < 10.0  # paper 4.90
        assert 6.0 < t["fastpso-seq"] < 25.0  # paper 11.56
        assert 60.0 < t["pyswarms"] < 260.0  # paper 129.67


class TestTable2Bands:
    @pytest.fixture(scope="class")
    def errors(self):
        out = {}
        for engine in ("pyswarms", "scikit-opt", "fastpso", "gpu-pso"):
            problem = Problem.from_benchmark("sphere", SCALE.error_dim)
            r = make_engine(engine).optimize(
                problem,
                n_particles=SCALE.error_particles,
                max_iter=SCALE.error_iters,
            )
            out[engine] = r.error
        return out

    def test_libraries_orders_of_magnitude_worse(self, errors):
        assert errors["pyswarms"] > 10 * errors["fastpso"]
        assert errors["scikit-opt"] > 10 * errors["fastpso"]

    def test_gpu_baseline_matches_fastpso_quality(self, errors):
        assert errors["gpu-pso"] == pytest.approx(errors["fastpso"], rel=0.5)


class TestFigure4Bands:
    def test_fastpso_flat_in_particles_cpu_grows(self):
        problem = build_problem("sphere", 50)
        ratios = {}
        for engine in ("fastpso", "fastpso-seq"):
            t_small = timed_run(
                engine, problem, n_particles=2000, full_iters=2000,
                sample_iters=2,
            ).projected_seconds
            t_big = timed_run(
                engine, problem, n_particles=5000, full_iters=2000,
                sample_iters=2,
            ).projected_seconds
            ratios[engine] = t_big / t_small
        assert ratios["fastpso"] < 1.8  # near flat
        assert ratios["fastpso-seq"] > 2.0  # ~linear in 2.5x particles

    def test_fastpso_flat_in_dimensions_cpu_grows(self):
        ratios = {}
        for engine in ("fastpso", "fastpso-seq"):
            t = {}
            for d in (50, 200):
                problem = build_problem("sphere", d)
                t[d] = timed_run(
                    engine, problem, n_particles=2000, full_iters=2000,
                    sample_iters=2,
                ).projected_seconds
            ratios[engine] = t[200] / t[50]
        assert ratios["fastpso"] < 2.5
        assert ratios["fastpso-seq"] > 3.0  # ~linear in 4x dimensions


class TestFigure5Bands:
    def test_cpu_time_dominated_by_swarm_update(self):
        problem = build_problem("sphere", SCALE.timing_dim)
        tr = timed_run(
            "fastpso-seq", problem, n_particles=SCALE.timing_particles,
            full_iters=SCALE.timing_iters, sample_iters=2,
        )
        steps = tr.projected_steps
        assert steps.swarm / steps.total > 0.8

    def test_fastpso_swarm_update_far_below_cpu(self):
        problem = build_problem("sphere", SCALE.timing_dim)
        gpu = timed_run(
            "fastpso", problem, n_particles=SCALE.timing_particles,
            full_iters=SCALE.timing_iters, sample_iters=2,
        ).projected_steps.swarm
        cpu = timed_run(
            "fastpso-seq", problem, n_particles=SCALE.timing_particles,
            full_iters=SCALE.timing_iters, sample_iters=2,
        ).projected_steps.swarm
        assert cpu / gpu > 15
        assert cpu > 5.0  # paper: >10 s for the sequential port


class TestTable3Bands:
    def test_fastpso_doubles_baseline_read_throughput(self):
        problem = build_problem("sphere", SCALE.timing_dim)
        throughput = {}
        for engine_name in ("gpu-pso", "fastpso"):
            engine = make_engine(engine_name)
            engine.optimize(
                problem, n_particles=SCALE.timing_particles, max_iter=2
            )
            throughput[engine_name] = (
                engine.profile_report().dram_read_throughput_gbs
            )
        assert throughput["fastpso"] > 1.6 * throughput["gpu-pso"]
        assert 80 < throughput["fastpso"] < 160  # paper: 106.94 GB/s


class TestTable4Bands:
    def test_caching_gain_in_paper_band(self):
        from repro.engines import FastPSOEngine

        problem = build_problem("sphere", SCALE.timing_dim)
        t = {}
        for caching in (True, False):
            t[caching] = timed_run(
                FastPSOEngine(caching=caching), problem,
                n_particles=SCALE.timing_particles,
                full_iters=SCALE.timing_iters, sample_iters=2,
            ).projected_seconds
        gain = 100.0 * (t[False] / t[True] - 1.0)
        assert 2.0 < gain < 9.0  # paper: 3.7-5.1 %
