"""Golden-run regression: trajectories AND simulated times are pinned.

The host fast path (memoized launch/cost pipeline, aggregated profiling,
workspace arena, trimmed Philox) must not move a single bit of either the
optimization trajectory or the *simulated* clock.  This test compares a
seeded FastPSO run on every backend — and with the fused update — against
values captured before the fast path landed (``tests/data/golden_fastpso.json``).

Exact ``==`` everywhere: any ulp drift in gbest values, elapsed seconds or
the per-step breakdown is a regression, not noise.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.parameters import PSOParams
from repro.core.problem import Problem
from repro.engines import FastPSOEngine

GOLDEN_PATH = Path(__file__).parent.parent / "data" / "golden_fastpso.json"


@pytest.fixture(scope="module")
def golden():
    with GOLDEN_PATH.open() as fh:
        return json.load(fh)


def _run(golden, key):
    problem = Problem.from_benchmark(
        golden["problem"]["function"], golden["problem"]["dim"]
    )
    if key == "global-fused":
        engine = FastPSOEngine(fuse_update=True)
    elif key == "global-fp16":
        engine = FastPSOEngine(half_storage=True)
    else:
        engine = FastPSOEngine(backend=key)
    return engine.optimize(
        problem,
        n_particles=golden["run"]["n_particles"],
        max_iter=golden["run"]["max_iter"],
        params=PSOParams(seed=golden["run"]["seed"]),
        record_history=True,
    )


@pytest.mark.parametrize(
    "key", ["global", "shared", "tensorcore", "global-fused", "global-fp16"]
)
class TestGoldenRun:
    def test_trajectory_bit_identical(self, golden, key):
        expected = golden["engines"][key]
        result = _run(golden, key)
        assert result.history.gbest_values == expected["gbest_trajectory"]
        assert (
            result.history.mean_pbest_values
            == expected["mean_pbest_trajectory"]
        )
        assert result.best_value == expected["best_value"]
        np.testing.assert_array_equal(
            result.best_position, np.asarray(expected["best_position"])
        )

    def test_simulated_times_bit_identical(self, golden, key):
        expected = golden["engines"][key]
        result = _run(golden, key)
        assert result.elapsed_seconds == expected["elapsed_seconds"]
        assert result.setup_seconds == expected["setup_seconds"]
        for step, seconds in expected["step_times"].items():
            assert getattr(result.step_times, step) == seconds, step
