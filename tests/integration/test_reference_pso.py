"""Oracle test: an independent, loop-based textbook PSO.

The vectorised numerics in :mod:`repro.core.swarm` are re-implemented here
with explicit per-particle / per-dimension Python loops, straight from the
paper's Equations (1), (2) and (5) and Algorithm 1's control flow.  The
engines must match this oracle's trajectory *exactly* — any broadcasting,
ordering or in-place-aliasing mistake in the fast path shows up as a
mismatch against this deliberately slow reference.
"""

import numpy as np
import pytest

from repro.core.parameters import PSOParams
from repro.core.problem import Problem
from repro.core.swarm import INIT_VELOCITY_FRACTION
from repro.engines import FastPSOEngine, SequentialEngine
from repro.gpusim.rng import ParallelRNG


def reference_pso(problem, n, max_iter, params):
    """Textbook PSO with explicit loops; mirrors the engines' RNG order."""
    rng = ParallelRNG(params.seed)
    d = problem.dim
    lo = problem.lower_bounds.astype(np.float32)
    width = problem.domain_width.astype(np.float32)

    # init draws: positions then velocities, row-major, same dtype path
    unit_p = rng.uniform((n, d), 0.0, 1.0, dtype=np.float32)
    positions = lo + unit_p * width
    unit_v = rng.uniform((n, d), -1.0, 1.0, dtype=np.float32)
    velocities = (np.float32(INIT_VELOCITY_FRACTION) * width) * unit_v

    pbest_val = np.full(n, np.inf)
    pbest_pos = positions.copy()
    gbest_val = np.inf
    gbest_pos = np.zeros(d, dtype=np.float32)

    w = np.float32(params.inertia)
    c1 = np.float32(params.cognitive)
    c2 = np.float32(params.social)
    base_bound = (params.velocity_clamp * problem.domain_width).astype(
        np.float64
    )

    for t in range(max_iter):
        # evaluation + best updates (Algorithm 1 lines 5-13)
        values = problem.evaluator.evaluate(positions)
        for i in range(n):
            if values[i] < pbest_val[i]:
                pbest_val[i] = values[i]
                pbest_pos[i] = positions[i]
        idx = int(np.argmin(pbest_val))
        if pbest_val[idx] < gbest_val:
            gbest_val = float(pbest_val[idx])
            gbest_pos = pbest_pos[idx].copy()

        # adaptive Eq. (5) bound at this progress
        progress = t / max(1, max_iter - 1)
        frac = 1.0 - (1.0 - params.final_velocity_fraction) * progress
        bound = (base_bound * frac).astype(np.float32)

        # weight matrices: L then G, full matrices (the engines' order)
        l_mat = rng.uniform((n, d), 0.0, 1.0, dtype=np.float32)
        g_mat = rng.uniform((n, d), 0.0, 1.0, dtype=np.float32)

        # Eq. (1)/(5)/(2), element by element, float32 arithmetic
        for i in range(n):
            for j in range(d):
                v = (
                    w * velocities[i, j]
                    + c1 * (l_mat[i, j] * (pbest_pos[i, j] - positions[i, j]))
                    + c2 * (g_mat[i, j] * (gbest_pos[j] - positions[i, j]))
                )
                v = np.float32(v)
                if v < -bound[j]:
                    v = -bound[j]
                elif v > bound[j]:
                    v = bound[j]
                velocities[i, j] = v
                positions[i, j] = np.float32(positions[i, j] + v)

    return gbest_val, gbest_pos


@pytest.mark.parametrize("function,dim", [("sphere", 5), ("rastrigin", 3)])
def test_engines_match_loop_reference(function, dim):
    problem = Problem.from_benchmark(function, dim)
    params = PSOParams(seed=2718)
    n, iters = 12, 15

    ref_val, ref_pos = reference_pso(problem, n, iters, params)

    for engine in (SequentialEngine(), FastPSOEngine()):
        result = engine.optimize(
            problem, n_particles=n, max_iter=iters, params=params
        )
        assert result.best_value == ref_val, engine.name
        np.testing.assert_array_equal(
            result.best_position.astype(np.float32), ref_pos
        )


def test_reference_matches_without_clamping():
    problem = Problem.from_benchmark("sphere", 4)
    params = PSOParams(seed=7, velocity_clamp=None)

    # Reference without clamping: strip the bound logic by making it huge.
    class NoClampParams:
        seed = params.seed
        inertia = params.inertia
        cognitive = params.cognitive
        social = params.social
        velocity_clamp = 1e30
        final_velocity_fraction = 1.0

    ref_val, _ = reference_pso(problem, 8, 10, NoClampParams)
    result = SequentialEngine().optimize(
        problem, n_particles=8, max_iter=10, params=params
    )
    assert result.best_value == pytest.approx(ref_val, rel=1e-6)
