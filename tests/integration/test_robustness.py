"""Robustness sweeps: the optimizer must stay finite and sane across the
whole legal parameter space and under composed function transforms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parameters import PSOParams
from repro.core.problem import Problem
from repro.engines import FastPSOEngine
from repro.functions import Sphere, make_function
from repro.functions.transforms import Rotated, Shifted, random_rotation


@given(
    inertia=st.floats(0.0, 2.0),
    cognitive=st.floats(0.0, 4.0),
    social=st.floats(0.1, 4.0),
    clamp=st.one_of(st.none(), st.floats(0.05, 2.0)),
    seed=st.integers(0, 2**32 - 1),
)
@settings(max_examples=25, deadline=None)
def test_any_legal_parameters_yield_finite_results(
    inertia, cognitive, social, clamp, seed
):
    params = PSOParams(
        inertia=inertia,
        cognitive=cognitive,
        social=social,
        velocity_clamp=clamp,
        seed=seed,
    )
    problem = Problem.from_benchmark("sphere", 6)
    result = FastPSOEngine().optimize(
        problem, n_particles=16, max_iter=15, params=params
    )
    assert np.isfinite(result.best_value)
    assert result.best_value >= 0.0  # sphere is non-negative
    assert np.all(np.isfinite(result.best_position))


@given(
    topology=st.sampled_from(["global", "ring"]),
    init=st.sampled_from(["uniform", "opposition", "center"]),
    seed=st.integers(0, 1000),
)
@settings(max_examples=15, deadline=None)
def test_strategy_combinations(topology, init, seed):
    params = PSOParams(seed=seed, topology=topology, init_strategy=init)
    problem = Problem.from_benchmark("rastrigin", 5)
    result = FastPSOEngine().optimize(
        problem, n_particles=20, max_iter=20, params=params
    )
    assert np.isfinite(result.best_value)


class TestTransformComposition:
    def test_shift_of_rotation(self, rng_np):
        q = random_rotation(4, seed=5)
        offset = np.array([0.5, -0.5, 1.0, 0.0])
        fn = Shifted(Rotated(Sphere(), q), offset)
        x_star = fn.true_minimum_position(4)
        assert fn.evaluate(x_star[np.newaxis, :])[0] == pytest.approx(
            0.0, abs=1e-9
        )

    def test_rotation_of_shift(self):
        q = random_rotation(3, seed=6)
        fn = Rotated(Shifted(Sphere(), np.ones(3)), q)
        x_star = fn.true_minimum_position(3)
        assert fn.evaluate(x_star[np.newaxis, :])[0] == pytest.approx(
            0.0, abs=1e-9
        )

    def test_double_shift_adds_offsets(self):
        fn = Shifted(Shifted(Sphere(), np.ones(2)), np.full(2, 2.0))
        np.testing.assert_allclose(fn.true_minimum_position(2), 3.0)

    def test_optimizer_solves_composed_problem(self):
        q = random_rotation(5, seed=7)
        fn = Shifted(Rotated(make_function("sphere"), q), np.full(5, 1.5))
        problem = Problem.from_benchmark(fn, 5)
        result = FastPSOEngine().optimize(
            problem, n_particles=128, max_iter=200, params=PSOParams(seed=3)
        )
        assert result.best_value < 1.0
