"""Device-memory lifecycle across repeated engine use.

The caching allocator must make steady-state iterations driver-free without
leaking: repeated runs on one engine reuse the pool, memory in use returns
to zero after every run, and the pool's footprint stays bounded by the
largest problem seen — the properties that make the paper's "allocate once,
reuse forever" claim safe in a long-lived process.
"""

import numpy as np
import pytest

from repro.core.parameters import PSOParams
from repro.core.problem import Problem
from repro.engines import FastPSOEngine, GpuParticleEngine


@pytest.fixture
def params():
    return PSOParams(seed=5)


class TestRepeatedRuns:
    def test_no_leak_across_runs(self, params):
        """After each run everything in use is pooled (reusable), not live."""
        problem = Problem.from_benchmark("sphere", 32)
        engine = FastPSOEngine()
        for _ in range(5):
            engine.optimize(problem, n_particles=64, max_iter=5, params=params)
            assert engine.ctx.allocator.live_buffers == 0
            # reserved bytes == pool contents: the device holds only
            # reusable blocks, nothing orphaned.
            assert (
                engine.ctx.memory.used_bytes
                == engine.ctx.allocator.pooled_bytes
            )

    def test_pool_reused_not_regrown(self, params):
        problem = Problem.from_benchmark("sphere", 32)
        engine = FastPSOEngine()
        engine.optimize(problem, n_particles=64, max_iter=5, params=params)
        pooled_after_first = engine.ctx.allocator.pooled_bytes
        for _ in range(3):
            engine.optimize(problem, n_particles=64, max_iter=5, params=params)
        assert engine.ctx.allocator.pooled_bytes == pooled_after_first

    def test_pool_grows_only_for_bigger_problems(self, params):
        engine = FastPSOEngine()
        small = Problem.from_benchmark("sphere", 16)
        engine.optimize(small, n_particles=32, max_iter=3, params=params)
        pooled_small = engine.ctx.allocator.pooled_bytes
        big = Problem.from_benchmark("sphere", 64)
        engine.optimize(big, n_particles=256, max_iter=3, params=params)
        pooled_big = engine.ctx.allocator.pooled_bytes
        assert pooled_big > pooled_small
        # running the small problem again must not grow the pool further
        engine.optimize(small, n_particles=32, max_iter=3, params=params)
        assert engine.ctx.allocator.pooled_bytes == pooled_big

    def test_steady_state_hit_rate_approaches_one(self, params):
        problem = Problem.from_benchmark("sphere", 32)
        engine = FastPSOEngine()
        engine.optimize(problem, n_particles=64, max_iter=50, params=params)
        assert engine.ctx.allocator.stats.hit_rate > 0.9

    def test_direct_allocator_never_pools(self, params):
        problem = Problem.from_benchmark("sphere", 32)
        engine = FastPSOEngine(caching=False)
        engine.optimize(problem, n_particles=64, max_iter=10, params=params)
        stats = engine.ctx.allocator.stats
        assert stats.pool_hits == 0
        assert stats.allocs == stats.frees

    def test_gpu_baseline_cleans_up_too(self, params):
        problem = Problem.from_benchmark("sphere", 32)
        engine = GpuParticleEngine()
        engine.optimize(problem, n_particles=64, max_iter=3, params=params)
        # Its 5 persistent buffers are reallocated per run, freed at the
        # next run's start; nothing else may linger.
        assert engine.ctx.allocator.live_buffers == 5

    def test_high_water_reflects_peak_not_current(self, params):
        problem = Problem.from_benchmark("sphere", 64)
        engine = FastPSOEngine(caching=False)
        engine.optimize(problem, n_particles=256, max_iter=3, params=params)
        assert engine.ctx.memory.used_bytes == 0
        assert engine.ctx.memory.high_water_bytes > 0


class TestNumericalStabilityOverRuns:
    def test_results_independent_of_run_order(self, params):
        """Pool reuse must never leak data between runs."""
        problem_a = Problem.from_benchmark("sphere", 16)
        problem_b = Problem.from_benchmark("griewank", 16)
        fresh = FastPSOEngine().optimize(
            problem_b, n_particles=32, max_iter=10, params=params
        )
        reused_engine = FastPSOEngine()
        reused_engine.optimize(
            problem_a, n_particles=32, max_iter=10, params=params
        )
        reused = reused_engine.optimize(
            problem_b, n_particles=32, max_iter=10, params=params
        )
        assert reused.best_value == fresh.best_value
        np.testing.assert_array_equal(
            reused.best_position, fresh.best_position
        )
