"""Batch determinism: scheduling never changes what a job computes.

The batch layer's headline guarantee (see ``repro/batch/scheduler.py``) is
that each job in a batch is *bit-identical* to a solo ``engine.optimize``
run of the same spec — same Philox draws, same trajectory, same simulated
solo runtime — no matter which policy packed it or what ran beside it.
These tests run the 16-job mixed workload solo once, then as a batch under
both policies, and compare everything exactly (no tolerances).
"""

import numpy as np
import pytest

from repro.batch import BatchScheduler, Job, mixed_workload
from repro.batch.scheduler import POLICIES
from repro.engines import make_engine

N_JOBS = 16


@pytest.fixture(scope="module")
def jobs():
    return [j.with_overrides(record_history=True) for j in mixed_workload(N_JOBS)]


@pytest.fixture(scope="module")
def solo_results(jobs):
    results = []
    for job in jobs:
        engine = make_engine(job.engine, **dict(job.engine_options))
        results.append(
            engine.optimize(
                job.resolved_problem(),
                n_particles=job.n_particles,
                max_iter=job.max_iter,
                params=job.resolved_params,
                record_history=True,
            )
        )
    return results


@pytest.fixture(scope="module", params=POLICIES)
def batch(request, jobs):
    return BatchScheduler(streams_per_device=4, policy=request.param).run(jobs)


class TestBitIdenticalToSolo:
    def test_best_values_exact(self, batch, solo_results):
        for o, solo in zip(batch.outcomes, solo_results):
            assert o.result.best_value == solo.best_value
            assert o.result.error == solo.error

    def test_best_positions_exact(self, batch, solo_results):
        for o, solo in zip(batch.outcomes, solo_results):
            np.testing.assert_array_equal(
                o.result.best_position, solo.best_position
            )

    def test_trajectories_exact(self, batch, solo_results):
        for o, solo in zip(batch.outcomes, solo_results):
            assert o.result.history is not None
            assert o.result.history.gbest_values == solo.history.gbest_values
            assert (
                o.result.history.mean_pbest_values
                == solo.history.mean_pbest_values
            )

    def test_solo_timings_exact(self, batch, solo_results):
        """The replayed stream segment is exactly the solo simulated time.

        Under ``policy="fused"`` a group shares one lane segment shorter
        than the sum of its members' solo times (that's the point), but
        every member's *own* simulated time stays exact, and the shared
        segment still fits each member.
        """
        for o, solo in zip(batch.outcomes, solo_results):
            assert o.result.elapsed_seconds == solo.elapsed_seconds
            if batch.policy == "fused":
                lane = o.end_seconds - o.start_seconds
                assert lane >= solo.elapsed_seconds
            else:
                assert o.end_seconds == o.start_seconds + solo.elapsed_seconds


class TestOverlap:
    def test_makespan_beats_serial(self, batch):
        """Streams genuinely overlap: the batch finishes well before a
        one-job-at-a-time run would."""
        assert batch.makespan_seconds < batch.sum_solo_seconds
        assert batch.speedup > 1.5

    def test_every_lane_within_fleet(self, batch):
        for o in batch.outcomes:
            assert 0 <= o.device_index < batch.n_devices
            assert 0 <= o.stream_index < batch.streams_per_device


class TestPolicyIndependence:
    def test_policies_agree_on_numerics(self, jobs, solo_results):
        """Different packing orders, same numbers — only placement differs."""
        fifo = BatchScheduler(streams_per_device=2, policy="fifo").run(jobs)
        packed = BatchScheduler(streams_per_device=2, policy="packed").run(jobs)
        for a, b in zip(fifo.outcomes, packed.outcomes):
            assert a.result.best_value == b.result.best_value
            assert a.result.history.gbest_values == b.result.history.gbest_values
        assert packed.makespan_seconds <= fifo.makespan_seconds * 1.05

    def test_facade_matches_scheduler(self, jobs):
        """FastPSO.minimize_batch is sugar over BatchScheduler.run."""
        from repro import FastPSO

        subset = [
            Job(
                j.problem,
                dim=j.dim,
                n_particles=j.n_particles,
                max_iter=j.max_iter,
                engine=j.engine,
                params=j.params,
                engine_options=j.engine_options,
            )
            for j in jobs[:4]
            if j.engine == "fastpso"
        ]
        assert subset  # the mixed workload always includes fastpso jobs
        direct = BatchScheduler(streams_per_device=2).run(subset)
        facade = FastPSO().minimize_batch(subset, streams_per_device=2)
        for a, b in zip(direct.outcomes, facade.outcomes):
            assert a.result.best_value == b.result.best_value
            assert a.end_seconds == b.end_seconds
