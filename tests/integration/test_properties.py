"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.parameters import PSOParams
from repro.core.problem import Problem
from repro.core.swarm import SwarmState, pbest_update, velocity_update
from repro.core.topology import ring_best_indices
from repro.gpusim.alloc import size_class
from repro.gpusim.clock import SimClock
from repro.gpusim.costmodel import kernel_cost
from repro.gpusim.kernel import KernelSpec, LaunchConfig
from repro.gpusim.launch import Launcher, resource_aware_config
from repro.gpusim.reduction import ParallelReducer
from repro.gpusim.rng import ParallelRNG, philox4x32
from repro.gpusim.sharedmem import apply_tiled
from repro.gpusim.device import tesla_v100

_V100 = tesla_v100()


# ---------------------------------------------------------------------------
# Philox / RNG
# ---------------------------------------------------------------------------


@given(
    ctr=hnp.arrays(np.uint32, (5, 4)),
    key=hnp.arrays(np.uint32, (2,)),
)
def test_philox_is_deterministic_bijection_input(ctr, key):
    a = philox4x32(ctr, key)
    b = philox4x32(ctr, key)
    np.testing.assert_array_equal(a, b)
    assert a.dtype == np.uint32 and a.shape == ctr.shape


@given(seed=st.integers(0, 2**64 - 1), blocks=st.lists(st.integers(0, 20), max_size=6))
def test_rng_stream_prefix_stability(seed, blocks):
    """Block-aligned chunking never changes the stream.

    The generator consumes whole 4-word Philox blocks, so draws that are
    multiples of 4 compose exactly (the engines always draw whole matrices
    padded to blocks, so this is the contract they rely on).
    """
    counts = [4 * b for b in blocks]
    whole = ParallelRNG(seed).random_uint32(sum(counts))
    rng = ParallelRNG(seed)
    parts = (
        np.concatenate([rng.random_uint32(c) for c in counts])
        if counts
        else np.empty(0, np.uint32)
    )
    np.testing.assert_array_equal(whole, parts)


@given(
    seed=st.integers(0, 2**32),
    lo=st.floats(-100, 100),
    width=st.floats(1e-6, 100),
    n=st.integers(1, 500),
)
def test_uniform_respects_range(seed, lo, width, n):
    u = ParallelRNG(seed).uniform((n,), lo, lo + width, dtype=np.float64)
    assert np.all(u >= lo)
    assert np.all(u < lo + width + 1e-9)


# ---------------------------------------------------------------------------
# Allocator
# ---------------------------------------------------------------------------


@given(n=st.integers(0, 2**30))
def test_size_class_properties(n):
    c = size_class(n)
    assert c >= max(n, 256)
    assert c & (c - 1) == 0  # power of two
    assert c < 2 * max(n, 256)  # never wastes more than 2x


# ---------------------------------------------------------------------------
# Reduction
# ---------------------------------------------------------------------------


@given(
    values=hnp.arrays(
        np.float64,
        st.integers(1, 2000),
        elements=st.floats(allow_nan=False, width=32),
    )
)
@settings(max_examples=40, deadline=None)
def test_parallel_reduction_equals_argmin(values):
    reducer = ParallelReducer(Launcher(spec=_V100, clock=SimClock()))
    idx, val = reducer.argmin(values)
    assert idx == int(np.argmin(values))
    assert val == float(values[idx])


# ---------------------------------------------------------------------------
# Tiling
# ---------------------------------------------------------------------------


@given(
    rows=st.integers(1, 80),
    cols=st.integers(1, 80),
    tile=st.integers(1, 40),
    seed=st.integers(0, 1000),
)
@settings(max_examples=30, deadline=None)
def test_tiled_apply_equals_unfused(rows, cols, tile, seed):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(rows, cols)).astype(np.float32)
    b = rng.normal(size=(rows, cols)).astype(np.float32)
    out = np.empty_like(a)
    apply_tiled(out, lambda x, y: x * y + 1.0, a, b, tile_size=tile)
    np.testing.assert_array_equal(out, a * b + 1.0)


# ---------------------------------------------------------------------------
# Swarm numerics
# ---------------------------------------------------------------------------


@given(
    seed=st.integers(0, 1000),
    n=st.integers(1, 64),
    d=st.integers(1, 16),
    clamp=st.floats(0.01, 2.0),
)
@settings(max_examples=40, deadline=None)
def test_velocity_clamp_invariant(seed, n, d, clamp):
    """Clamped velocities never exceed the bounds, whatever the inputs."""
    rng = np.random.default_rng(seed)
    params = PSOParams(seed=0)
    v = rng.normal(scale=1e6, size=(n, d)).astype(np.float32)
    p = rng.normal(size=(n, d)).astype(np.float32)
    pb = rng.normal(size=(n, d)).astype(np.float32)
    g = rng.normal(size=d).astype(np.float32)
    l_w = rng.uniform(size=(n, d)).astype(np.float32)
    g_w = rng.uniform(size=(n, d)).astype(np.float32)
    bound = np.full(d, clamp)
    out = velocity_update(v, p, pb, g, l_w, g_w, params, (-bound, bound))
    assert np.all(out <= bound.astype(np.float32) + 1e-6)
    assert np.all(out >= -bound.astype(np.float32) - 1e-6)


@given(
    seed=st.integers(0, 1000),
    n=st.integers(1, 64),
)
@settings(max_examples=40, deadline=None)
def test_pbest_update_invariants(seed, n):
    """pbest never worsens and the mask marks exactly the improvements."""
    rng = np.random.default_rng(seed)
    d = 4
    state = SwarmState(
        positions=rng.normal(size=(n, d)).astype(np.float32),
        velocities=np.zeros((n, d), np.float32),
        pbest_values=rng.normal(size=n),
        pbest_positions=rng.normal(size=(n, d)).astype(np.float32),
    )
    before = state.pbest_values.copy()
    values = rng.normal(size=n)
    mask = pbest_update(state, values)
    assert np.all(state.pbest_values <= before)
    np.testing.assert_array_equal(mask, values < before)
    np.testing.assert_array_equal(
        state.pbest_values, np.minimum(before, values)
    )


@given(
    seed=st.integers(0, 500),
    n=st.integers(3, 100),
    k=st.integers(1, 5),
)
@settings(max_examples=40, deadline=None)
def test_ring_best_is_no_worse_than_self(seed, n, k):
    vals = np.random.default_rng(seed).normal(size=n)
    best = ring_best_indices(vals, k=min(k, (n - 1) // 2))
    assert np.all(vals[best] <= vals)


# ---------------------------------------------------------------------------
# Cost model
# ---------------------------------------------------------------------------


@given(
    n=st.integers(1, 10**8),
    flops=st.floats(0.0, 100.0),
    read=st.floats(0.0, 64.0),
    written=st.floats(0.0, 64.0),
)
@settings(max_examples=60, deadline=None)
def test_kernel_cost_always_positive_and_decomposed(n, flops, read, written):
    spec = KernelSpec(
        name="k",
        flops_per_elem=flops,
        bytes_read_per_elem=read,
        bytes_written_per_elem=written,
    )
    cost = kernel_cost(_V100, spec, resource_aware_config(_V100, n), n)
    assert cost.seconds >= _V100.kernel_launch_overhead_s
    body = cost.seconds - cost.t_launch_overhead
    assert body >= max(
        cost.t_memory, cost.t_compute, cost.t_sfu, cost.t_issue, cost.t_latency
    ) - 1e-12
    assert 0.0 <= cost.occupancy <= 1.0


@given(tpb=st.sampled_from([32, 64, 128, 256, 512, 1024]), blocks=st.integers(1, 5000))
@settings(max_examples=60, deadline=None)
def test_launch_config_workload_covers_all_elements(tpb, blocks):
    cfg = LaunchConfig(blocks, tpb)
    n = 1_000_000
    assert cfg.workload_per_thread(n) * cfg.total_threads >= n


# ---------------------------------------------------------------------------
# End-to-end determinism
# ---------------------------------------------------------------------------


@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=10, deadline=None)
def test_optimizer_is_deterministic_per_seed(seed):
    from repro.engines import FastPSOEngine

    problem = Problem.from_benchmark("rastrigin", 6)
    params = PSOParams(seed=seed)
    a = FastPSOEngine().optimize(problem, n_particles=16, max_iter=8, params=params)
    b = FastPSOEngine().optimize(problem, n_particles=16, max_iter=8, params=params)
    assert a.best_value == b.best_value
    np.testing.assert_array_equal(a.best_position, b.best_position)
