"""BatchScheduler: packing-policy properties and fleet metrics.

The property tests drive the placement logic (``_schedule``) with synthetic
job durations — hypothesis explores skewed and degenerate workloads far
faster than running real engines — and pin the scheduling invariants the
module docstring promises: every job placed exactly once, streams never run
two jobs at a time (capacity), no job starves, and the makespan is bounded
by ``max(durations) <= makespan <= sum(durations)``.  End-to-end behaviour
with real engines (including the bit-identical determinism contract) lives
in ``tests/integration/test_batch_determinism.py``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import BatchScheduler, Job, mixed_workload
from repro.batch.scheduler import POLICIES
from repro.core.results import OptimizeResult, StepTimes
from repro.errors import InvalidParameterError

DURATIONS = st.lists(
    st.floats(0.0, 1e3, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=24,
)


def _fake_result(seconds: float) -> OptimizeResult:
    return OptimizeResult(
        engine="fake",
        problem="sphere",
        n_particles=1,
        dim=1,
        iterations=1,
        best_value=0.0,
        best_position=np.zeros(1),
        error=0.0,
        elapsed_seconds=seconds,
        setup_seconds=0.0,
        iteration_seconds=seconds,
        step_times=StepTimes(),
    )


def _schedule(durations, *, n_devices=1, streams=4, policy="fifo"):
    from repro.reliability import RecoveryReport

    scheduler = BatchScheduler(
        n_devices=n_devices, streams_per_device=streams, policy=policy
    )
    batch = [Job("sphere", dim=2, name=f"j{i}") for i in range(len(durations))]
    executed = [
        RecoveryReport(result=_fake_result(s), attempts=1) for s in durations
    ]
    return scheduler._schedule(batch, executed)


@pytest.mark.parametrize("policy", POLICIES)
class TestPackingProperties:
    @given(durations=DURATIONS, streams=st.integers(1, 5))
    @settings(max_examples=60, deadline=None)
    def test_every_job_placed_exactly_once(self, durations, streams, policy):
        outcomes, _ = _schedule(durations, streams=streams, policy=policy)
        assert sorted(o.submit_order for o in outcomes) == list(
            range(len(durations))
        )
        for o, seconds in zip(outcomes, durations):
            # Stream.enqueue returns start + duration, bit-exactly.
            assert o.end_seconds == o.start_seconds + seconds

    @given(
        durations=DURATIONS,
        devices=st.integers(1, 3),
        streams=st.integers(1, 4),
    )
    @settings(max_examples=60, deadline=None)
    def test_stream_capacity_never_exceeded(
        self, durations, devices, streams, policy
    ):
        """A stream is FIFO: its jobs' intervals never overlap."""
        outcomes, _ = _schedule(
            durations, n_devices=devices, streams=streams, policy=policy
        )
        lanes: dict[tuple[int, int], list] = {}
        for o in outcomes:
            assert 0 <= o.device_index < devices
            assert 0 <= o.stream_index < streams
            lanes.setdefault((o.device_index, o.stream_index), []).append(o)
        for jobs in lanes.values():
            jobs.sort(key=lambda o: o.start_seconds)
            for prev, nxt in zip(jobs, jobs[1:]):
                assert nxt.start_seconds >= prev.end_seconds

    @given(durations=DURATIONS, streams=st.integers(1, 5))
    @settings(max_examples=60, deadline=None)
    def test_no_job_starved(self, durations, streams, policy):
        """Every job waits at most for the rest of the batch, never forever."""
        outcomes, _ = _schedule(durations, streams=streams, policy=policy)
        total = sum(durations)
        for o in outcomes:
            budget = (
                sum(durations[: o.submit_order])  # FIFO: only earlier jobs
                if policy == "fifo"
                else total - o.solo_seconds
            )
            assert o.queue_wait_seconds <= budget + 1e-9

    @given(
        durations=DURATIONS,
        devices=st.integers(1, 3),
        streams=st.integers(1, 4),
    )
    @settings(max_examples=60, deadline=None)
    def test_makespan_bounds(self, durations, devices, streams, policy):
        outcomes, device_makespans = _schedule(
            durations, n_devices=devices, streams=streams, policy=policy
        )
        makespan = max(device_makespans)
        lanes = devices * streams
        # synchronize() advances the clock incrementally, so the device
        # makespan matches the last completion only up to float rounding.
        assert makespan == pytest.approx(
            max(o.end_seconds for o in outcomes), abs=1e-9
        )
        assert makespan >= max(durations) - 1e-9
        assert makespan <= sum(durations) + 1e-9
        assert makespan >= sum(durations) / lanes - 1e-9

    @given(durations=DURATIONS)
    @settings(max_examples=30, deadline=None)
    def test_single_lane_degenerates_to_serial(self, durations, policy):
        outcomes, device_makespans = _schedule(
            durations, streams=1, policy=policy
        )
        assert device_makespans[0] == pytest.approx(sum(durations))

    @given(durations=DURATIONS, streams=st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_schedule_is_deterministic(self, durations, streams, policy):
        a, _ = _schedule(durations, streams=streams, policy=policy)
        b, _ = _schedule(durations, streams=streams, policy=policy)
        assert [
            (o.device_index, o.stream_index, o.start_seconds) for o in a
        ] == [(o.device_index, o.stream_index, o.start_seconds) for o in b]


class TestConstruction:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_devices": 0},
            {"streams_per_device": 0},
            {"policy": "lifo"},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(InvalidParameterError):
            BatchScheduler(**kwargs)

    def test_empty_batch_rejected(self):
        with pytest.raises(InvalidParameterError, match="empty"):
            BatchScheduler().run()

    def test_submit_forms(self):
        scheduler = BatchScheduler()
        a = scheduler.submit(Job("sphere", dim=4))
        b = scheduler.submit(problem="ackley", dim=4)
        scheduler.submit_many([{"problem": "levy", "dim": 4}])
        assert scheduler.pending[:2] == (a, b)
        assert len(scheduler.pending) == 3
        with pytest.raises(InvalidParameterError, match="not both"):
            scheduler.submit(Job("sphere", dim=4), dim=4)
        with pytest.raises(InvalidParameterError):
            scheduler.submit("sphere")


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def batch(self):
        jobs = [
            Job("sphere", dim=6, n_particles=32, max_iter=8, seed=s, name=f"s{s}")
            for s in range(4)
        ] + [Job("ackley", dim=4, n_particles=16, max_iter=6, engine="gpu-pso")]
        return BatchScheduler(streams_per_device=2).run(jobs)

    def test_results_in_submission_order(self, batch):
        assert [o.job.label for o in batch.outcomes][:4] == [
            f"s{s}" for s in range(4)
        ]
        assert len(batch.results) == 5

    def test_queue_drained_and_metrics_consistent(self, batch):
        assert batch.makespan_seconds == pytest.approx(
            max(o.end_seconds for o in batch.outcomes)
        )
        assert batch.speedup >= 1.0
        assert 0.0 < batch.fleet_occupancy <= 1.0
        assert batch.device_occupancy(0) == pytest.approx(
            batch.fleet_occupancy
        )
        assert batch.mean_queue_wait_seconds <= batch.max_queue_wait_seconds

    def test_fleet_profile_covers_all_jobs(self, batch):
        prof = batch.fleet_profile
        assert prof is not None
        # 5 GPU jobs ran: the merged report must count every evaluation
        # launch (one per iteration per job at minimum).
        # Both engine families launch one fitness kernel per iteration:
        # fastpso's "evaluation_kernel" and gpu-pso's "particle_evaluate".
        evaluate = [k for k in prof.kernels if "evaluat" in k]
        assert evaluate
        total_evals = sum(prof.kernels[k].launches for k in evaluate)
        assert total_evals >= 4 * 8 + 6
        assert prof.total_kernel_seconds > 0

    def test_summary_and_to_dict(self, batch):
        text = batch.summary()
        assert "makespan" in text and "speedup" in text
        payload = batch.to_dict()
        assert payload["schema_version"] == 3
        assert len(payload["jobs"]) == 5
        assert payload["speedup"] == pytest.approx(batch.speedup)

    def test_workload_generator_is_deterministic(self):
        a = mixed_workload(12)
        b = mixed_workload(12)
        assert a == b
        assert len({j.resolved_params.seed for j in a}) == 12


class TestGraphKnob:
    """The scheduler's fleet-wide ``graph=`` default (see `_job_engine_options`)."""

    def test_default_leaves_engine_options_untouched(self):
        scheduler = BatchScheduler()
        job = Job("sphere", dim=4, engine="fastpso")
        assert scheduler._job_engine_options(job) == {}

    def test_graph_default_injected_for_supporting_engines(self):
        scheduler = BatchScheduler(graph=False)
        job = Job("sphere", dim=4, engine="fastpso")
        assert scheduler._job_engine_options(job) == {"graph": False}

    def test_explicit_job_option_wins(self):
        scheduler = BatchScheduler(graph=False)
        job = Job(
            "sphere", dim=4, engine="fastpso", engine_options={"graph": True}
        )
        assert scheduler._job_engine_options(job) == {"graph": True}

    def test_unsupporting_engine_never_gets_the_kwarg(self):
        scheduler = BatchScheduler(graph=True)
        job = Job("sphere", dim=4, engine="pyswarms")
        assert "graph" not in scheduler._job_engine_options(job)

    def test_supports_graph_resolves_aliases(self):
        from repro.engines import engine_supports_graph

        assert engine_supports_graph("fastpso-fused")
        assert engine_supports_graph("mgpu")
        assert not engine_supports_graph("scikit-opt")
        assert not engine_supports_graph("no-such-engine")

    def test_graph_off_batch_runs_eager_and_matches(self):
        jobs = [Job("sphere", dim=4, n_particles=16, max_iter=6, seed=3)]
        on = BatchScheduler(graph=True).run(list(jobs))
        off = BatchScheduler(graph=False).run(list(jobs))
        assert on.results[0].best_value == off.results[0].best_value
        assert (
            on.results[0].elapsed_seconds == off.results[0].elapsed_seconds
        )
