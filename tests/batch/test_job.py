"""Job spec validation and derived views."""

import pytest

from repro.batch import Job
from repro.core.parameters import PAPER_DEFAULTS, PSOParams
from repro.core.problem import Problem
from repro.errors import InvalidParameterError


class TestValidation:
    def test_minimal_job(self):
        job = Job("sphere", dim=8)
        assert job.problem_name == "sphere"
        assert job.resolved_params is PAPER_DEFAULTS

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dim": 0},
            {"dim": -3},
            {"n_particles": 0},
            {"max_iter": 0},
            {"seed": -1},
            {"seed": 2**64},
        ],
    )
    def test_bad_fields_rejected(self, kwargs):
        with pytest.raises(InvalidParameterError):
            Job("sphere", **{"dim": 8, **kwargs})

    def test_bad_problem_rejected(self):
        with pytest.raises(InvalidParameterError):
            Job(problem=42, dim=8)
        with pytest.raises(InvalidParameterError):
            Job(problem="", dim=8)


class TestDerivedViews:
    def test_seed_overrides_params(self):
        job = Job("sphere", dim=8, params=PSOParams(seed=1), seed=9)
        assert job.resolved_params.seed == 9
        assert job.resolved_params.inertia == PSOParams(seed=1).inertia

    def test_seed_matching_params_is_identity(self):
        params = PSOParams(seed=5)
        assert Job("sphere", dim=8, params=params, seed=5).resolved_params is params

    def test_resolved_problem_builds_benchmark(self):
        problem = Job("rastrigin", dim=6).resolved_problem()
        assert problem.name == "rastrigin" and problem.dim == 6

    def test_resolved_problem_passes_through_instances(self):
        problem = Problem.from_benchmark("ackley", 4)
        job = Job(problem, dim=4)
        assert job.resolved_problem() is problem
        assert job.problem_name == "ackley"

    def test_label_default_and_override(self):
        assert Job("sphere", dim=8, name="mine").label == "mine"
        auto = Job("sphere", dim=8, n_particles=32, seed=3).label
        assert "sphere" in auto and "d8" in auto and "s3" in auto

    def test_with_overrides(self):
        job = Job("sphere", dim=8).with_overrides(max_iter=7)
        assert job.max_iter == 7 and job.problem_name == "sphere"
