"""Fused multi-swarm batching (ISSUE 6): grouping, parity, composition.

The fused policy's headline guarantee mirrors the batch layer's: stacking
``m`` compatible swarms into one ``m*n x d`` engine loop changes *nothing*
a member computes — every per-swarm trajectory, simulated runtime and
serialized result payload is bit-identical to a solo run of the same spec.
These tests pin that contract (the goldens the benchmark's
``--check-parity`` flag re-checks), plus the grouping rules, admission
pricing, budget/checkpoint composition and policy validation around it.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from repro.batch import AdmissionPolicy, BatchScheduler, Job, estimate_job_bytes
from repro.batch.admission import estimate_group_bytes
from repro.batch.fused import FUSABLE_ENGINES, fusion_key, plan_fused_groups
from repro.core.budget import Budget
from repro.core.parameters import PAPER_DEFAULTS
from repro.engines import make_engine
from repro.errors import InvalidParameterError
from repro.io import result_to_dict

MB = 1024 * 1024


def _solo(job, **extra):
    """A fresh solo run of *job* — the parity reference."""
    engine = make_engine(job.engine, **dict(job.engine_options))
    return engine.optimize(
        job.resolved_problem(),
        n_particles=job.n_particles,
        max_iter=job.max_iter,
        params=job.resolved_params,
        record_history=job.record_history,
        **extra,
    )


def _family(engine, n=4, *, problem="rastrigin", n_particles=64, max_iter=30):
    """Compatible jobs differing by seed AND hyper-parameters — the mix
    the fused grouping must treat as one stack."""
    jobs = []
    for i in range(n):
        params = replace(
            PAPER_DEFAULTS,
            inertia=0.6 + 0.05 * i,
            cognitive=1.4 + 0.1 * i,
            seed=200 + i,
        )
        jobs.append(
            Job(
                problem,
                dim=8,
                n_particles=n_particles,
                max_iter=max_iter,
                engine=engine,
                params=params,
                record_history=True,
            )
        )
    return jobs


class TestGrouping:
    def test_compatible_jobs_form_one_group(self):
        jobs = _family("fastpso", 4)
        groups = plan_fused_groups(jobs)
        assert groups == [[0, 1, 2, 3]]

    def test_key_splits_on_shape_and_options(self):
        base = Job("sphere", dim=8, n_particles=64, max_iter=20, seed=1)
        variants = [
            base,
            base.with_overrides(seed=2),  # same key as base
            base.with_overrides(dim=16),
            base.with_overrides(n_particles=128),
            base.with_overrides(max_iter=21),
            base.with_overrides(engine="fastpso-tc"),
        ]
        keys = [fusion_key(j) for j in variants]
        assert keys[0] == keys[1]
        assert len({keys[0], *keys[2:]}) == 5  # everything else differs

    def test_different_problems_still_fuse(self):
        """Problems are not part of the key — the stacked evaluator
        handles per-member objectives."""
        a = Job("sphere", dim=8, n_particles=64, max_iter=20, seed=1)
        b = Job("rastrigin", dim=8, n_particles=64, max_iter=20, seed=2)
        assert fusion_key(a) == fusion_key(b)
        # Members are ordered problem-first so the stacked evaluator sees
        # contiguous same-problem row blocks.
        assert plan_fused_groups([a, b]) == [[1, 0]]

    def test_stragglers_fall_back_to_solo(self):
        jobs = _family("fastpso", 3) + [
            Job("sphere", dim=32, n_particles=128, max_iter=20, seed=9)
        ]
        groups = plan_fused_groups(jobs)
        assert groups == [[0, 1, 2]]  # the singleton runs solo

    def test_unfusable_engines_are_excluded(self):
        assert FUSABLE_ENGINES == frozenset({"fastpso", "gpu-pso"})
        assert fusion_key(Job("sphere", dim=8, engine="mgpu")) is None
        assert (
            fusion_key(
                Job(
                    "sphere",
                    dim=8,
                    engine_options={"record_launches": True},
                )
            )
            is None
        )

    def test_plan_is_deterministic(self):
        jobs = _family("fastpso", 3) + _family("gpu-pso", 3)
        assert plan_fused_groups(jobs) == plan_fused_groups(jobs)


class TestBitIdenticalGoldens:
    """The golden parity pins: every fused member's full serialized result
    equals its solo run, across engine families, seeds and mixed
    hyper-parameters."""

    @pytest.mark.parametrize(
        "engine", ["fastpso", "fastpso-tc", "fastpso-fp16", "gpu-pso"]
    )
    def test_deep_parity_per_engine_family(self, engine):
        jobs = _family(engine, 3)
        batch = BatchScheduler(streams_per_device=2, policy="fused").run(jobs)
        (row,) = batch.fused_rows
        assert row["n_fused"] == 3
        assert row["fast_rounds"] > 0
        for job, outcome in zip(jobs, batch.outcomes):
            solo = _solo(job)
            assert outcome.status == "completed"
            assert result_to_dict(outcome.result) == result_to_dict(solo)
            assert (
                outcome.result.history.gbest_values
                == solo.history.gbest_values
            )
            assert (
                outcome.result.history.mean_pbest_values
                == solo.history.mean_pbest_values
            )

    def test_mixed_problem_group_stays_exact(self):
        jobs = [
            Job(
                problem,
                dim=8,
                n_particles=64,
                max_iter=25,
                seed=300 + i,
                record_history=True,
            )
            for i, problem in enumerate(
                ["sphere", "rastrigin", "levy", "sphere"]
            )
        ]
        batch = BatchScheduler(streams_per_device=2, policy="fused").run(jobs)
        assert batch.fused_rows[0]["n_fused"] == 4
        for job, outcome in zip(jobs, batch.outcomes):
            assert result_to_dict(outcome.result) == result_to_dict(_solo(job))

    def test_simulated_seconds_survive_fusing(self):
        jobs = _family("fastpso", 4)
        batch = BatchScheduler(streams_per_device=2, policy="fused").run(jobs)
        for job, outcome in zip(jobs, batch.outcomes):
            solo = _solo(job)
            assert outcome.result.elapsed_seconds == solo.elapsed_seconds
            assert outcome.result.step_times == solo.step_times


class TestBudgetsMidGroup:
    def test_expired_member_gets_terminal_status_others_complete(self):
        jobs = _family("fastpso", 4, max_iter=40)
        jobs[1] = jobs[1].with_overrides(budget=Budget(iterations=15))
        batch = BatchScheduler(streams_per_device=2, policy="fused").run(jobs)
        statuses = [o.status for o in batch.outcomes]
        assert statuses == [
            "completed",
            "budget_exhausted",
            "completed",
            "completed",
        ]
        assert batch.outcomes[1].result.iterations == 15
        # The expired member is still bit-identical to its solo budgeted run.
        solo = _solo(jobs[1], budget=Budget(iterations=15))
        assert result_to_dict(batch.outcomes[1].result) == result_to_dict(solo)
        # Survivors finish their full iteration count, bit-identically.
        for job, outcome in zip(jobs[2:], batch.outcomes[2:]):
            assert outcome.result.iterations == 40
            assert result_to_dict(outcome.result) == result_to_dict(_solo(job))


class TestResumeMidGroup:
    def test_crash_and_resume_splits_back_per_job(self, tmp_path):
        """Kill the group mid-flight (emulated by discarding the newer
        snapshots), re-run, and every member must still match its solo
        run exactly — the group snapshot splits back into per-job state."""
        ck = tmp_path / "ckpts"
        jobs = _family("fastpso", 4, max_iter=40)
        full = BatchScheduler(
            streams_per_device=2,
            policy="fused",
            checkpoint_dir=ck,
            checkpoint_every=10,
            checkpoint_keep=10,
        ).run(jobs)
        # Emulate a crash after iteration 10: drop the later snapshots.
        removed = 0
        for path in ck.rglob("*.ckpt"):
            if "iter0000010" not in path.name:
                path.unlink()
                removed += 1
        assert removed > 0
        resumed = BatchScheduler(
            streams_per_device=2,
            policy="fused",
            checkpoint_dir=ck,
            checkpoint_every=10,
            checkpoint_keep=10,
        ).run(jobs)
        assert resumed.fused_rows[0]["n_fused"] == 4
        for job, a, b in zip(jobs, full.outcomes, resumed.outcomes):
            assert result_to_dict(a.result) == result_to_dict(b.result)
            assert result_to_dict(b.result) == result_to_dict(_solo(job))


class TestAdmissionGroupPricing:
    def test_group_estimate_exceeds_member_sum(self):
        """The stacked tensors are priced on top of the members' own
        arrays — a fused group can never look cheaper than its parts."""
        jobs = _family("fastpso", 4)
        assert estimate_group_bytes(jobs) > sum(
            estimate_job_bytes(j) for j in jobs
        )

    def test_group_degrades_coherently(self):
        jobs = [
            Job(
                "sphere",
                dim=32,
                n_particles=1024,
                max_iter=5,
                seed=i,
                name=f"g{i}",
            )
            for i in range(3)
        ]
        limit = 2 * estimate_group_bytes(
            [j.with_overrides(n_particles=256) for j in jobs]
        )
        policy = AdmissionPolicy(memory_limit_bytes=limit)
        plan = policy.plan(
            jobs,
            streams_per_device=2,
            device_mem_bytes=16 * 1024 * MB,
            groups=[[0, 1, 2]],
        )
        assert [d.action for d in plan] == ["degrade"] * 3
        # Every member lands on the same shared swarm size with the
        # group-scoped reason — no member degrades alone.
        assert {d.job.n_particles for d in plan} == {256}
        assert all(d.reason.endswith("(fused group)") for d in plan)

    def test_impossible_group_is_shed_whole(self):
        jobs = [
            Job("sphere", dim=64, n_particles=4096, name=f"g{i}", seed=i)
            for i in range(2)
        ]
        plan = AdmissionPolicy(memory_limit_bytes=1024).plan(
            jobs,
            streams_per_device=2,
            device_mem_bytes=16 * 1024 * MB,
            groups=[[0, 1]],
        )
        assert [d.action for d in plan] == ["shed", "shed"]
        assert all("fused group of 2" in d.reason for d in plan)
        assert all("even fully degraded" in d.reason for d in plan)

    def test_degraded_group_still_runs_and_matches_solo(self):
        jobs = [
            Job(
                "sphere",
                dim=16,
                n_particles=512,
                max_iter=10,
                seed=400 + i,
                record_history=True,
            )
            for i in range(3)
        ]
        limit = 2 * estimate_group_bytes(
            [j.with_overrides(n_particles=128) for j in jobs]
        )
        batch = BatchScheduler(
            streams_per_device=2, policy="fused", memory_limit_bytes=limit
        ).run(jobs)
        assert batch.n_degraded == 3
        for job, outcome in zip(jobs, batch.outcomes):
            assert outcome.status == "degraded"
            degraded = job.with_overrides(
                n_particles=outcome.result.n_particles
            )
            assert result_to_dict(outcome.result) == result_to_dict(
                _solo(degraded)
            )


class TestPolicyValidation:
    def test_unknown_policy_suggests_fused(self):
        with pytest.raises(InvalidParameterError) as exc_info:
            BatchScheduler(policy="fuzed")
        assert "did you mean 'fused'?" in str(exc_info.value)

    def test_unknown_policy_without_lookalike_lists_choices(self):
        with pytest.raises(InvalidParameterError) as exc_info:
            BatchScheduler(policy="zzz")
        message = str(exc_info.value)
        assert "did you mean" not in message
        assert "'fifo', 'packed', 'fused'" in message

    @pytest.mark.parametrize("knob", ["retry", "faults", "breaker"])
    def test_fused_refuses_fault_injection_knobs(self, knob):
        from repro.reliability import FaultPlan, RetryPolicy

        values = {
            "retry": RetryPolicy(),
            "faults": FaultPlan.drill(4, seed=1),
            "breaker": object(),
        }
        with pytest.raises(InvalidParameterError) as exc_info:
            BatchScheduler(policy="fused", **{knob: values[knob]})
        assert "does not compose" in str(exc_info.value)


class TestReporting:
    def test_fused_rows_round_trip_to_dict(self):
        jobs = _family("fastpso", 3)
        batch = BatchScheduler(streams_per_device=2, policy="fused").run(jobs)
        payload = batch.to_dict()
        assert len(payload["fused_groups"]) == 1
        row = payload["fused_groups"][0]
        assert row["n_fused"] == 3
        assert sorted(row["members"]) == sorted(j.label for j in jobs)
        assert row["lane_seconds"] > 0.0

    def test_group_lane_is_shorter_than_member_sum(self):
        """The scheduling win the makespan speedup comes from: one lane
        segment for the whole group, shorter than its members back to
        back."""
        jobs = _family("fastpso", 4)
        batch = BatchScheduler(streams_per_device=2, policy="fused").run(jobs)
        (row,) = batch.fused_rows
        sum_solo = sum(o.result.elapsed_seconds for o in batch.outcomes)
        longest = max(o.result.elapsed_seconds for o in batch.outcomes)
        assert longest <= row["lane_seconds"] <= sum_solo
        assert batch.makespan_seconds < sum_solo
