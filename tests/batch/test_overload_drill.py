"""The overload drill: everything on at once, deterministically.

32 jobs on a 2-device fleet with injected faults, a simulated-time budget,
a bounded priority queue, and circuit breakers.  The acceptance contract:
``run()`` raises nothing, every job lands in a terminal status, expired
jobs keep a finite best-so-far, and the full decision record — admission,
breaker events, per-job statuses — is byte-identical across reruns of the
same seed.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.batch import BatchScheduler, mixed_workload
from repro.batch.__main__ import main
from repro.core.budget import Budget
from repro.core.results import RUN_STATUSES
from repro.reliability import FaultPlan


def _drill_batch(seed=77):
    jobs = mixed_workload(32, base_seed=seed)
    scheduler = BatchScheduler(
        n_devices=2,
        streams_per_device=2,
        faults=FaultPlan.drill(32, seed=seed),
        budget=Budget(sim_seconds=0.005),
        max_queue=24,
        priority=True,
        breaker=True,
    )
    return scheduler.run(jobs)


class TestDrill:
    @pytest.fixture(scope="class")
    def batch(self):
        # run() must never raise under the drill — a raise fails the suite.
        return _drill_batch()

    def test_every_job_reaches_a_terminal_status(self, batch):
        assert len(batch.outcomes) == 32
        for outcome in batch.outcomes:
            assert outcome.status in RUN_STATUSES

    def test_overload_machinery_actually_engaged(self, batch):
        statuses = {o.status for o in batch.outcomes}
        assert batch.n_shed > 0  # queue bound 24 < 32 must shed
        assert "shed" in statuses
        assert batch.n_expired > 0  # the sim budget must trip some jobs
        assert len(batch.admission_rows) == 32

    def test_expired_jobs_keep_a_finite_best_so_far(self, batch):
        expired = [
            o for o in batch.outcomes
            if o.status in ("deadline_exceeded", "budget_exhausted")
        ]
        assert expired
        for outcome in expired:
            assert outcome.result is not None
            assert math.isfinite(outcome.result.best_value)

    def test_shed_jobs_hold_no_lane(self, batch):
        for outcome in batch.outcomes:
            if outcome.status == "shed":
                assert outcome.result is None
                assert outcome.device_index == -1
                assert outcome.attempts == 0
                assert outcome.admission_reason

    def test_report_renders(self, batch):
        text = batch.summary()
        assert "overload:" in text
        assert batch.failure_table()  # shed jobs populate it

    def test_decisions_are_byte_identical_across_reruns(self, batch):
        rerun = _drill_batch()
        a = json.dumps(batch.to_dict(), sort_keys=True)
        b = json.dumps(rerun.to_dict(), sort_keys=True)
        assert a == b


class TestDrillCli:
    DRILL = [
        "--jobs", "32", "--devices", "2", "--streams", "2",
        "--faults", "drill", "--retry", "2",
        "--budget-sim-seconds", "0.005", "--max-queue", "24",
        "--priority", "--breaker", "--seed", "909",
    ]

    def test_exit_code_and_failures_json(self, tmp_path, capsys):
        out = tmp_path / "failures.json"
        code = main(self.DRILL + ["--failures-json", str(out)])
        capsys.readouterr()
        payload = json.loads(out.read_text())
        # Shed jobs guarantee a nonzero exit; 1 only if something failed.
        assert code == (1 if payload["n_failed"] else 2)
        assert payload["n_shed"] > 0
        assert payload["admission"]
        recorded = {j["status"] for j in payload["jobs"]}
        assert recorded and recorded <= set(RUN_STATUSES) - {"completed"}

    def test_queue_bound_alone_exits_2(self, tmp_path, capsys):
        code = main([
            "--jobs", "6", "--devices", "2", "--max-queue", "4",
            "--seed", "11",
        ])
        capsys.readouterr()
        assert code == 2

    def test_clean_run_exits_0(self, capsys):
        code = main(["--jobs", "4", "--devices", "2", "--seed", "5"])
        capsys.readouterr()
        assert code == 0

    def test_failures_json_identical_across_reruns(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        main(self.DRILL + ["--failures-json", str(a)])
        main(self.DRILL + ["--failures-json", str(b)])
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()
