"""The ``python -m repro.batch`` CLI: flags, exit codes, reliability."""

from __future__ import annotations

import json

import pytest

from repro.batch.__main__ import main
from repro.reliability import FaultPlan, FaultSpec


class TestBasicInvocation:
    def test_default_workload_succeeds(self, capsys):
        assert main(["--jobs", "4", "--streams", "2"]) == 0
        out = capsys.readouterr().out
        assert "batch: 4 jobs" in out
        assert "makespan=" in out

    def test_out_file_written_atomically(self, tmp_path, capsys):
        out_path = tmp_path / "batch.json"
        assert main(["--jobs", "3", "--out", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        assert len(payload["jobs"]) == 3
        assert payload["n_failed"] == 0
        assert not list(tmp_path.glob(".*tmp*"))  # no stray temp files


class TestSpecSeedPlumbing:
    def test_unseeded_spec_jobs_get_deterministic_seeds(
        self, tmp_path, capsys
    ):
        spec = tmp_path / "jobs.json"
        spec.write_text(
            json.dumps(
                [
                    {"problem": "sphere", "dim": 8, "n_particles": 16,
                     "max_iter": 5},
                    {"problem": "sphere", "dim": 8, "n_particles": 16,
                     "max_iter": 5},
                    {"problem": "sphere", "dim": 8, "n_particles": 16,
                     "max_iter": 5, "seed": 77},
                ]
            )
        )
        out = tmp_path / "a.json"
        assert main(
            ["--spec", str(spec), "--seed", "500", "--out", str(out)]
        ) == 0
        jobs = json.loads(out.read_text())["jobs"]
        # Distinct derived seeds -> distinct results for identical specs...
        assert jobs[0]["result"]["best_value"] != jobs[1]["result"]["best_value"]
        # ... and an explicit seed is left alone (label encodes the seed).
        assert "-s77" in jobs[2]["label"]
        assert "-s500" in jobs[0]["label"] and "-s501" in jobs[1]["label"]

    def test_same_seed_reproduces_the_run(self, tmp_path, capsys):
        spec = tmp_path / "jobs.json"
        spec.write_text(
            json.dumps([{"problem": "ackley", "dim": 6, "n_particles": 16,
                         "max_iter": 5}])
        )
        outs = []
        for name in ("a.json", "b.json"):
            out = tmp_path / name
            assert main(
                ["--spec", str(spec), "--seed", "9", "--out", str(out)]
            ) == 0
            outs.append(json.loads(out.read_text()))
        assert (
            outs[0]["jobs"][0]["result"]["best_value"]
            == outs[1]["jobs"][0]["result"]["best_value"]
        )

    def test_malformed_spec_rejected(self, tmp_path):
        spec = tmp_path / "jobs.json"
        spec.write_text(json.dumps({"problem": "sphere"}))
        with pytest.raises(SystemExit, match="expected a JSON list"):
            main(["--spec", str(spec)])


class TestReliabilityFlags:
    def test_drill_with_retry_recovers_and_exits_zero(self, tmp_path, capsys):
        code = main(
            [
                "--jobs", "6", "--streams", "2", "--seed", "7",
                "--faults", "drill",
                "--retry", "4",
                "--checkpoint-dir", str(tmp_path / "ckpts"),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "recovery:" in captured.out
        assert captured.err == ""
        assert list((tmp_path / "ckpts").glob("job*/**/*.ckpt"))

    def test_fault_plan_file(self, tmp_path, capsys):
        plan = FaultPlan({0: [FaultSpec("launch_failure", after=5)]}, seed=1)
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps(plan.to_dict()))
        code = main(
            ["--jobs", "2", "--seed", "7", "--faults", str(plan_path),
             "--retry", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "recovery:" in out and "backoff=1s" in out

    def test_unrecovered_failures_exit_nonzero_with_table(
        self, tmp_path, capsys
    ):
        code = main(
            ["--jobs", "6", "--streams", "2", "--seed", "7",
             "--faults", "drill", "--retry", "1"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "job(s) failed" in captured.err
        assert "last error" in captured.err
        assert "injected" in captured.err

    def test_out_file_written_even_when_jobs_fail(self, tmp_path, capsys):
        out = tmp_path / "failed.json"
        code = main(
            ["--jobs", "6", "--streams", "2", "--seed", "7",
             "--faults", "drill", "--retry", "1", "--out", str(out)]
        )
        assert code == 1
        assert json.loads(out.read_text())["n_failed"] >= 1
