"""Heterogeneous fleets: ``devices=`` placement, composition rules, pricing.

A ``devices=["v100", "a100"]`` fleet places each job on the device with the
earliest modelled finish time (cost-aware EFT via the placement probe) and
threads the chosen :class:`DeviceSpec` into device-aware engines.  The
determinism contract carries over: placement moves the simulated clock,
never the trajectory bits.
"""

import pytest

from repro.batch import AdmissionPolicy, BatchScheduler, Job
from repro.devices import resolve_device
from repro.errors import InvalidParameterError, UnknownDeviceError
from repro.reliability import BreakerPolicy, FaultPlan, RetryPolicy


def seeded_jobs(n=6, max_iter=30):
    return [
        Job(
            "sphere",
            dim=16,
            n_particles=128 * (1 + seed % 2),
            max_iter=max_iter,
            seed=seed,
        )
        for seed in range(n)
    ]


class TestConstruction:
    def test_names_and_specs_resolve(self):
        fleet = BatchScheduler(devices=["v100", resolve_device("a100")])
        assert fleet.n_devices == 2
        assert fleet.device_specs == (
            resolve_device("v100"),
            resolve_device("a100"),
        )

    def test_n_devices_follows_the_fleet(self):
        assert BatchScheduler(devices=["v100", "a100", "h100"]).n_devices == 3
        # An explicit matching n_devices is accepted; a conflicting one is not.
        BatchScheduler(devices=["v100", "a100"], n_devices=2)
        with pytest.raises(InvalidParameterError):
            BatchScheduler(devices=["v100", "a100"], n_devices=3)

    def test_empty_fleet_rejected(self):
        with pytest.raises(InvalidParameterError, match="at least one"):
            BatchScheduler(devices=[])

    def test_unknown_device_did_you_mean(self):
        with pytest.raises(UnknownDeviceError, match="did you mean"):
            BatchScheduler(devices=["v1000"])

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"retry": RetryPolicy(max_attempts=2)},
            {"faults": FaultPlan.drill(4, seed=7)},
            {"breaker": BreakerPolicy()},
            {"policy": "fused"},
        ],
    )
    def test_refuses_failover_and_fused_composition(self, kwargs):
        with pytest.raises(InvalidParameterError, match="does not compose"):
            BatchScheduler(devices=["v100", "a100"], **kwargs)

    def test_homogeneous_fleet_unaffected(self):
        fleet = BatchScheduler(n_devices=2, retry=RetryPolicy(max_attempts=2))
        assert fleet.device_specs is None


class TestPlacement:
    def test_every_job_lands_on_a_fleet_device(self):
        result = BatchScheduler(
            devices=["v100", "a100"], streams_per_device=2
        ).run(seeded_jobs())
        assert result.all_succeeded
        assert {o.device_index for o in result.outcomes} == {0, 1}
        for outcome in result.outcomes:
            assert 0 <= outcome.device_index < 2

    def test_eft_prefers_the_faster_device_under_load(self):
        # One stream per device: placement is purely cost-driven.  The A100
        # finishes each probe-priced job faster, so it must take at least
        # half the work.
        result = BatchScheduler(
            devices=["v100", "a100"], streams_per_device=1
        ).run(seeded_jobs(n=8))
        on_a100 = sum(1 for o in result.outcomes if o.device_index == 1)
        assert on_a100 >= 4

    def test_placement_is_deterministic(self):
        jobs = seeded_jobs()
        a = BatchScheduler(devices=["v100", "a100"]).run(jobs)
        b = BatchScheduler(devices=["v100", "a100"]).run(jobs)
        assert [o.device_index for o in a.outcomes] == [
            o.device_index for o in b.outcomes
        ]
        assert a.makespan_seconds == b.makespan_seconds

    def test_trajectories_identical_across_fleet_compositions(self):
        jobs = seeded_jobs(n=4)
        values = {
            fleet: tuple(
                o.result.best_value
                for o in BatchScheduler(devices=list(fleet)).run(jobs).outcomes
            )
            for fleet in (("v100",), ("a100",), ("v100", "a100"))
        }
        assert len(set(values.values())) == 1, values

    def test_fleet_clocks_differ(self):
        jobs = seeded_jobs(n=4)
        slow = BatchScheduler(devices=["v100"]).run(jobs)
        fast = BatchScheduler(devices=["a100"]).run(jobs)
        assert slow.makespan_seconds != fast.makespan_seconds


class TestAdmissionPricing:
    # A tiny memory_fraction keeps the probe job small in *real* bytes
    # while still splitting the fleet: ~7.9 MB of swarm state fits 0.1% of
    # a V100's 16 GiB (17.2 MB) but not 0.1% of the laptop's 4 GiB (4.3 MB).
    POLICY = AdmissionPolicy(memory_fraction=0.001)
    PROBE = Job("sphere", dim=512, n_particles=1024, max_iter=2)

    def test_memory_priced_against_the_smallest_device(self):
        result = BatchScheduler(
            devices=["v100", "laptop"],
            streams_per_device=1,
            admission=self.POLICY,
        ).run([self.PROBE])
        assert result.n_degraded == 1

    def test_same_job_fits_a_fleet_without_the_weak_member(self):
        result = BatchScheduler(
            devices=["v100"], streams_per_device=1, admission=self.POLICY
        ).run([self.PROBE])
        assert result.n_degraded == 0
        assert result.all_succeeded
