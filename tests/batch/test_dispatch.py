"""FleetTimeline placement arithmetic and RunningJob stepped execution."""

import numpy as np
import pytest

from repro.batch import (
    BatchScheduler,
    FleetTimeline,
    Job,
    LanePlacement,
    RunningJob,
    start_job,
)
from repro.engines import make_engine
from repro.errors import InvalidParameterError


class TestFleetTimeline:
    def test_earliest_lane_wins_with_device_major_tiebreak(self):
        tl = FleetTimeline(2, streams_per_device=2)
        # All horizons 0: tie broken by (device, stream) order.
        p = tl.place(1.0)
        assert (p.device_index, p.stream_index) == (0, 0)
        assert (p.start_seconds, p.end_seconds) == (0.0, 1.0)
        assert tl.place(1.0).device_index == 0  # (0, 1)
        assert tl.place(1.0).device_index == 1
        assert tl.place(1.0) == LanePlacement(1, 1, 0.0, 1.0)
        # Fleet saturated to t=1; next unit queues on lane (0, 0).
        p = tl.place(0.5)
        assert (p.device_index, p.stream_index, p.start_seconds) == (0, 0, 1.0)

    def test_not_before_floors_the_start(self):
        tl = FleetTimeline(1, streams_per_device=1)
        p = tl.place(1.0, not_before=5.0)
        assert (p.start_seconds, p.end_seconds) == (5.0, 6.0)
        # A later arrival behind a busy lane starts at the horizon.
        p = tl.place(1.0, not_before=5.5)
        assert p.start_seconds == 6.0

    def test_matches_batch_scheduler_placement(self):
        """The extracted arithmetic reproduces BatchScheduler's schedule."""
        jobs = [
            Job("sphere", dim=4, n_particles=32, max_iter=10 + 3 * i, seed=i)
            for i in range(6)
        ]
        batch = BatchScheduler(n_devices=2, streams_per_device=2).run(jobs)
        tl = FleetTimeline(2, streams_per_device=2)
        for outcome in batch.outcomes:
            p = tl.place(outcome.result.elapsed_seconds)
            assert p.device_index == outcome.device_index
            assert p.stream_index == outcome.stream_index
            assert p.start_seconds == outcome.start_seconds
            assert p.end_seconds == outcome.end_seconds
        assert tl.makespan_seconds == batch.makespan_seconds

    def test_added_device_opens_at_boot_time(self):
        tl = FleetTimeline(1, streams_per_device=1)
        tl.place(10.0)
        index = tl.add_device(at=2.0)
        assert index == 1
        assert tl.active_devices == (0, 1)
        p = tl.place(1.0)
        assert (p.device_index, p.start_seconds) == (1, 2.0)

    def test_retired_device_takes_no_placements_but_keeps_makespan(self):
        tl = FleetTimeline(2, streams_per_device=1)
        tl.place(5.0)  # device 0 busy to t=5
        tl.retire_device(0)
        p = tl.place(1.0)
        assert p.device_index == 1
        assert tl.device_makespans() == [5.0, 1.0]
        assert tl.active_devices == (1,)

    def test_cannot_retire_last_active_device(self):
        tl = FleetTimeline(2, streams_per_device=1)
        tl.retire_device(0)
        with pytest.raises(InvalidParameterError, match="last active"):
            tl.retire_device(1)
        with pytest.raises(InvalidParameterError, match="already retired"):
            tl.retire_device(0)

    def test_reserve_then_commit_equals_place(self):
        a = FleetTimeline(2, streams_per_device=2)
        b = FleetTimeline(2, streams_per_device=2)
        for duration in (1.0, 0.5, 2.0, 0.25, 1.5):
            device, stream, start = a.reserve(not_before=0.1)
            pa = a.commit(device, stream, start, duration)
            pb = b.place(duration, not_before=0.1)
            assert pa == pb

    def test_commit_refuses_start_before_horizon(self):
        tl = FleetTimeline(1, streams_per_device=1)
        tl.place(2.0)
        with pytest.raises(InvalidParameterError, match="precedes"):
            tl.commit(0, 0, 1.0, 1.0)

    def test_device_idle_tracks_horizons(self):
        tl = FleetTimeline(1, streams_per_device=2)
        assert tl.device_idle(0, now=0.0)
        tl.place(3.0)
        assert not tl.device_idle(0, now=2.0)
        assert tl.device_idle(0, now=3.0)


class TestRunningJob:
    def test_driven_run_bit_identical_to_optimize(self):
        job = Job(
            "rastrigin", dim=8, n_particles=48, max_iter=30, seed=5,
            record_history=True,
        )
        result = start_job(job).drive()
        solo = make_engine("fastpso").optimize(
            job.resolved_problem(),
            n_particles=48,
            max_iter=30,
            params=job.resolved_params,
            record_history=True,
        )
        assert result.best_value == solo.best_value
        assert np.array_equal(result.best_position, solo.best_position)
        assert result.history.gbest_values == solo.history.gbest_values
        assert result.elapsed_seconds == solo.elapsed_seconds

    def test_gbest_readable_between_steps_and_monotone(self):
        run = start_job(Job("ackley", dim=6, n_particles=32, max_iter=20, seed=3))
        values = []
        for t in range(run.start_iter, run.max_iter):
            run.step(t)
            values.append(run.gbest_value)
        run.finish()
        assert values == sorted(values, reverse=True)

    def test_early_finish_with_cancelled_status(self):
        run = start_job(Job("sphere", dim=4, n_particles=32, max_iter=50, seed=1))
        for t in range(7):
            run.step(t)
        result = run.finish(status="cancelled")
        assert result.status == "cancelled"
        assert result.iterations == 7
        assert np.isfinite(result.best_value)

    def test_finish_is_single_shot(self):
        run = start_job(Job("sphere", dim=4, n_particles=32, max_iter=5, seed=1))
        run.drive()
        with pytest.raises(InvalidParameterError, match="already finished"):
            run.finish()

    def test_snapshot_resumes_bit_identically(self, tmp_path):
        job = Job(
            "griewank", dim=8, n_particles=32, max_iter=24, seed=9,
            record_history=True,
        )
        run = start_job(job)
        for t in range(10):
            run.step(t)
        snapshot = run.snapshot()
        run.finish(status="cancelled")

        resumed = RunningJob(job, restore=snapshot)
        assert resumed.start_iter == 10
        result = resumed.drive()
        solo = make_engine("fastpso").optimize(
            job.resolved_problem(),
            n_particles=32,
            max_iter=24,
            params=job.resolved_params,
            record_history=True,
        )
        assert result.best_value == solo.best_value
        assert np.array_equal(result.best_position, solo.best_position)
        assert result.history.gbest_values == solo.history.gbest_values
