"""Admission control: priority order, queue bounds, the degradation ladder.

Every decision is pure arithmetic over the job list — no clocks, no
randomness — so the same workload must reproduce byte-identical decisions,
and a shed job must surface as a terminal outcome, never an exception.
"""

from __future__ import annotations

import pytest

from repro.batch import (
    ADMISSION_MODES,
    AdmissionPolicy,
    BatchScheduler,
    Job,
    estimate_job_bytes,
)
from repro.errors import AdmissionError, ConfigurationError

MB = 1024 * 1024


def _jobs(priorities):
    return [
        Job("sphere", dim=8, n_particles=64, max_iter=5, seed=i,
            name=f"j{i}", priority=p)
        for i, p in enumerate(priorities)
    ]


class TestPolicyValidation:
    def test_modes_pinned(self):
        assert ADMISSION_MODES == ("degrade", "strict")

    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError):
            AdmissionPolicy(mode="yolo")

    def test_rejects_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            AdmissionPolicy(max_queue=0)
        with pytest.raises(ConfigurationError):
            AdmissionPolicy(memory_fraction=0.0)
        with pytest.raises(ConfigurationError):
            AdmissionPolicy(min_particles=0)


class TestEstimate:
    def test_scales_with_swarm_and_dim(self):
        small = Job("sphere", dim=8, n_particles=64)
        big = Job("sphere", dim=8, n_particles=128)
        assert estimate_job_bytes(big) > estimate_job_bytes(small)

    def test_fp16_storage_halves_the_arrays(self):
        fp32 = Job("sphere", dim=32, n_particles=1024)
        fp16 = fp32.with_overrides(engine_options={"half_storage": True})
        alias = fp32.with_overrides(engine="fastpso-fp16")
        assert estimate_job_bytes(fp16) < estimate_job_bytes(fp32)
        assert estimate_job_bytes(alias) == estimate_job_bytes(fp16)


class TestQueueBound:
    def test_lowest_priority_overflow_is_shed(self):
        jobs = _jobs([0, 2, 1, 2, 0])
        plan = AdmissionPolicy(max_queue=3).plan(
            jobs, streams_per_device=2, device_mem_bytes=16 * 1024 * MB
        )
        # Priority order: j1, j3 (prio 2), j2 (prio 1), then j0, j4 (prio 0).
        actions = [d.action for d in plan]
        assert actions == ["shed", "admit", "admit", "admit", "shed"]
        assert all("queue bound 3" in d.reason for d in plan if
                   d.action == "shed")
        # Decisions come back in submission order regardless of priority.
        assert [d.submit_order for d in plan] == [0, 1, 2, 3, 4]

    def test_submission_order_breaks_priority_ties(self):
        jobs = _jobs([1, 1, 1])
        plan = AdmissionPolicy(max_queue=2).plan(
            jobs, streams_per_device=1, device_mem_bytes=16 * 1024 * MB
        )
        assert [d.action for d in plan] == ["admit", "admit", "shed"]

    def test_plan_is_deterministic(self):
        jobs = _jobs([0, 2, 1, 2, 0, 1, 0])
        policy = AdmissionPolicy(max_queue=4, memory_limit_bytes=64 * MB)
        a = [d.to_row() for d in policy.plan(
            jobs, streams_per_device=2, device_mem_bytes=16 * 1024 * MB)]
        b = [d.to_row() for d in policy.plan(
            jobs, streams_per_device=2, device_mem_bytes=16 * 1024 * MB)]
        assert a == b


class TestMemoryLadder:
    def test_oversized_swarm_is_halved_until_it_fits(self):
        job = Job("sphere", dim=64, n_particles=4096, name="fat")
        limit = 2 * estimate_job_bytes(
            job.with_overrides(n_particles=1024)
        )
        plan = AdmissionPolicy(memory_limit_bytes=limit).plan(
            [job], streams_per_device=2, device_mem_bytes=16 * 1024 * MB
        )
        (decision,) = plan
        assert decision.action == "degrade"
        assert decision.job.n_particles == 1024
        assert "n_particles->1024" in decision.reason

    def test_fp16_is_the_last_rung_for_fastpso(self):
        job = Job("sphere", dim=64, n_particles=4096, name="fat")
        floor = job.with_overrides(n_particles=32)
        limit = int(
            2 * estimate_job_bytes(floor) * 0.75
        )  # fits only at half itemsize
        plan = AdmissionPolicy(memory_limit_bytes=limit).plan(
            [job], streams_per_device=2, device_mem_bytes=16 * 1024 * MB
        )
        (decision,) = plan
        assert decision.action == "degrade"
        assert decision.job.engine_options["half_storage"] is True
        assert "half_storage" in decision.reason

    def test_impossible_job_is_shed_with_the_reason(self):
        job = Job("sphere", dim=64, n_particles=4096, name="fat")
        plan = AdmissionPolicy(memory_limit_bytes=1024).plan(
            [job], streams_per_device=4, device_mem_bytes=16 * 1024 * MB
        )
        (decision,) = plan
        assert decision.action == "shed"
        assert decision.job is None
        assert "even fully degraded" in decision.reason

    def test_strict_mode_raises_with_job_context(self):
        job = Job("sphere", dim=64, n_particles=4096, name="fat")
        with pytest.raises(AdmissionError) as exc_info:
            AdmissionPolicy(mode="strict", memory_limit_bytes=1024).plan(
                [job], streams_per_device=4,
                device_mem_bytes=16 * 1024 * MB,
            )
        assert exc_info.value.to_row()["job"] == "fat"


class TestSchedulerIntegration:
    def test_shed_jobs_become_terminal_outcomes(self):
        jobs = _jobs([0, 2, 1])
        batch = BatchScheduler(max_queue=2).run(jobs)
        by_label = {o.job.label: o for o in batch.outcomes}
        assert by_label["j0"].status == "shed"
        assert by_label["j0"].result is None
        assert by_label["j0"].device_index == -1
        assert "queue bound" in by_label["j0"].admission_reason
        assert by_label["j1"].status == "completed"
        assert batch.n_shed == 1
        assert not batch.all_succeeded
        assert len(batch.admission_rows) == 3

    def test_degraded_jobs_run_reduced_and_keep_results(self):
        job = Job("sphere", dim=16, n_particles=512, max_iter=5, seed=3,
                  name="fat")
        limit = 2 * estimate_job_bytes(
            job.with_overrides(n_particles=128)
        )
        batch = BatchScheduler(
            streams_per_device=2, memory_limit_bytes=limit
        ).run([job])
        (outcome,) = batch.outcomes
        assert outcome.status == "degraded"
        assert outcome.result is not None
        assert outcome.result.n_particles == 128
        assert outcome.succeeded  # degraded still counts as usable
        assert batch.n_degraded == 1
        assert batch.all_succeeded

    def test_strict_admission_is_contained_by_run(self):
        # Strict mode raises at planning time, before any job executes —
        # but through run() with overload enabled it must never escape.
        job = Job("sphere", dim=64, n_particles=4096, name="fat")
        scheduler = BatchScheduler(
            admission=AdmissionPolicy(mode="strict", memory_limit_bytes=1024),
            streams_per_device=4,
        )
        with pytest.raises(AdmissionError):
            scheduler.run([job])

    def test_policy_object_refuses_duplicate_shorthand(self):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            BatchScheduler(
                admission=AdmissionPolicy(max_queue=2), max_queue=3
            )
