"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.config import BenchScale
from repro.core.parameters import PSOParams
from repro.core.problem import Problem
from repro.gpusim.context import make_context
from repro.gpusim.device import tesla_v100


@pytest.fixture
def v100():
    return tesla_v100()


@pytest.fixture
def ctx():
    """A fresh simulated V100 context with the caching allocator."""
    return make_context()


@pytest.fixture
def ctx_direct():
    """A context using the direct (cudaMalloc-style) allocator."""
    return make_context(caching=False)


@pytest.fixture
def sphere10():
    return Problem.from_benchmark("sphere", 10)


@pytest.fixture
def griewank8():
    return Problem.from_benchmark("griewank", 8)


@pytest.fixture
def small_params():
    return PSOParams(seed=7)


@pytest.fixture(scope="session")
def tiny_scale():
    """A miniature BenchScale so experiment drivers run in milliseconds."""
    # Timing shapes stay large enough that GPU engines amortise launch
    # overhead (the paper-shape assertions hold); error shapes stay tiny.
    return BenchScale(
        name="tiny",
        timing_particles=2000,
        timing_dim=64,
        timing_iters=40,
        sample_iters=2,
        error_particles=48,
        error_dim=12,
        error_iters=40,
        particle_sweep=(32, 64),
        dim_sweep=(8, 16),
        sweep_fixed_dim=8,
        sweep_fixed_particles=32,
        tune_particles=24,
        tune_iters=6,
    )


@pytest.fixture
def rng_np():
    return np.random.default_rng(1234)
