"""ThreadConf problem construction and the Table 5 tuning driver."""

import numpy as np
import pytest

from repro.errors import InvalidProblemError
from repro.threadconf.tgbm import TgbmSimulator
from repro.threadconf.tuner import (
    ThreadConfEvaluation,
    _decode_columns,
    make_threadconf_problem,
    tune,
)


@pytest.fixture(scope="module")
def sim():
    return TgbmSimulator("covtype")


class TestDecode:
    def test_shape(self, sim):
        p = np.random.default_rng(0).uniform(0, 1, (7, 50))
        tpb, ept = _decode_columns(p, sim.n_kernels)
        assert tpb.shape == (7, 25) and ept.shape == (7, 25)

    def test_bins_cover_all_choices(self, sim):
        p = np.linspace(0, 0.9999, 6)[:, np.newaxis] * np.ones((6, 50))
        tpb, _ = _decode_columns(p, sim.n_kernels)
        assert set(np.unique(tpb)) == set(range(6))

    def test_out_of_domain_positions_clipped(self, sim):
        p = np.full((1, 50), 99.0)
        tpb, ept = _decode_columns(p, sim.n_kernels)
        assert np.all(tpb == 5) and np.all(ept == 3)
        p = np.full((1, 50), -99.0)
        tpb, ept = _decode_columns(p, sim.n_kernels)
        assert np.all(tpb == 0) and np.all(ept == 0)

    def test_higher_dims_tile_kernels(self, sim):
        p = np.zeros((1, 100))  # 50 pairs over 25 kernels
        tpb, ept = _decode_columns(p, sim.n_kernels)
        assert tpb.shape == (1, 25)


class TestProblem:
    def test_default_is_50_dim(self, sim):
        problem = make_threadconf_problem(simulator=sim)
        assert problem.dim == 50
        assert problem.name == "threadconf"

    def test_unit_cube_bounds(self, sim):
        problem = make_threadconf_problem(simulator=sim)
        assert np.all(problem.lower_bounds == 0.0)
        assert np.all(problem.upper_bounds == 1.0)

    def test_odd_dim_rejected(self, sim):
        with pytest.raises(InvalidProblemError, match="even"):
            make_threadconf_problem(simulator=sim, dim=51)

    def test_other_even_dims_work(self, sim):
        for dim in (2, 10, 100, 200):
            problem = make_threadconf_problem(simulator=sim, dim=dim)
            p = np.random.default_rng(1).uniform(0, 1, (4, dim))
            vals = problem.evaluator.evaluate(p)
            assert vals.shape == (4,)
            assert np.all(np.isfinite(vals) | np.isinf(vals))

    def test_evaluation_matches_simulator(self, sim):
        schema = ThreadConfEvaluation(sim, 50)
        p = np.random.default_rng(2).uniform(0, 1, (5, 50))
        vals = schema.evaluate(p)
        tpb, ept = _decode_columns(p, sim.n_kernels)
        expected = sim.train_time_indices(tpb, ept)
        np.testing.assert_allclose(vals, expected)

    def test_reference_is_table_lower_bound(self, sim):
        problem = make_threadconf_problem(simulator=sim)
        assert problem.reference_value == pytest.approx(sim.best_table_time())

    def test_tiny_dim_rejected(self, sim):
        with pytest.raises(InvalidProblemError):
            ThreadConfEvaluation(sim, 1)


class TestTune:
    def test_tuned_never_worse_than_default(self, sim):
        res = tune("covtype", simulator=sim, n_particles=32, max_iter=10)
        assert res.tuned_seconds <= res.default_seconds
        assert res.speedup >= 1.0

    def test_narrow_feature_dataset_gains(self):
        """susy's contended histograms leave headroom PSO must find."""
        res = tune("susy", n_particles=96, max_iter=30)
        assert res.speedup > 1.05

    def test_result_fields(self, sim):
        res = tune("covtype", simulator=sim, n_particles=32, max_iter=10)
        assert res.dataset == "covtype"
        assert res.best_position.shape == (50,)
        assert res.iterations == 10
