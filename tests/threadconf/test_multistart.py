"""Multi-start opposition-based tuning (Kaucic-style extension)."""

import pytest

from repro.errors import InvalidProblemError
from repro.threadconf import TgbmSimulator, tune, tune_multistart


@pytest.fixture(scope="module")
def sim():
    return TgbmSimulator("susy")


class TestMultistart:
    def test_never_worse_than_single_start(self, sim):
        single = tune("susy", simulator=sim, n_particles=48, max_iter=12, seed=7)
        multi = tune_multistart(
            "susy", simulator=sim, n_starts=3, n_particles=48, max_iter=12,
            seed=7,
        )
        assert multi.tuned_seconds <= single.tuned_seconds + 1e-12

    def test_respects_default_floor(self, sim):
        multi = tune_multistart(
            "susy", simulator=sim, n_starts=2, n_particles=16, max_iter=3
        )
        assert multi.tuned_seconds <= multi.default_seconds
        assert multi.speedup >= 1.0

    def test_single_start_degenerates_to_tune(self, sim):
        a = tune("susy", simulator=sim, n_particles=32, max_iter=8, seed=5)
        b = tune_multistart(
            "susy", simulator=sim, n_starts=1, n_particles=32, max_iter=8,
            seed=5,
        )
        assert a.tuned_seconds == b.tuned_seconds

    def test_validation(self, sim):
        with pytest.raises(InvalidProblemError):
            tune_multistart("susy", simulator=sim, n_starts=0)
