"""ThunderGBM kernel catalog and configuration-dependent latency."""

import math

import pytest

from repro.gpusim.device import tesla_v100
from repro.threadconf.datasets import get_dataset
from repro.threadconf.kernels import (
    DEFAULT_EPT,
    DEFAULT_TPB,
    EPT_CHOICES,
    KERNEL_CATALOG,
    TPB_CHOICES,
    kernel_latency,
)


def find_kernel(name):
    for k in KERNEL_CATALOG:
        if k.name == name:
            return k
    raise KeyError(name)


class TestCatalog:
    def test_exactly_25_kernels(self):
        assert len(KERNEL_CATALOG) == 25

    def test_names_unique(self):
        names = [k.name for k in KERNEL_CATALOG]
        assert len(set(names)) == 25

    def test_frequencies_valid(self):
        assert {k.frequency for k in KERNEL_CATALOG} == {"once", "tree", "level"}

    def test_hot_path_has_level_kernels(self):
        level = [k for k in KERNEL_CATALOG if k.frequency == "level"]
        assert len(level) >= 8

    def test_defaults_in_choice_sets(self):
        assert DEFAULT_TPB in TPB_CHOICES
        assert DEFAULT_EPT in EPT_CHOICES

    def test_workloads_positive(self):
        ds = get_dataset("covtype")
        for k in KERNEL_CATALOG:
            assert k.workload(ds, 8) > 0

    def test_spec_scales_smem_with_block(self):
        k = find_kernel("hist_build")
        assert k.spec(256).shared_mem_per_block == 2 * k.spec(128).shared_mem_per_block


class TestContention:
    def test_histogram_kernel_contends_on_narrow_datasets(self):
        hist = find_kernel("hist_build")
        susy, covtype = get_dataset("susy"), get_dataset("covtype")
        assert hist.contention_factor(susy, 512) > hist.contention_factor(
            covtype, 512
        )

    def test_contention_grows_with_block_size(self):
        hist = find_kernel("hist_build")
        susy = get_dataset("susy")
        factors = [hist.contention_factor(susy, t) for t in TPB_CHOICES]
        assert factors == sorted(factors)

    def test_non_histogram_kernels_do_not_contend(self):
        grad = find_kernel("gradient_compute")
        assert grad.contention_factor(get_dataset("susy"), 1024) == 1.0

    def test_stride_penalty_only_for_bin_strided(self):
        gain = find_kernel("gain_compute")
        grad = find_kernel("gradient_compute")
        assert gain.stride_factor(8) > 1.0
        assert gain.stride_factor(1) == 1.0
        assert grad.stride_factor(8) == 1.0


class TestKernelLatency:
    def _k(self):
        return find_kernel("gradient_compute")

    def test_zero_workload_is_free(self):
        assert kernel_latency(self._k(), 0, 256, 1, tesla_v100()) == 0.0

    def test_latency_positive_and_finite(self):
        lat = kernel_latency(self._k(), 1_000_000, 256, 1, tesla_v100())
        assert 0 < lat < 1.0

    def test_illegal_config_returns_inf(self):
        from repro.threadconf.kernels import TgbmKernel

        heavy = TgbmKernel(
            "reg_hog", lambda ds, nodes: ds.n_samples, "level",
            registers_per_thread=128,
        )
        # 128 regs x 1024 threads = 131072 registers > the 65536 file.
        lat = kernel_latency(heavy, 1_000_000, 1024, 1, tesla_v100())
        assert math.isinf(lat)

    def test_catalog_has_legal_option_for_every_kernel(self):
        """At least one (tpb, ept) choice must be launchable per kernel."""
        device = tesla_v100()
        for k in KERNEL_CATALOG:
            latencies = [
                kernel_latency(k, 100_000, tpb, ept, device)
                for tpb in TPB_CHOICES
                for ept in EPT_CHOICES
            ]
            assert any(math.isfinite(v) for v in latencies), k.name

    def test_latency_scales_with_workload(self):
        small = kernel_latency(self._k(), 100_000, 256, 1, tesla_v100())
        large = kernel_latency(self._k(), 10_000_000, 256, 1, tesla_v100())
        assert large > small

    def test_dataset_changes_histogram_latency(self):
        hist = find_kernel("hist_build")
        base = kernel_latency(hist, 1_000_000, 512, 1, tesla_v100())
        contended = kernel_latency(
            hist, 1_000_000, 512, 1, tesla_v100(), dataset=get_dataset("susy")
        )
        assert contended > base

    def test_ept_affects_bin_strided_kernels(self):
        gain = find_kernel("gain_compute")
        fast = kernel_latency(gain, 10_000_000, 256, 1, tesla_v100())
        slow = kernel_latency(gain, 10_000_000, 256, 8, tesla_v100())
        assert slow > fast
