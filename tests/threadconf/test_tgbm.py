"""TgbmSimulator: cost tables and training-time contraction."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.threadconf.kernels import EPT_CHOICES, TPB_CHOICES
from repro.threadconf.tgbm import TgbmSimulator


@pytest.fixture(scope="module")
def sim():
    return TgbmSimulator("covtype")


class TestConstruction:
    def test_accepts_name_or_spec(self):
        from repro.threadconf.datasets import get_dataset

        a = TgbmSimulator("susy")
        b = TgbmSimulator(get_dataset("susy"))
        assert a.dataset == b.dataset

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            TgbmSimulator("covtype", n_trees=0)
        with pytest.raises(InvalidParameterError):
            TgbmSimulator("covtype", depth=0)

    def test_table_shape(self, sim):
        assert sim.cost_tables.shape == (25, len(TPB_CHOICES), len(EPT_CHOICES))

    def test_tables_read_only(self, sim):
        with pytest.raises(ValueError):
            sim.cost_tables[0, 0, 0] = 1.0


class TestTrainTime:
    def test_default_time_positive(self, sim):
        assert sim.default_train_time() > 0

    def test_default_at_least_best(self, sim):
        assert sim.default_train_time() >= sim.best_table_time()

    def test_scalar_and_batch_agree(self, sim):
        tpb, ept = sim.default_indices()
        scalar = sim.train_time_indices(tpb, ept)
        batch = sim.train_time_indices(
            np.stack([tpb, tpb]), np.stack([ept, ept])
        )
        assert batch.shape == (2,)
        assert batch[0] == pytest.approx(scalar)

    def test_more_trees_cost_more(self):
        short = TgbmSimulator("covtype", n_trees=10).default_train_time()
        long = TgbmSimulator("covtype", n_trees=40).default_train_time()
        assert long > 2 * short

    def test_deeper_trees_cost_more(self):
        shallow = TgbmSimulator("covtype", depth=3).default_train_time()
        deep = TgbmSimulator("covtype", depth=6).default_train_time()
        assert deep > shallow

    def test_bigger_dataset_costs_more(self):
        assert (
            TgbmSimulator("higgs").default_train_time()
            > TgbmSimulator("covtype").default_train_time()
        )

    def test_index_validation(self, sim):
        tpb, ept = sim.default_indices()
        with pytest.raises(InvalidParameterError):
            sim.train_time_indices(tpb[:-1], ept[:-1])
        with pytest.raises(InvalidParameterError):
            sim.train_time_indices(tpb, ept[:-1])
        bad = tpb.copy()
        bad[0] = len(TPB_CHOICES)
        with pytest.raises(InvalidParameterError):
            sim.train_time_indices(bad, ept)

    def test_describe_config(self, sim):
        desc = sim.describe_config(*sim.default_indices())
        assert len(desc) == 25
        assert all(tpb in TPB_CHOICES and ept in EPT_CHOICES for _, tpb, ept in desc)

    def test_paper_scale_training_times(self):
        """Absolute times land in the paper's Table 5 neighbourhood."""
        assert 0.4 < TgbmSimulator("covtype").default_train_time() < 2.0
        assert 5.0 < TgbmSimulator("higgs").default_train_time() < 20.0
