"""Dataset descriptors for the ThunderGBM case study."""

import pytest

from repro.errors import InvalidProblemError
from repro.threadconf.datasets import DATASETS, DatasetSpec, get_dataset


class TestPaperDatasets:
    def test_all_four_present(self):
        assert set(DATASETS) == {"covtype", "susy", "higgs", "e2006"}

    def test_table5_shapes(self):
        assert DATASETS["covtype"].n_samples == 581_012
        assert DATASETS["covtype"].n_features == 54
        assert DATASETS["susy"].n_samples == 5_000_000
        assert DATASETS["higgs"].n_samples == 11_000_000
        assert DATASETS["e2006"].n_features == 150_361

    def test_e2006_is_sparse(self):
        assert DATASETS["e2006"].density < 0.05
        assert DATASETS["covtype"].density == 1.0

    def test_nnz_respects_density(self):
        ds = DATASETS["e2006"]
        assert ds.nnz == int(ds.n_samples * ds.n_features * ds.density)
        assert ds.nnz < ds.n_samples * ds.n_features

    def test_lookup_case_insensitive(self):
        assert get_dataset("HIGGS").name == "higgs"

    def test_unknown_dataset(self):
        with pytest.raises(InvalidProblemError, match="unknown dataset"):
            get_dataset("mnist")


class TestValidation:
    def test_positive_shapes_required(self):
        with pytest.raises(InvalidProblemError):
            DatasetSpec("x", 0, 10)
        with pytest.raises(InvalidProblemError):
            DatasetSpec("x", 10, 0)

    def test_density_range(self):
        with pytest.raises(InvalidProblemError):
            DatasetSpec("x", 10, 10, density=0.0)
        with pytest.raises(InvalidProblemError):
            DatasetSpec("x", 10, 10, density=1.5)
