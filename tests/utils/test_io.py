"""Result serialization round trips and CSV writing."""

import json

import numpy as np
import pytest

from repro.core.problem import Problem
from repro.core.results import OptimizeResult
from repro.engines import FastPSOEngine
from repro.errors import BenchmarkError
from repro.io import (
    SCHEMA_VERSION,
    load_result_json,
    result_from_dict,
    result_to_dict,
    save_result_json,
    write_rows_csv,
)


@pytest.fixture
def result(small_params):
    problem = Problem.from_benchmark("sphere", 8)
    return FastPSOEngine().optimize(
        problem,
        n_particles=16,
        max_iter=10,
        params=small_params,
        record_history=True,
    )


class TestJsonRoundTrip:
    def test_dict_roundtrip_preserves_everything(self, result):
        back = result_from_dict(result_to_dict(result))
        assert back.engine == result.engine
        assert back.best_value == result.best_value
        np.testing.assert_allclose(back.best_position, result.best_position)
        assert back.step_times == result.step_times
        assert back.history.gbest_values == result.history.gbest_values

    def test_file_roundtrip(self, result, tmp_path):
        path = save_result_json(result, tmp_path / "run.json")
        back = load_result_json(path)
        assert back.elapsed_seconds == result.elapsed_seconds

    def test_payload_is_plain_json(self, result, tmp_path):
        path = save_result_json(result, tmp_path / "run.json")
        payload = json.loads(path.read_text())
        assert isinstance(payload["best_position"], list)
        assert payload["schema_version"] == SCHEMA_VERSION

    def test_peak_device_bytes_round_trips(self, result):
        assert result.peak_device_bytes > 0
        back = result_from_dict(result_to_dict(result))
        assert back.peak_device_bytes == result.peak_device_bytes

    def test_result_method_roundtrip(self, result):
        back = OptimizeResult.from_json(result.to_json())
        assert back.best_value == result.best_value
        assert back.step_times == result.step_times
        assert json.loads(result.to_json())["schema_version"] == SCHEMA_VERSION

    def test_history_optional(self, result):
        payload = result_to_dict(result)
        del payload["history"]
        back = result_from_dict(payload)
        assert back.history is None

    def test_version_mismatch_rejected(self, result):
        payload = result_to_dict(result)
        payload["schema_version"] = 99
        with pytest.raises(BenchmarkError, match="version"):
            result_from_dict(payload)

    def test_legacy_format_version_read_with_deprecation(self, result):
        payload = result_to_dict(result)
        del payload["schema_version"]
        del payload["peak_device_bytes"]
        payload["format_version"] = 1  # a payload written by a v1 build
        with pytest.deprecated_call(match="format_version"):
            back = result_from_dict(payload)
        assert back.best_value == result.best_value
        assert back.peak_device_bytes == 0

    def test_missing_version_rejected(self, result):
        payload = result_to_dict(result)
        del payload["schema_version"]
        with pytest.raises(BenchmarkError, match="version"):
            result_from_dict(payload)


class TestCsv:
    def test_write_and_readback(self, tmp_path):
        path = write_rows_csv(
            tmp_path / "grid.csv",
            ["engine", "seconds"],
            [["fastpso", 0.67], ["gpu-pso", 4.9]],
        )
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "engine,seconds"
        assert lines[1] == "fastpso,0.67"

    def test_ragged_rows_rejected(self, tmp_path):
        with pytest.raises(BenchmarkError, match="row width"):
            write_rows_csv(tmp_path / "bad.csv", ["a", "b"], [[1]])
