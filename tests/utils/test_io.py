"""Result serialization round trips, durable atomic writes, CSV writing."""

import json
import os
import stat

import numpy as np
import pytest

from repro.core.problem import Problem
from repro.core.results import OptimizeResult
from repro.engines import FastPSOEngine
from repro.errors import BenchmarkError
from repro.io import (
    SCHEMA_VERSION,
    atomic_write_bytes,
    fsync_directory,
    load_result_json,
    result_from_dict,
    result_to_dict,
    save_result_json,
    write_rows_csv,
)


@pytest.fixture
def result(small_params):
    problem = Problem.from_benchmark("sphere", 8)
    return FastPSOEngine().optimize(
        problem,
        n_particles=16,
        max_iter=10,
        params=small_params,
        record_history=True,
    )


class TestJsonRoundTrip:
    def test_dict_roundtrip_preserves_everything(self, result):
        back = result_from_dict(result_to_dict(result))
        assert back.engine == result.engine
        assert back.best_value == result.best_value
        np.testing.assert_allclose(back.best_position, result.best_position)
        assert back.step_times == result.step_times
        assert back.history.gbest_values == result.history.gbest_values

    def test_file_roundtrip(self, result, tmp_path):
        path = save_result_json(result, tmp_path / "run.json")
        back = load_result_json(path)
        assert back.elapsed_seconds == result.elapsed_seconds

    def test_payload_is_plain_json(self, result, tmp_path):
        path = save_result_json(result, tmp_path / "run.json")
        payload = json.loads(path.read_text())
        assert isinstance(payload["best_position"], list)
        assert payload["schema_version"] == SCHEMA_VERSION

    def test_peak_device_bytes_round_trips(self, result):
        assert result.peak_device_bytes > 0
        back = result_from_dict(result_to_dict(result))
        assert back.peak_device_bytes == result.peak_device_bytes

    def test_result_method_roundtrip(self, result):
        back = OptimizeResult.from_json(result.to_json())
        assert back.best_value == result.best_value
        assert back.step_times == result.step_times
        assert json.loads(result.to_json())["schema_version"] == SCHEMA_VERSION

    def test_history_optional(self, result):
        payload = result_to_dict(result)
        del payload["history"]
        back = result_from_dict(payload)
        assert back.history is None

    def test_version_mismatch_rejected(self, result):
        payload = result_to_dict(result)
        payload["schema_version"] = 99
        with pytest.raises(BenchmarkError, match="version"):
            result_from_dict(payload)

    def test_legacy_format_version_read_with_deprecation(self, result):
        payload = result_to_dict(result)
        del payload["schema_version"]
        del payload["peak_device_bytes"]
        payload["format_version"] = 1  # a payload written by a v1 build
        with pytest.deprecated_call(match="format_version"):
            back = result_from_dict(payload)
        assert back.best_value == result.best_value
        assert back.peak_device_bytes == 0

    def test_missing_version_rejected(self, result):
        payload = result_to_dict(result)
        del payload["schema_version"]
        with pytest.raises(BenchmarkError, match="version"):
            result_from_dict(payload)


class TestCsv:
    def test_write_and_readback(self, tmp_path):
        path = write_rows_csv(
            tmp_path / "grid.csv",
            ["engine", "seconds"],
            [["fastpso", 0.67], ["gpu-pso", 4.9]],
        )
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "engine,seconds"
        assert lines[1] == "fastpso,0.67"

    def test_ragged_rows_rejected(self, tmp_path):
        with pytest.raises(BenchmarkError, match="row width"):
            write_rows_csv(tmp_path / "bad.csv", ["a", "b"], [[1]])


class TestDurableAtomicWrites:
    def test_atomic_write_fsyncs_the_parent_directory(
        self, tmp_path, monkeypatch
    ):
        # os.replace makes the write atomic against process crash; power
        # loss additionally needs the parent directory's metadata on disk.
        # Record every fsynced fd and assert one of them is the parent
        # directory itself, synced *after* the payload file.
        synced = []
        real_fsync = os.fsync

        def recording_fsync(fd):
            synced.append(stat.S_ISDIR(os.fstat(fd).st_mode))
            real_fsync(fd)

        monkeypatch.setattr(os, "fsync", recording_fsync)
        path = atomic_write_bytes(tmp_path / "payload.bin", b"x" * 64)
        assert path.read_bytes() == b"x" * 64
        assert synced[0] is False  # the payload file first...
        assert True in synced[1:]  # ...then its directory fd

    def test_fsync_directory_opens_the_directory_itself(
        self, tmp_path, monkeypatch
    ):
        seen = []
        real_fsync = os.fsync

        def recording_fsync(fd):
            seen.append(os.fstat(fd).st_ino)
            real_fsync(fd)

        monkeypatch.setattr(os, "fsync", recording_fsync)
        fsync_directory(tmp_path)
        assert seen == [os.stat(tmp_path).st_ino]

    def test_fsync_directory_tolerates_unopenable_paths(self, tmp_path):
        # Network mounts that refuse O_DIRECTORY must not break writers.
        fsync_directory(tmp_path / "does-not-exist")
