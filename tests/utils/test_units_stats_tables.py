"""Units, statistics and table formatting helpers."""

import math

import pytest

from repro.utils.stats import (
    geometric_mean,
    speedup,
    summarize_repeats,
)
from repro.utils.tables import format_table
from repro.utils.units import format_bytes, format_seconds, gb_per_s


class TestUnits:
    @pytest.mark.parametrize(
        "n,expected",
        [
            (512, "512 B"),
            (4 * 1024**2, "4.00 MiB"),
            (3 * 1024**3, "3.00 GiB"),
            (-2048, "-2.00 KiB"),
        ],
    )
    def test_format_bytes(self, n, expected):
        assert format_bytes(n) == expected

    @pytest.mark.parametrize(
        "t,expected",
        [
            (90.0, "1.50 min"),
            (1.5, "1.500 s"),
            (2e-3, "2.000 ms"),
            (3e-6, "3.000 us"),
            (5e-9, "5.0 ns"),
        ],
    )
    def test_format_seconds(self, t, expected):
        assert format_seconds(t) == expected

    def test_gb_per_s(self):
        assert gb_per_s(2e9, 1.0) == pytest.approx(2.0)
        assert gb_per_s(1e9, 0.0) == 0.0


class TestStats:
    def test_summarize_basic(self):
        stats = summarize_repeats([1.0, 2.0, 3.0])
        assert stats.mean == 2.0
        assert stats.minimum == 1.0 and stats.maximum == 3.0
        assert stats.n == 3
        assert stats.std == pytest.approx(math.sqrt(2 / 3))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_repeats([])

    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        assert speedup(10.0, 0.0) == math.inf

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])


class TestFormatTable:
    def test_alignment_and_floats(self):
        text = format_table(
            ["name", "t"],
            [["fastpso", 0.6666], ["gpu-pso", 4.9]],
            float_fmt=".2f",
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "0.67" in text and "4.90" in text

    def test_title_rendered(self):
        text = format_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_none_renders_as_dash(self):
        assert "-" in format_table(["a"], [[None]])

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [[1]])

    def test_strings_not_float_formatted(self):
        text = format_table(["a"], [["99.5%"]])
        assert "99.5%" in text
