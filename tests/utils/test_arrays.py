"""Array validation helpers."""

import numpy as np
import pytest

from repro.errors import InvalidProblemError
from repro.utils.arrays import (
    as_float_matrix,
    as_float_vector,
    check_finite,
    ensure_2d,
)


class TestAsFloatVector:
    def test_list_coerced(self):
        v = as_float_vector([1, 2, 3])
        assert v.dtype == np.float64
        assert v.flags["C_CONTIGUOUS"]

    def test_scalar_broadcast_with_dim(self):
        v = as_float_vector(2.5, dim=4)
        np.testing.assert_allclose(v, [2.5] * 4)

    def test_length_enforced(self):
        with pytest.raises(InvalidProblemError, match="length 3"):
            as_float_vector([1.0, 2.0], name="bounds", dim=3)

    def test_2d_rejected(self):
        with pytest.raises(InvalidProblemError, match="1-D"):
            as_float_vector(np.zeros((2, 2)))

    def test_non_numeric_rejected(self):
        with pytest.raises(InvalidProblemError, match="not numeric"):
            as_float_vector(["a", "b"])

    def test_custom_dtype(self):
        assert as_float_vector([1], dtype=np.float32).dtype == np.float32


class TestAsFloatMatrix:
    def test_shape_enforced(self):
        with pytest.raises(InvalidProblemError, match="shape"):
            as_float_matrix(np.zeros((2, 3)), shape=(3, 2))

    def test_1d_rejected(self):
        with pytest.raises(InvalidProblemError, match="2-D"):
            as_float_matrix(np.zeros(4))

    def test_passthrough(self):
        m = as_float_matrix([[1, 2], [3, 4]])
        assert m.shape == (2, 2) and m.dtype == np.float64


class TestEnsure2d:
    def test_vector_becomes_row(self):
        assert ensure_2d(np.zeros(5)).shape == (1, 5)

    def test_matrix_unchanged(self):
        m = np.zeros((3, 4))
        assert ensure_2d(m) is m

    def test_3d_rejected(self):
        with pytest.raises(InvalidProblemError):
            ensure_2d(np.zeros((2, 2, 2)))


class TestCheckFinite:
    def test_clean_array_passes_through(self):
        a = np.ones(3)
        assert check_finite(a) is a

    def test_nan_counted_in_message(self):
        with pytest.raises(InvalidProblemError, match="2 non-finite"):
            check_finite(np.array([1.0, np.nan, np.inf]))
