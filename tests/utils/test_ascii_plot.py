"""ASCII chart rendering for the figure drivers."""

import pytest

from repro.utils.ascii_plot import bar_chart, line_chart


class TestLineChart:
    def test_renders_all_series_glyphs(self):
        text = line_chart(
            {"fastpso": [0.1, 0.1], "pyswarms": [10.0, 20.0]},
            x_labels=[2000, 5000],
        )
        assert "o=fastpso" in text
        assert "x=pyswarms" in text
        assert "2000" in text and "5000" in text

    def test_log_axis_orders_series_vertically(self):
        text = line_chart(
            {"slow": [100.0, 100.0], "fast": [0.1, 0.1]},
            x_labels=["a", "b"],
            height=8,
        )
        lines = text.splitlines()
        # first series ("slow") gets glyph 'o', second ("fast") gets 'x'
        slow_row = next(i for i, l in enumerate(lines) if "o" in l and "|" in l)
        fast_row = next(
            i for i, l in enumerate(lines) if "x" in l and "|" in l and "o" not in l
        )
        assert slow_row < fast_row  # bigger values plotted higher

    def test_mismatched_axis_rejected(self):
        with pytest.raises(ValueError, match="points"):
            line_chart({"a": [1.0]}, x_labels=[1, 2])

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="non-positive"):
            line_chart({"a": [0.0, 1.0]}, x_labels=[1, 2])

    def test_linear_axis_supported(self):
        text = line_chart(
            {"a": [0.0, 5.0]}, x_labels=[1, 2], log_y=False
        )
        assert "[s]" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart({}, x_labels=[])

    def test_title(self):
        assert line_chart(
            {"a": [1.0]}, x_labels=[1], title="My Chart"
        ).startswith("My Chart")


class TestBarChart:
    def test_longest_bar_is_maximum(self):
        text = bar_chart({"small": 1.0, "big": 10.0}, width=20)
        lines = text.splitlines()
        assert lines[1].count("#") == 20
        assert lines[0].count("#") == 2

    def test_values_annotated(self):
        text = bar_chart({"x": 0.123})
        assert "0.123" in text

    def test_log_mode(self):
        text = bar_chart({"a": 0.01, "b": 100.0}, log=True, width=30)
        a_len = text.splitlines()[0].count("#")
        b_len = text.splitlines()[1].count("#")
        assert 0 < a_len < b_len

    def test_zero_values_linear_ok(self):
        text = bar_chart({"a": 0.0, "b": 1.0})
        assert "a" in text

    def test_log_rejects_zero(self):
        with pytest.raises(ValueError):
            bar_chart({"a": 0.0}, log=True)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({"a": -1.0})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})
