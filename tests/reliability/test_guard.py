"""Swarm health guards: deterministic repair, bit-identity when healthy.

Two contracts matter.  A guarded run of a *healthy* swarm must be
bit-identical to an unguarded one (the guard only consumes RNG draws when
it intervenes), so the pinned golden trajectories stay valid.  And repairs
must be a pure function of the run's seed: the same poisoned state repaired
twice yields byte-identical arrays.
"""

from __future__ import annotations

import math
from dataclasses import replace

import numpy as np
import pytest

from repro.core.parameters import PAPER_DEFAULTS
from repro.core.problem import Problem
from repro.core.swarm import SwarmState
from repro.engines import make_engine
from repro.errors import ConfigurationError
from repro.gpusim.rng import ParallelRNG
from repro.reliability import GuardEvent, SwarmHealthGuard


@pytest.fixture
def problem():
    return Problem.from_benchmark("sphere", 4)


def _state(n=6, d=4, dtype=np.float32):
    rng = np.random.default_rng(3)
    positions = rng.uniform(-1, 1, (n, d)).astype(dtype)
    velocities = rng.uniform(-0.5, 0.5, (n, d)).astype(dtype)
    pbest_positions = positions.copy()
    pbest_values = rng.uniform(0, 10, n).astype(np.float64)
    state = SwarmState(
        positions=positions,
        velocities=velocities,
        pbest_values=pbest_values,
        pbest_positions=pbest_positions,
        gbest_value=float(pbest_values.min()),
        gbest_index=int(pbest_values.argmin()),
        gbest_position=pbest_positions[int(pbest_values.argmin())].copy(),
    )
    return state


class TestValidation:
    def test_bad_velocity_factor(self):
        with pytest.raises(ConfigurationError):
            SwarmHealthGuard(velocity_factor=0)
        with pytest.raises(ConfigurationError):
            SwarmHealthGuard(velocity_factor=float("nan"))

    def test_bad_check_every(self):
        with pytest.raises(ConfigurationError):
            SwarmHealthGuard(check_every=0)


class TestRepairs:
    def test_healthy_swarm_untouched_and_no_rng_consumed(self, problem):
        guard = SwarmHealthGuard()
        state = _state()
        rng = ParallelRNG(seed=5)
        before = rng.position
        assert not guard.inspect(state, problem, rng, iteration=0)
        assert rng.position == before
        assert guard.events == []

    def test_nan_positions_reseeded_inside_box(self, problem):
        guard = SwarmHealthGuard()
        state = _state()
        state.positions[1] = np.nan
        state.velocities[3, 0] = np.inf
        rng = ParallelRNG(seed=5)
        assert guard.inspect(state, problem, rng, iteration=2)
        assert np.isfinite(state.positions).all()
        assert np.isfinite(state.velocities).all()
        # Repaired particles sit inside the search box, velocities zeroed.
        lo, hi = problem.lower_bounds, problem.upper_bounds
        assert (state.positions[1] >= lo).all()
        assert (state.positions[1] <= hi).all()
        assert (state.velocities[1] == 0).all()
        assert (state.velocities[3] == 0).all()
        kinds = [e.kind for e in guard.events]
        assert "reseed" in kinds
        assert guard.events[0].iteration == 2
        assert guard.interventions >= 2

    def test_repair_is_deterministic(self, problem):
        def poisoned_and_repaired():
            guard = SwarmHealthGuard()
            state = _state()
            state.positions[0] = np.nan
            state.velocities[2] = np.inf
            guard.inspect(state, problem, ParallelRNG(seed=11), iteration=0)
            return state

        a, b = poisoned_and_repaired(), poisoned_and_repaired()
        assert np.array_equal(a.positions, b.positions)
        assert np.array_equal(a.velocities, b.velocities)

    def test_reseed_false_uses_box_centre(self, problem):
        guard = SwarmHealthGuard(reseed=False)
        state = _state()
        state.positions[2] = np.nan
        rng = ParallelRNG(seed=5)
        before = rng.position
        guard.inspect(state, problem, rng, iteration=0)
        assert rng.position == before  # centre repair draws nothing
        centre = (problem.lower_bounds + problem.upper_bounds) * 0.5
        assert np.allclose(state.positions[2], centre.astype(np.float32))

    def test_velocity_explosion_clamped(self, problem):
        guard = SwarmHealthGuard(velocity_factor=2.0)
        state = _state()
        state.velocities[4] = 1e6
        guard.inspect(state, problem, ParallelRNG(seed=5), iteration=0)
        limit = 2.0 * problem.domain_width
        assert (np.abs(state.velocities) <= limit.astype(np.float32)).all()
        assert any(e.kind == "clamp" for e in guard.events)

    def test_poisoned_pbest_and_gbest_recovered(self, problem):
        guard = SwarmHealthGuard()
        state = _state()
        state.pbest_values[1] = np.nan
        state.gbest_value = float("nan")
        guard.inspect(state, problem, ParallelRNG(seed=5), iteration=0)
        assert state.pbest_values[1] == np.inf
        assert math.isfinite(state.gbest_value)
        assert state.gbest_value == float(np.nanmin(state.pbest_values))
        kinds = {e.kind for e in guard.events}
        assert {"pbest_reset", "gbest_recompute"} <= kinds

    def test_check_every_skips_off_cycle_iterations(self, problem):
        guard = SwarmHealthGuard(check_every=3)
        state = _state()
        state.positions[0] = np.nan
        assert not guard.inspect(
            state, problem, ParallelRNG(seed=5), iteration=1
        )
        assert guard.inspect(state, problem, ParallelRNG(seed=5), iteration=3)

    def test_event_rows_are_json_safe(self):
        event = GuardEvent(iteration=4, kind="clamp", count=2)
        assert event.to_row() == {"iteration": 4, "kind": "clamp", "count": 2}


class TestEngineComposition:
    """Guard wired into the engine loop via ``optimize(guard=...)``."""

    @pytest.fixture
    def params(self):
        return replace(PAPER_DEFAULTS, seed=42)

    @pytest.mark.parametrize("engine_name", ["fastpso", "fastpso-seq"])
    def test_guarded_healthy_run_bit_identical(
        self, engine_name, problem, params
    ):
        golden = make_engine(engine_name).optimize(
            problem, n_particles=32, max_iter=12, params=params,
            record_history=True,
        )
        guard = SwarmHealthGuard()
        guarded = make_engine(engine_name).optimize(
            problem, n_particles=32, max_iter=12, params=params,
            record_history=True, guard=guard,
        )
        assert guard.events == []
        assert guarded.best_value == golden.best_value
        assert np.array_equal(guarded.best_position, golden.best_position)
        assert list(guarded.history.gbest_values) == list(
            golden.history.gbest_values
        )

    def test_poisoned_run_recovers_to_finite_best(self, problem, params):
        guard = SwarmHealthGuard()

        def poison(t, state):
            # NaN velocities propagate into positions at the next swarm
            # update; the guard repairs them before the evaluation after
            # that (the schema rejects NaN fitness loudly, so an
            # unrepaired swarm would crash the run).
            if t == 3:
                state.velocities[:4] = np.nan
            return False

        result = make_engine("fastpso").optimize(
            problem, n_particles=32, max_iter=12, params=params,
            callback=poison, guard=guard,
        )
        assert result.status == "completed"
        assert math.isfinite(result.best_value)
        assert any(e.kind == "reseed" for e in guard.events)

    def test_guard_reset_between_runs(self, problem, params):
        guard = SwarmHealthGuard()

        def poison(t, state):
            # The engine's own velocity clamp bounds finite spikes, so use
            # NaN, which survives clamping and forces a guard re-seed.
            if t == 1:
                state.velocities[0] = np.nan
            return False

        make_engine("fastpso").optimize(
            problem, n_particles=16, max_iter=6, params=params,
            callback=poison, guard=guard,
        )
        assert guard.events
        make_engine("fastpso").optimize(
            problem, n_particles=16, max_iter=6, params=params, guard=guard,
        )
        assert guard.events == []  # engine reset the log for the clean run
