"""Fault injection × the native fastpath tier.

A fault injector makes iteration timing data-dependent (stalls, lost
devices), which the captured-graph tiers cannot replay — so an engine
that would otherwise promote to the native one-C-call tier must demote
to eager execution, *record why* on ``graph_info["native"]``, and still
produce recovery trajectories bit-identical to a run pinned to the eager
tier from the start.
"""

from __future__ import annotations

import pytest

from repro.reliability import (
    CheckpointManager,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    run_with_recovery,
)

SPECS = (FaultSpec("device_lost", after=6),)


@pytest.fixture
def run_kwargs(sphere6, seeded_params):
    return dict(
        engine_name="fastpso",
        problem=sphere6,
        n_particles=32,
        max_iter=16,
        params=seeded_params,
        record_history=True,
    )


def _recover(run_kwargs, tmp_path, tag, *, graph):
    options = {} if graph else {"graph": False}
    return run_with_recovery(
        engine_options=options,
        policy=RetryPolicy(max_attempts=3, backoff_seconds=0.5),
        injector=FaultInjector(list(SPECS)),
        checkpoint=CheckpointManager(tmp_path / tag, every=5),
        **run_kwargs,
    )


class TestNativeDemotion:
    def test_faulted_engine_demotes_with_recorded_reason(self, run_kwargs):
        report = run_with_recovery(
            policy=RetryPolicy(max_attempts=2, backoff_seconds=0.5),
            injector=FaultInjector(
                [FaultSpec("stall", after=3, stall_seconds=0.5)]
            ),
            **run_kwargs,
        )
        assert report.succeeded
        for engine in report.engines:
            info = getattr(engine, "graph_info", None)
            if info is None:  # the CPU-fallback attempt has no graph tier
                continue
            assert info["mode"] == "eager"
            assert info["eager_reason"] == "fault-injector"
            # The native slot carries the demotion reason too — never a
            # silent None when the fastpath was ruled out.
            assert info["native"] == "fault-injector"
            assert info["native_replays"] == 0

    def test_drill_trajectories_match_eager_tier(
        self, run_kwargs, tmp_path, assert_bit_identical
    ):
        graphed = _recover(run_kwargs, tmp_path, "graphed", graph=True)
        eager = _recover(run_kwargs, tmp_path, "eager", graph=False)
        assert graphed.succeeded and eager.succeeded
        assert graphed.attempts == eager.attempts
        assert_bit_identical(graphed.result, eager.result)
        info = graphed.engines[0].graph_info
        assert info["native"] == "fault-injector"

    def test_fault_plan_drill_is_audit_trailed(self, sphere6, seeded_params):
        # The reference drill used by the batch/serve fault lanes: every
        # targeted engine must leave the same audit trail.
        plan = FaultPlan.drill(4, seed=11)
        hit = 0
        for index in range(4):
            specs = plan.specs_for(index)
            if not specs:
                continue
            hit += 1
            report = run_with_recovery(
                engine_name="fastpso",
                problem=sphere6,
                n_particles=32,
                max_iter=12,
                params=seeded_params,
                policy=RetryPolicy(max_attempts=3, backoff_seconds=0.5),
                injector=plan.injector_for(index),
            )
            first = report.engines[0]
            assert first.graph_info["eager_reason"] == "fault-injector"
            assert first.graph_info["native"] == "fault-injector"
        assert hit > 0, "the drill must target at least one job"
