"""Fault taxonomy: deterministic injection into the simulated substrate."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core.parameters import PAPER_DEFAULTS
from repro.core.problem import Problem
from repro.engines import make_engine
from repro.errors import (
    DeviceLostError,
    DeviceOutOfMemoryError,
    InvalidParameterError,
    LaunchFailedError,
    MemoryCorruptionError,
)
from repro.reliability import FAULT_KINDS, FaultInjector, FaultPlan, FaultSpec


class TestFaultSpec:
    def test_kinds_are_the_documented_taxonomy(self):
        assert set(FAULT_KINDS) == {
            "launch_failure",
            "device_lost",
            "stall",
            "corrupt",
            "oom",
        }

    @pytest.mark.parametrize(
        "bad",
        [
            {"kind": "meteor_strike"},
            {"kind": "launch_failure", "after": 0},
            {"kind": "stall"},  # stall_seconds defaults to 0: invalid
            {"kind": "corrupt", "buffer": "registers"},
            {"kind": "corrupt", "elems": 0},
        ],
    )
    def test_invalid_specs_rejected(self, bad):
        with pytest.raises(InvalidParameterError):
            FaultSpec(**bad)

    def test_dict_round_trip(self):
        specs = [
            FaultSpec("launch_failure", after=3),
            FaultSpec("stall", after=2, stall_seconds=1e-3),
            FaultSpec("corrupt", after=5, buffer="velocities", elems=7),
            FaultSpec("oom", after=4),
        ]
        assert [FaultSpec.from_dict(s.to_dict()) for s in specs] == specs


class TestInjectorOrdinals:
    def test_launch_failure_fires_at_exact_ordinal_once(self):
        inj = FaultInjector([FaultSpec("launch_failure", after=3)])
        inj.on_launch("k")
        inj.on_launch("k")
        with pytest.raises(LaunchFailedError, match="launch #3"):
            inj.on_launch("k")
        # One-shot: the 4th launch (and any later) succeeds.
        for _ in range(10):
            inj.on_launch("k")
        assert inj.pending == ()

    def test_device_lost_is_sticky_until_new_device(self):
        inj = FaultInjector([FaultSpec("device_lost", after=1)])
        with pytest.raises(DeviceLostError, match="injected device loss"):
            inj.on_launch("k")
        assert inj.device_lost
        with pytest.raises(DeviceLostError, match="rejected"):
            inj.on_launch("k")
        with pytest.raises(DeviceLostError, match="rejected"):
            inj.on_alloc(1024)
        inj.on_new_device()
        inj.on_launch("k")  # healthy again
        inj.on_alloc(1024)

    def test_stall_returns_simulated_seconds(self):
        inj = FaultInjector([FaultSpec("stall", after=2, stall_seconds=0.25)])
        assert inj.on_launch("k") == 0.0
        assert inj.on_launch("k") == 0.25
        assert inj.on_launch("k") == 0.0
        assert inj.stalled_seconds == 0.25

    def test_oom_fires_on_alloc_counter_not_launches(self):
        inj = FaultInjector([FaultSpec("oom", after=2)])
        for _ in range(5):
            inj.on_launch("k")  # launches never trigger an alloc fault
        inj.on_alloc(100)
        with pytest.raises(DeviceOutOfMemoryError):
            inj.on_alloc(100)

    def test_corrupt_damages_only_the_named_buffer(self):
        inj = FaultInjector(
            [FaultSpec("corrupt", after=1, buffer="velocities", elems=3)],
            seed=5,
        )
        pos = np.zeros((8, 4), dtype=np.float32)
        vel = np.zeros((8, 4), dtype=np.float32)
        inj.watch("positions", pos)
        inj.watch("velocities", vel)
        inj.on_launch("k")
        assert not np.isnan(pos).any()
        assert 1 <= int(np.isnan(vel).sum()) <= 3  # modulo may collide
        with pytest.raises(MemoryCorruptionError, match="velocities"):
            inj.check_integrity()

    def test_corrupt_indices_are_seed_deterministic(self):
        damaged = []
        for _ in range(2):
            inj = FaultInjector(
                [FaultSpec("corrupt", after=1, elems=4)], seed=9
            )
            buf = np.zeros(64, dtype=np.float32)
            inj.watch("positions", buf)
            inj.on_launch("k")
            damaged.append(np.flatnonzero(np.isnan(buf)).tolist())
        assert damaged[0] == damaged[1]

    def test_counters_persist_across_device_renewal(self):
        """Retry convergence: a replayed prefix must not re-hit a fired fault."""
        inj = FaultInjector([FaultSpec("launch_failure", after=2)])
        inj.on_launch("k")
        with pytest.raises(LaunchFailedError):
            inj.on_launch("k")
        inj.on_new_device()  # fresh engine for the retry attempt
        for _ in range(4):
            inj.on_launch("k")  # ordinals 3..6: no repeat at "the 2nd launch"


class TestEngineIntegration:
    def run(self, injector, engine_name="fastpso", iters=8):
        engine = make_engine(engine_name)
        engine.attach_fault_injector(injector)
        return engine.optimize(
            Problem.from_benchmark("sphere", 6),
            n_particles=32,
            max_iter=iters,
            params=replace(PAPER_DEFAULTS, seed=42),
        )

    def test_launch_failure_surfaces_from_optimize(self):
        with pytest.raises(LaunchFailedError, match="injected launch failure"):
            self.run(FaultInjector([FaultSpec("launch_failure", after=4)]))

    def test_oom_surfaces_from_optimize(self):
        with pytest.raises(DeviceOutOfMemoryError):
            self.run(FaultInjector([FaultSpec("oom", after=3)]))

    def test_corruption_caught_by_integrity_guard(self):
        # Velocities are never evaluated, so the end-of-iteration integrity
        # guard is always what detects the damage (NaN positions could also
        # surface earlier as an EvaluationError, depending on the ordinal).
        with pytest.raises(MemoryCorruptionError, match="integrity check"):
            self.run(
                FaultInjector(
                    [FaultSpec("corrupt", after=10, buffer="velocities")],
                    seed=3,
                )
            )

    def test_stall_slows_but_does_not_change_numerics(self):
        clean = self.run(FaultInjector([]))
        stalled = self.run(
            FaultInjector([FaultSpec("stall", after=5, stall_seconds=0.125)])
        )
        assert stalled.best_value == clean.best_value
        assert np.array_equal(stalled.best_position, clean.best_position)
        assert stalled.elapsed_seconds == pytest.approx(
            clean.elapsed_seconds + 0.125, rel=1e-9
        )

    def test_multi_gpu_engine_wires_all_workers(self):
        engine = make_engine("mgpu", n_devices=2)
        inj = FaultInjector([FaultSpec("launch_failure", after=6)])
        engine.attach_fault_injector(inj)
        with pytest.raises(LaunchFailedError):
            engine.optimize(
                Problem.from_benchmark("sphere", 4),
                n_particles=16,
                max_iter=6,
                params=replace(PAPER_DEFAULTS, seed=1),
            )


class TestFaultPlan:
    def test_lookup_by_index_then_label(self):
        plan = FaultPlan(
            {
                0: [FaultSpec("oom", after=1)],
                "night-job": [FaultSpec("stall", after=1, stall_seconds=1.0)],
            }
        )
        assert plan.specs_for(0)[0].kind == "oom"
        assert plan.specs_for(3, "night-job")[0].kind == "stall"
        assert plan.specs_for(3, "other") == ()
        assert plan.injector_for(3) is None  # fault-free: no injector at all

    def test_injector_seed_namespaced_by_job_index(self):
        plan = FaultPlan(
            {0: [FaultSpec("oom")], 1: [FaultSpec("oom")]}, seed=100
        )
        assert plan.injector_for(0).seed == 100
        assert plan.injector_for(1).seed == 101

    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan.drill(8, seed=3)
        path = tmp_path / "plan.json"
        import json

        path.write_text(json.dumps(plan.to_dict()))
        loaded = FaultPlan.from_json_file(path)
        assert loaded.to_dict() == plan.to_dict()

    def test_drill_covers_the_required_mix(self):
        """The ISSUE acceptance drill: >=1 device-lost, >=2 launch failures,
        >=1 OOM, across a 32-job batch."""
        plan = FaultPlan.drill(32, seed=7)
        kinds = [
            s["kind"]
            for specs in plan.to_dict()["jobs"].values()
            for s in specs
        ]
        assert kinds.count("device_lost") >= 1
        assert kinds.count("launch_failure") >= 2
        assert kinds.count("oom") >= 1
        assert kinds.count("stall") >= 1
        assert kinds.count("corrupt") >= 1

    def test_drill_is_deterministic(self):
        assert (
            FaultPlan.drill(32, seed=7).to_dict()
            == FaultPlan.drill(32, seed=7).to_dict()
        )
