"""Bit-identical resume: the tentpole contract, property-tested.

A run interrupted at *any* checkpoint and resumed must produce exactly the
result of the uninterrupted run — gbest trajectory, final position, the
simulated clock, peak memory.  Exact float equality throughout; any drift
(RNG position, allocator pool state, stop-criterion counters, schedule
progress) shows up as a hard failure here.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.parameters import PAPER_DEFAULTS
from repro.core.problem import Problem
from repro.core.stopping import StallStop
from repro.engines import make_engine
from repro.errors import CheckpointError, InvalidParameterError
from repro.reliability import CheckpointManager, read_snapshot, resume

ENGINES = ["fastpso", "fastpso-seq"]


def interrupted_then_resumed(engine_name, tmp_path, *, k, iters=16, seed=42):
    """Checkpoint every iteration, 'crash' after k, resume from disk."""
    params = replace(PAPER_DEFAULTS, seed=seed)
    problem = Problem.from_benchmark("sphere", 6)
    manager = CheckpointManager(tmp_path, every=1, keep=iters)

    crashed = {}

    def crash_after(t, state):
        if t + 1 == k:
            crashed["at"] = t
            return True  # stop the run right after iteration k's checkpoint
        return False

    make_engine(engine_name).optimize(
        problem,
        n_particles=32,
        max_iter=iters,
        params=params,
        record_history=True,
        callback=crash_after,
        checkpoint=manager,
    )
    # The callback stops the run *before* iteration k's own checkpoint is
    # written (a stopping iteration never checkpoints), so the newest file
    # on disk is k-1 ... unless k-1 < 1. Resume from whatever is newest —
    # exactly what a real crash recovery does.
    snap_path = manager.latest_path()
    assert snap_path is not None
    return resume(snap_path)


class TestBitIdenticalResume:
    @pytest.mark.parametrize("engine_name", ENGINES)
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(k=st.integers(min_value=2, max_value=15))
    def test_any_interruption_point(
        self, engine_name, k, tmp_path_factory, run_clean, assert_bit_identical
    ):
        tmp_path = tmp_path_factory.mktemp(f"resume-{engine_name}-{k}")
        golden = run_clean(
            engine_name,
            Problem.from_benchmark("sphere", 6),
            replace(PAPER_DEFAULTS, seed=42),
            n=32,
            iters=16,
        )
        resumed = interrupted_then_resumed(engine_name, tmp_path, k=k)
        assert_bit_identical(resumed, golden)

    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_every_retained_checkpoint_resumes_identically(
        self, engine_name, tmp_path, run_clean, assert_bit_identical
    ):
        """Exhaustive sweep: every snapshot of one run is a valid resume point."""
        params = replace(PAPER_DEFAULTS, seed=7)
        problem = Problem.from_benchmark("griewank", 5)
        golden = run_clean(engine_name, problem, params, n=24, iters=12)
        manager = CheckpointManager(tmp_path, every=1, keep=12)
        checkpointed = make_engine(engine_name).optimize(
            problem,
            n_particles=24,
            max_iter=12,
            params=params,
            record_history=True,
            checkpoint=manager,
        )
        assert_bit_identical(checkpointed, golden)  # checkpointing is free
        files = manager.checkpoints()
        assert len(files) == 11  # iterations 1..11; 12 is the complete run
        for path in files:
            assert_bit_identical(resume(path), golden)

    def test_resume_from_directory_picks_newest(
        self, tmp_path, run_clean, assert_bit_identical
    ):
        golden = run_clean(
            "fastpso",
            Problem.from_benchmark("sphere", 6),
            replace(PAPER_DEFAULTS, seed=42),
            n=32,
            iters=16,
        )
        interrupted_then_resumed("fastpso", tmp_path, k=9)
        assert_bit_identical(resume(tmp_path), golden)

    def test_resume_skips_corrupt_newest_in_directory(
        self, tmp_path, run_clean, assert_bit_identical
    ):
        golden = run_clean(
            "fastpso",
            Problem.from_benchmark("sphere", 6),
            replace(PAPER_DEFAULTS, seed=42),
            n=32,
            iters=16,
        )
        interrupted_then_resumed("fastpso", tmp_path, k=9)
        newest = sorted(tmp_path.glob("*.ckpt"))[-1]
        newest.write_bytes(b"torn write simulation")
        assert_bit_identical(resume(tmp_path), golden)

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no readable checkpoint"):
            resume(tmp_path)


class TestVariantConfigResume:
    """Checkpoint/resume parity for the non-default engine configurations.

    ``fuse_update=True`` and ``half_storage=True`` change the kernel table
    and storage dtype, so their resumed runs exercise different replay
    plans and allocator shapes than the pinned default config.
    """

    @pytest.mark.parametrize("engine_name", ["fastpso-fused", "fastpso-fp16"])
    @pytest.mark.parametrize("k", [3, 9])
    def test_variant_resume_bit_identical(
        self, engine_name, k, tmp_path, run_clean, assert_bit_identical
    ):
        golden = run_clean(
            engine_name,
            Problem.from_benchmark("sphere", 6),
            replace(PAPER_DEFAULTS, seed=42),
            n=32,
            iters=16,
        )
        resumed = interrupted_then_resumed(engine_name, tmp_path, k=k)
        assert_bit_identical(resumed, golden)


class TestGraphRecaptureOnRestore:
    def test_restored_run_recaptures_graph(
        self, tmp_path, run_clean, assert_bit_identical
    ):
        """A mid-run restore must re-capture the launch graph, not replay
        bindings from the pre-interruption run."""
        params = replace(PAPER_DEFAULTS, seed=42)
        problem = Problem.from_benchmark("sphere", 6)
        golden = run_clean("fastpso", problem, params, n=32, iters=16)
        resumed = interrupted_then_resumed("fastpso", tmp_path, k=9)
        assert_bit_identical(resumed, golden)

        # Drive the restore explicitly to inspect the runner lifecycle.
        snap = read_snapshot(
            CheckpointManager(tmp_path, every=1, keep=16).latest_path()
        )
        engine = make_engine("fastpso")
        result = engine.optimize(
            problem,
            n_particles=32,
            max_iter=16,
            params=params,
            record_history=True,
            restore=snap,
        )
        info = engine.graph_info
        assert info["mode"] == "graph"
        # Warm-up at the restored iteration, capture on the next one: the
        # graph is built from post-restore state, never carried over.
        assert info["captured_at"] == snap.iteration + 1
        assert info["replays"] == 16 - snap.iteration - 3
        assert_bit_identical(result, golden)


class TestStopCriterionState:
    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_stall_counters_survive_resume(self, engine_name, tmp_path):
        """A StallStop's patience window must not reset at the resume point."""
        params = replace(PAPER_DEFAULTS, seed=11)
        problem = Problem.from_benchmark("sphere", 4)
        stop = StallStop(patience=3, min_delta=1e30)  # stalls immediately
        golden = make_engine(engine_name).optimize(
            problem, n_particles=16, max_iter=50, params=params, stop=stop
        )
        assert golden.iterations < 50  # the stop actually fired

        manager = CheckpointManager(tmp_path, every=1, keep=50)
        stop2 = StallStop(patience=3, min_delta=1e30)
        make_engine(engine_name).optimize(
            problem,
            n_particles=16,
            max_iter=50,
            params=params,
            stop=stop2,
            checkpoint=manager,
        )
        snap = read_snapshot(manager.checkpoints()[0])
        resumed = resume(manager.checkpoints()[0])
        assert snap.stop_state is not None
        assert resumed.iterations == golden.iterations
        assert resumed.best_value == golden.best_value

    def test_resume_requires_matching_stop_spec(self, tmp_path):
        params = replace(PAPER_DEFAULTS, seed=11)
        problem = Problem.from_benchmark("sphere", 4)
        manager = CheckpointManager(tmp_path, every=2, keep=5)
        make_engine("fastpso").optimize(
            problem,
            n_particles=16,
            max_iter=10,
            params=params,
            stop=StallStop(patience=5, min_delta=0.0),
            checkpoint=manager,
        )
        snap = read_snapshot(manager.latest_path())
        engine = make_engine("fastpso")
        with pytest.raises(CheckpointError, match="make_stop"):
            engine.optimize(
                problem,
                n_particles=16,
                max_iter=10,
                params=params,
                stop=StallStop(patience=9, min_delta=0.0),  # different spec
                restore=snap,
            )


class TestResumeValidation:
    @pytest.fixture
    def snap_path(self, tmp_path):
        params = replace(PAPER_DEFAULTS, seed=5)
        manager = CheckpointManager(tmp_path, every=2, keep=5)
        make_engine("fastpso").optimize(
            Problem.from_benchmark("sphere", 6),
            n_particles=32,
            max_iter=10,
            params=params,
            checkpoint=manager,
        )
        return manager.latest_path()

    @pytest.mark.parametrize(
        "override, message",
        [
            ({"n_particles": 16}, "32 particles"),
            ({"max_iter": 99}, "budget is 10"),
            ({"record_history": True}, "record_history"),
        ],
    )
    def test_shape_mismatches_rejected(self, snap_path, override, message):
        snap = read_snapshot(snap_path)
        kwargs = dict(
            n_particles=snap.n_particles,
            max_iter=snap.max_iter,
            params=snap.make_params(),
            record_history=False,
        )
        kwargs.update(override)
        with pytest.raises(CheckpointError, match=message):
            make_engine("fastpso").optimize(
                snap.make_problem(), restore=snap, **kwargs
            )

    def test_params_mismatch_rejected(self, snap_path):
        snap = read_snapshot(snap_path)
        with pytest.raises(CheckpointError, match="make_params"):
            make_engine("fastpso").optimize(
                snap.make_problem(),
                n_particles=snap.n_particles,
                max_iter=snap.max_iter,
                params=replace(snap.make_params(), seed=999),
                restore=snap,
            )

    def test_cross_engine_resume_is_allowed_and_identical(
        self, snap_path, run_clean, assert_bit_identical
    ):
        """fastpso <-> fastpso-seq share numerics, so resume crosses engines.

        This is the mechanism behind CPU failover: a GPU run's checkpoint
        restored into the sequential engine continues the same trajectory.
        """
        gpu = resume(snap_path)
        cpu = resume(snap_path, engine="fastpso-seq")
        assert cpu.best_value == gpu.best_value
        assert list(cpu.best_position) == list(gpu.best_position)
        assert cpu.iterations == gpu.iterations

    def test_multi_gpu_engine_rejects_checkpointing(self, tmp_path):
        engine = make_engine("mgpu", n_devices=2)
        with pytest.raises(InvalidParameterError, match="multi-GPU"):
            engine.optimize(
                Problem.from_benchmark("sphere", 4),
                n_particles=8,
                max_iter=4,
                checkpoint=CheckpointManager(tmp_path),
            )

    def test_facade_minimize_and_resume(self, tmp_path, assert_bit_identical):
        from repro import FastPSO

        golden = FastPSO(n_particles=32, seed=42).minimize(
            "sphere", dim=6, max_iter=16, record_history=True
        )
        manager = CheckpointManager(tmp_path, every=1, keep=16)
        checkpointed = FastPSO(n_particles=32, seed=42).minimize(
            "sphere", dim=6, max_iter=16, record_history=True,
            checkpoint=manager,
        )
        assert_bit_identical(checkpointed, golden)
        assert_bit_identical(FastPSO.resume(tmp_path), golden)
