"""Hard-crash recovery: SIGKILL a checkpointing run, resume bit-identically.

The subprocess (``repro.reliability._crashdemo``) sleeps real wall-clock
time each iteration while checkpointing every iteration.  The parent waits
for checkpoints to appear on disk, SIGKILLs the child mid-run — no atexit,
no cleanup, the torn-write scenario atomic writes exist for — then resumes
in-process and checks the trajectory against a golden uninterrupted run.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from dataclasses import replace
from pathlib import Path

import pytest

from repro.core.parameters import PAPER_DEFAULTS
from repro.core.problem import Problem
from repro.engines import make_engine
from repro.reliability import resume

_SEED = 123
_ITERS = 60


def _spawn_and_kill(ckpt_dir: Path, *, min_checkpoints=3, deadline_s=60.0):
    """Run the crash demo until checkpoints exist, then SIGKILL it."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.reliability._crashdemo",
            "--dir",
            str(ckpt_dir),
            "--iters",
            str(_ITERS),
            "--seed",
            str(_SEED),
            "--sleep",
            "0.02",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )
    try:
        deadline = time.monotonic() + deadline_s
        while time.monotonic() < deadline:
            if len(list(ckpt_dir.glob("*.ckpt"))) >= min_checkpoints:
                break
            if proc.poll() is not None:
                stderr = proc.stderr.read().decode(errors="replace")
                pytest.fail(
                    f"crash demo exited early ({proc.returncode}): {stderr}"
                )
            time.sleep(0.01)
        else:
            pytest.fail("crash demo produced no checkpoints before deadline")
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:  # pragma: no cover - safety net
            proc.kill()
            proc.wait(timeout=30)
        proc.stderr.close()
    assert proc.returncode == -signal.SIGKILL


def test_sigkilled_run_resumes_bit_identically(tmp_path):
    golden = make_engine("fastpso").optimize(
        Problem.from_benchmark("sphere", 8),
        n_particles=64,
        max_iter=_ITERS,
        params=replace(PAPER_DEFAULTS, seed=_SEED),
        record_history=True,
    )

    ckpt_dir = tmp_path / "ckpts"
    ckpt_dir.mkdir()
    _spawn_and_kill(ckpt_dir)

    files = sorted(ckpt_dir.glob("*.ckpt"))
    assert files, "SIGKILL left no checkpoints behind"
    # Every surviving file is complete (atomic writes: no torn headers).
    for path in files:
        assert path.read_bytes().startswith(b"FASTPSO-CKPT 1 ")

    resumed = resume(ckpt_dir)
    assert resumed.iterations == _ITERS
    assert resumed.best_value == golden.best_value
    assert list(resumed.best_position) == list(golden.best_position)
    assert list(resumed.history.gbest_values) == list(
        golden.history.gbest_values
    )
    assert resumed.elapsed_seconds == golden.elapsed_seconds
