"""Retry/failover semantics: fresh devices, resume, CPU degradation."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.parameters import PAPER_DEFAULTS
from repro.core.problem import Problem
from repro.errors import InvalidParameterError
from repro.reliability import (
    CheckpointManager,
    FaultInjector,
    FaultSpec,
    RetryPolicy,
    run_with_recovery,
)


@pytest.fixture
def run_kwargs(sphere6, seeded_params):
    return dict(
        engine_name="fastpso",
        problem=sphere6,
        n_particles=32,
        max_iter=16,
        params=seeded_params,
        record_history=True,
    )


class TestRetryPolicy:
    def test_backoff_is_exponential(self):
        policy = RetryPolicy(backoff_seconds=0.5, backoff_factor=3.0)
        assert [policy.backoff_for(i) for i in range(3)] == [0.5, 1.5, 4.5]

    @pytest.mark.parametrize(
        "bad",
        [
            {"max_attempts": 0},
            {"backoff_seconds": -1.0},
            {"backoff_factor": 0.5},
            {"retry_on": ()},
        ],
    )
    def test_invalid_policies_rejected(self, bad):
        with pytest.raises(InvalidParameterError):
            RetryPolicy(**bad)


class TestRecovery:
    def test_clean_run_is_a_single_attempt(self, run_kwargs):
        report = run_with_recovery(**run_kwargs)
        assert report.succeeded
        assert report.attempts == 1
        assert report.retries == 0
        assert report.errors == ()
        assert report.recovery_seconds == 0.0
        assert not report.fell_back_to_cpu

    def test_transient_launch_failure_recovers_bit_identically(
        self, run_kwargs, run_clean, assert_bit_identical
    ):
        golden = run_clean(
            "fastpso", run_kwargs["problem"], run_kwargs["params"],
            n=32, iters=16,
        )
        report = run_with_recovery(
            **run_kwargs,
            injector=FaultInjector([FaultSpec("launch_failure", after=9)]),
        )
        assert report.succeeded
        assert report.attempts == 2
        assert "injected launch failure" in report.errors[0]
        assert_bit_identical(report.result, golden)
        # The failed attempt's work was thrown away and one backoff served.
        assert report.lost_seconds > 0.0
        assert report.backoff_seconds == RetryPolicy().backoff_for(0)

    @pytest.mark.parametrize(
        "spec",
        [
            FaultSpec("device_lost", after=12),
            FaultSpec("oom", after=9),
            FaultSpec("corrupt", after=14, buffer="velocities"),
        ],
        ids=["device_lost", "oom", "corrupt"],
    )
    def test_every_fault_kind_recovers_bit_identically(
        self, spec, run_kwargs, run_clean, assert_bit_identical
    ):
        golden = run_clean(
            "fastpso", run_kwargs["problem"], run_kwargs["params"],
            n=32, iters=16,
        )
        report = run_with_recovery(
            **run_kwargs, injector=FaultInjector([spec], seed=2)
        )
        assert report.succeeded
        assert report.attempts == 2
        assert_bit_identical(report.result, golden)

    def test_sticky_device_loss_cleared_by_fresh_device(self, run_kwargs):
        injector = FaultInjector([FaultSpec("device_lost", after=3)])
        report = run_with_recovery(**run_kwargs, injector=injector)
        assert report.succeeded
        assert not injector.device_lost  # the replacement device is healthy

    def test_checkpoint_resume_bounds_lost_work(
        self, tmp_path, run_kwargs, run_clean, assert_bit_identical
    ):
        golden = run_clean(
            "fastpso", run_kwargs["problem"], run_kwargs["params"],
            n=32, iters=16,
        )
        # Without checkpoints the whole failed attempt is lost...
        bare = run_with_recovery(
            **run_kwargs,
            injector=FaultInjector([FaultSpec("device_lost", after=40)]),
        )
        # ... with per-iteration checkpoints only the tail since the last
        # snapshot is.
        managed = run_with_recovery(
            **run_kwargs,
            injector=FaultInjector([FaultSpec("device_lost", after=40)]),
            checkpoint=CheckpointManager(tmp_path, every=1, keep=3),
        )
        assert bare.succeeded and managed.succeeded
        assert managed.lost_seconds < bare.lost_seconds
        assert_bit_identical(managed.result, golden)
        assert_bit_identical(bare.result, golden)

    def test_exhaustion_returns_failed_report_without_raising(
        self, run_kwargs
    ):
        hammer = FaultInjector(
            [FaultSpec("launch_failure", after=k) for k in (2, 4, 6)]
        )
        report = run_with_recovery(
            **run_kwargs,
            policy=RetryPolicy(max_attempts=3, cpu_fallback=None),
            injector=hammer,
        )
        assert not report.succeeded
        assert report.result is None
        assert report.attempts == 3
        assert len(report.errors) == 3
        # Two inter-attempt backoffs (none after the final failure).
        assert report.backoff_seconds == sum(
            RetryPolicy().backoff_for(i) for i in range(2)
        )

    def test_cpu_fallback_produces_identical_trajectory(
        self, run_kwargs, run_clean
    ):
        """Final-attempt degradation to fastpso-seq: same numerics contract."""
        cpu_golden = run_clean(
            "fastpso-seq", run_kwargs["problem"], run_kwargs["params"],
            n=32, iters=16,
        )
        gpu_golden = run_clean(
            "fastpso", run_kwargs["problem"], run_kwargs["params"],
            n=32, iters=16,
        )
        hammer = FaultInjector(
            [FaultSpec("launch_failure", after=k) for k in (2, 4)]
        )
        report = run_with_recovery(
            **run_kwargs,
            policy=RetryPolicy(max_attempts=3, cpu_fallback="fastpso-seq"),
            injector=hammer,
        )
        assert report.succeeded
        assert report.fell_back_to_cpu
        assert report.result.engine == "fastpso-seq"
        assert report.result.best_value == cpu_golden.best_value
        assert report.result.best_value == gpu_golden.best_value
        assert list(report.result.history.gbest_values) == list(
            gpu_golden.history.gbest_values
        )

    def test_non_transient_errors_propagate(self, run_kwargs):
        kwargs = dict(run_kwargs, n_particles=-5)
        with pytest.raises(InvalidParameterError):
            run_with_recovery(**kwargs)
