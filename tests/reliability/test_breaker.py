"""Circuit breakers: state machine, fleet placement, determinism.

All transitions are driven by *simulated* time passed in by the caller, so
a drill with a fixed seed reproduces the exact same trip/close event log —
the property the overload drill pins batch-wide.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.parameters import PAPER_DEFAULTS
from repro.core.problem import Problem
from repro.errors import ConfigurationError
from repro.reliability import BreakerPolicy, CircuitBreaker, FleetHealth
from repro.reliability.faults import FaultPlan, FaultSpec
from repro.reliability.retry import RetryPolicy, run_with_recovery


class TestPolicyValidation:
    def test_rejects_bad_threshold(self):
        with pytest.raises(ConfigurationError):
            BreakerPolicy(failure_threshold=0)

    def test_rejects_bad_cooldown(self):
        with pytest.raises(ConfigurationError):
            BreakerPolicy(cooldown_seconds=0)


class TestStateMachine:
    @pytest.fixture
    def breaker(self):
        return CircuitBreaker(
            BreakerPolicy(failure_threshold=2, cooldown_seconds=10.0)
        )

    def test_trips_after_threshold_consecutive_failures(self, breaker):
        assert breaker.allows(0.0)
        assert not breaker.record_failure(1.0)
        assert breaker.state == "closed"
        assert breaker.record_failure(2.0)  # second failure trips it
        assert breaker.state == "open"
        assert not breaker.allows(5.0)  # still cooling down

    def test_success_resets_the_failure_count(self, breaker):
        breaker.record_failure(1.0)
        breaker.record_success(2.0)
        assert not breaker.record_failure(3.0)  # count restarted
        assert breaker.state == "closed"

    def test_cooldown_elapses_into_half_open(self, breaker):
        breaker.record_failure(1.0)
        breaker.record_failure(2.0)
        assert not breaker.allows(11.9)
        assert breaker.allows(12.0)  # 10s cooldown since trip at t=2
        assert breaker.state == "half_open"

    def test_probe_success_closes(self, breaker):
        breaker.record_failure(1.0)
        breaker.record_failure(2.0)
        breaker.allows(20.0)
        assert breaker.record_success(20.5)  # closing transition reported
        assert breaker.state == "closed"

    def test_probe_failure_reopens_with_fresh_cooldown(self, breaker):
        breaker.record_failure(1.0)
        breaker.record_failure(2.0)
        breaker.allows(20.0)
        assert breaker.record_failure(20.5)
        assert breaker.state == "open"
        assert not breaker.allows(25.0)
        assert breaker.allows(30.5)  # cooldown restarted at 20.5


class TestFleetHealth:
    def test_prefers_the_requested_device(self):
        fleet = FleetHealth(3)
        assert fleet.pick_device(now=0.0, preferred=2) == 2
        assert fleet.pick_device(now=0.0, preferred=None) == 0

    def test_open_devices_are_skipped(self):
        fleet = FleetHealth(2, BreakerPolicy(failure_threshold=1))
        fleet.record_failure(0, now=1.0)
        assert fleet.open_devices() == (0,)
        assert fleet.pick_device(now=2.0, preferred=0) == 1

    def test_none_when_every_breaker_is_open(self):
        fleet = FleetHealth(2, BreakerPolicy(failure_threshold=1))
        fleet.record_failure(0, now=1.0)
        fleet.record_failure(1, now=2.0)
        assert fleet.pick_device(now=3.0) is None

    def test_event_log_is_ordinal_numbered_and_deterministic(self):
        def drive():
            fleet = FleetHealth(
                2, BreakerPolicy(failure_threshold=1, cooldown_seconds=5.0)
            )
            fleet.record_failure(0, now=1.0)
            fleet.record_failure(1, now=2.0)
            fleet.pick_device(now=8.0)  # device 0 goes half-open
            fleet.record_success(0, now=8.5)
            return fleet.to_rows()

        rows = drive()
        assert rows == drive()
        assert [r["ordinal"] for r in rows] == [0, 1, 2]
        assert [r["event"] for r in rows] == ["open", "open", "close"]
        assert rows[2] == {
            "ordinal": 2, "device": 0, "event": "close", "sim_seconds": 8.5,
        }


class TestRecoveryIntegration:
    """run_with_recovery consults the fleet for per-attempt placement."""

    @pytest.fixture
    def problem(self):
        return Problem.from_benchmark("sphere", 4)

    @pytest.fixture
    def params(self):
        return replace(PAPER_DEFAULTS, seed=21)

    def test_failures_feed_the_breaker_and_work_moves_on(
        self, problem, params
    ):
        # Device loss is sticky per attempt: the injector re-fires it for
        # every GPU attempt, so only the CPU fallback can finish the run.
        plan = FaultPlan({
            0: (
                FaultSpec(kind="device_lost", after=2),
                FaultSpec(kind="device_lost", after=3),
                FaultSpec(kind="device_lost", after=4),
            )
        })
        health = FleetHealth(2, BreakerPolicy(failure_threshold=1))
        report = run_with_recovery(
            engine_name="fastpso",
            problem=problem,
            n_particles=16,
            max_iter=8,
            params=params,
            policy=RetryPolicy(max_attempts=3, cpu_fallback="fastpso-seq"),
            injector=plan.injector_for(0, "jobA"),
            health=health,
            job_label="jobA",
            preferred_device=0,
        )
        assert report.result is not None
        assert report.fell_back_to_cpu
        assert report.device_index is None  # final attempt ran on the CPU
        assert health.open_devices()  # the failing device tripped
        assert any(row["event"] == "open" for row in health.to_rows())

    def test_all_breakers_open_without_fallback_fails_closed(
        self, problem, params
    ):
        health = FleetHealth(1, BreakerPolicy(failure_threshold=1))
        health.record_failure(0, now=0.0)  # pre-tripped fleet
        report = run_with_recovery(
            engine_name="fastpso",
            problem=problem,
            n_particles=16,
            max_iter=8,
            params=params,
            policy=RetryPolicy(max_attempts=2, cpu_fallback=None),
            health=health,
            job_label="jobB",
        )
        assert report.result is None
        assert report.error_rows
        assert report.error_rows[-1]["error"] == "CircuitOpenError"
        assert report.error_rows[-1]["job"] == "jobB"

    def test_all_breakers_open_degrades_to_cpu(self, problem, params):
        health = FleetHealth(1, BreakerPolicy(failure_threshold=1))
        health.record_failure(0, now=0.0)
        report = run_with_recovery(
            engine_name="fastpso",
            problem=problem,
            n_particles=16,
            max_iter=8,
            params=params,
            policy=RetryPolicy(max_attempts=2, cpu_fallback="fastpso-seq"),
            health=health,
        )
        assert report.result is not None
        assert report.fell_back_to_cpu
        assert report.attempts == 1
