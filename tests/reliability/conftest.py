"""Shared fixtures for the reliability suite."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core.parameters import PAPER_DEFAULTS
from repro.core.problem import Problem
from repro.engines import make_engine


@pytest.fixture
def sphere6():
    return Problem.from_benchmark("sphere", 6)


@pytest.fixture
def seeded_params():
    return replace(PAPER_DEFAULTS, seed=42)


@pytest.fixture
def run_clean():
    """A golden uninterrupted run for bit-identity comparisons."""

    def _run(engine_name, problem, params, *, n=32, iters=20, **kwargs):
        engine = make_engine(engine_name)
        return engine.optimize(
            problem,
            n_particles=n,
            max_iter=iters,
            params=params,
            record_history=True,
            **kwargs,
        )

    return _run


@pytest.fixture
def assert_bit_identical():
    """Every observable of two results matches exactly (no tolerances)."""

    def _assert(a, b):
        assert a.best_value == b.best_value
        assert np.array_equal(a.best_position, b.best_position)
        assert a.iterations == b.iterations
        assert a.error == b.error
        assert a.elapsed_seconds == b.elapsed_seconds
        assert a.setup_seconds == b.setup_seconds
        assert a.iteration_seconds == b.iteration_seconds
        assert a.step_times == b.step_times
        assert a.peak_device_bytes == b.peak_device_bytes
        if a.history is None or b.history is None:
            assert a.history is None and b.history is None
        else:
            assert list(a.history.gbest_values) == list(b.history.gbest_values)
            assert list(a.history.mean_pbest_values) == list(
                b.history.mean_pbest_values
            )

    return _assert
