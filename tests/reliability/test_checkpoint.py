"""Checkpoint file format, CRC validation, retention and fallback."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core.problem import Problem
from repro.engines import make_engine
from repro.errors import CheckpointError, InvalidParameterError
from repro.reliability import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointManager,
    read_snapshot,
    write_snapshot,
)
from repro.reliability.snapshot import ensure_capturable


def checkpointed_run(tmp_path, *, every=2, keep=10, iters=10, seed=42):
    """Run a small checkpointed optimization; return its manager."""
    from repro.core.parameters import PAPER_DEFAULTS

    manager = CheckpointManager(tmp_path, every=every, keep=keep)
    make_engine("fastpso").optimize(
        Problem.from_benchmark("sphere", 6),
        n_particles=32,
        max_iter=iters,
        params=replace(PAPER_DEFAULTS, seed=seed),
        checkpoint=manager,
    )
    return manager


class TestFileFormat:
    def test_header_line_identifies_the_file(self, tmp_path):
        manager = checkpointed_run(tmp_path)
        raw = manager.latest_path().read_bytes()
        header = raw.split(b"\n", 1)[0].decode("ascii").split()
        assert header[0] == "FASTPSO-CKPT"
        assert int(header[1]) == CHECKPOINT_SCHEMA_VERSION
        assert len(header[2]) == 8  # crc32 hex
        assert int(header[3]) == len(raw.split(b"\n", 1)[1])

    def test_round_trip_is_bit_exact(self, tmp_path):
        manager = checkpointed_run(tmp_path)
        snap = read_snapshot(manager.latest_path())
        again = tmp_path / "copy.ckpt"
        write_snapshot(snap, again)
        snap2 = read_snapshot(again)
        for name in ("positions", "velocities", "pbest_positions", "pbest_values"):
            assert np.array_equal(
                getattr(snap.swarm, name), getattr(snap2.swarm, name)
            )
            assert getattr(snap.swarm, name).dtype == getattr(
                snap2.swarm, name
            ).dtype
        assert snap.swarm.gbest_value == snap2.swarm.gbest_value
        assert snap.rng_state == snap2.rng_state
        assert snap.clock_state == snap2.clock_state
        assert snap.params_spec == snap2.params_spec

    def test_crc_mismatch_detected(self, tmp_path):
        manager = checkpointed_run(tmp_path)
        path = manager.latest_path()
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF  # flip a payload bit
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="CRC mismatch"):
            read_snapshot(path)

    def test_truncation_detected(self, tmp_path):
        manager = checkpointed_run(tmp_path)
        path = manager.latest_path()
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 16])
        with pytest.raises(CheckpointError, match="truncated"):
            read_snapshot(path)

    def test_wrong_magic_rejected(self, tmp_path):
        path = tmp_path / "x.ckpt"
        path.write_bytes(b"NOT-A-CKPT 1 00000000 2\n{}")
        with pytest.raises(CheckpointError, match="not a FASTPSO-CKPT"):
            read_snapshot(path)

    def test_future_version_rejected(self, tmp_path):
        manager = checkpointed_run(tmp_path)
        path = manager.latest_path()
        header, payload = path.read_bytes().split(b"\n", 1)
        parts = header.split()
        parts[1] = b"999"
        path.write_bytes(b" ".join(parts) + b"\n" + payload)
        with pytest.raises(CheckpointError, match="version 999 unsupported"):
            read_snapshot(path)

    def test_missing_file_is_a_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            read_snapshot(tmp_path / "nope.ckpt")


class TestManagerPolicy:
    def test_cadence(self, tmp_path):
        manager = CheckpointManager(tmp_path, every=5)
        assert not manager.due(0)
        assert not manager.due(4)
        assert manager.due(5)
        assert not manager.due(6)
        assert manager.due(10)

    def test_rolling_retention_keeps_newest(self, tmp_path):
        manager = checkpointed_run(tmp_path, every=2, keep=3, iters=20)
        files = manager.checkpoints()
        assert len(files) == 3
        # every=2 over 20 iterations minus the final one (nothing to resume
        # from a complete run) -> newest retained are 14, 16, 18.
        assert [f.name for f in files] == [
            "run-iter0000014.ckpt",
            "run-iter0000016.ckpt",
            "run-iter0000018.ckpt",
        ]

    def test_no_checkpoint_at_final_iteration(self, tmp_path):
        manager = checkpointed_run(tmp_path, every=5, iters=10)
        names = [f.name for f in manager.checkpoints()]
        assert names == ["run-iter0000005.ckpt"]  # iteration 10 == complete

    def test_load_latest_skips_corrupt_newest(self, tmp_path):
        manager = checkpointed_run(tmp_path, every=2, keep=4, iters=12)
        newest = manager.latest_path()
        newest.write_bytes(b"garbage")
        snap = manager.load_latest()
        assert snap is not None
        assert snap.iteration == 8  # fell back past the damaged iter-10 file
        assert newest.exists()  # corrupt file left in place for post-mortems

    def test_load_latest_empty_directory(self, tmp_path):
        assert CheckpointManager(tmp_path).load_latest() is None

    def test_labels_partition_a_shared_directory(self, tmp_path):
        a = CheckpointManager(tmp_path, label="a")
        b = CheckpointManager(tmp_path, label="b")
        manager = checkpointed_run(tmp_path / "src", every=2)
        snap = read_snapshot(manager.latest_path())
        a.save(snap)
        assert [p.name for p in a.checkpoints()] == [
            f"a-iter{snap.iteration:07d}.ckpt"
        ]
        assert b.checkpoints() == []

    @pytest.mark.parametrize("bad", [{"every": 0}, {"keep": 0}, {"label": ""}])
    def test_invalid_policy_rejected(self, tmp_path, bad):
        with pytest.raises(InvalidParameterError):
            CheckpointManager(tmp_path, **bad)


class TestCapturability:
    def test_benchmark_problem_is_capturable(self):
        ensure_capturable(Problem.from_benchmark("ackley", 4))

    def test_custom_objective_rejected_at_entry(self, tmp_path):
        problem = Problem.from_callable(
            lambda x: float(np.sum(x * x)), 4, (-1.0, 1.0)
        )
        with pytest.raises(CheckpointError, match="benchmark problems"):
            make_engine("fastpso").optimize(
                problem,
                n_particles=8,
                max_iter=4,
                checkpoint=CheckpointManager(tmp_path),
            )
        # Failing at entry means no partial run and no stray files.
        assert list(tmp_path.glob("*.ckpt")) == []

    def test_engine_accepts_plain_directory_path(self, tmp_path):
        from repro.core.parameters import PAPER_DEFAULTS

        make_engine("fastpso").optimize(
            Problem.from_benchmark("sphere", 4),
            n_particles=8,
            max_iter=12,
            params=replace(PAPER_DEFAULTS, seed=3),
            checkpoint=tmp_path / "auto",  # auto-wrapped in a manager
        )
        assert list((tmp_path / "auto").glob("*.ckpt"))
