"""Fleet-level failover: the 32-job fault drill from the ISSUE acceptance.

A mixed 32-job batch under ``FaultPlan.drill`` (two launch failures, a
device loss, an OOM, a stall and a corruption spread over the fleet) must
complete with every job succeeded under the default retry policy, produce
results bit-identical to the fault-free batch, and surface the recovery
overhead in the scheduler's summary and fleet profile.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch import BatchScheduler, mixed_workload
from repro.reliability import FaultPlan, RetryPolicy


@pytest.fixture(scope="module")
def drill_batches(tmp_path_factory):
    jobs = mixed_workload(32, base_seed=7)
    clean = BatchScheduler(n_devices=2, streams_per_device=4).run(jobs)
    drilled = BatchScheduler(
        n_devices=2,
        streams_per_device=4,
        retry=RetryPolicy(),
        faults=FaultPlan.drill(32, seed=7),
        checkpoint_dir=tmp_path_factory.mktemp("drill-ckpts"),
        checkpoint_every=5,
    ).run(jobs)
    return clean, drilled


class TestFaultDrill:
    def test_all_jobs_succeed_under_default_retry(self, drill_batches):
        _, drilled = drill_batches
        assert drilled.all_succeeded
        assert drilled.n_failed == 0
        assert drilled.failure_table() == ""

    def test_the_required_faults_actually_fired(self, drill_batches):
        _, drilled = drill_batches
        # Jobs that needed retries are visible in the outcomes; the drill
        # spreads 2 launch failures, 1 device loss, 1 OOM (plus a stall and
        # a corruption, which may or may not force a retry depending on the
        # target job's engine).
        retried = [o for o in drilled.outcomes if o.attempts > 1]
        errors = " | ".join(o.error for o in retried)
        assert drilled.total_retries >= 4
        assert "launch failure" in errors
        assert "device loss" in errors

    def test_results_bit_identical_to_fault_free_batch(self, drill_batches):
        clean, drilled = drill_batches
        assert len(clean.outcomes) == len(drilled.outcomes)
        for a, b in zip(clean.outcomes, drilled.outcomes):
            assert a.job.label == b.job.label
            assert b.result is not None
            assert a.result.best_value == b.result.best_value
            assert np.array_equal(
                a.result.best_position, b.result.best_position
            )
            assert a.result.iterations == b.result.iterations
            if a.result.history is not None:
                assert list(a.result.history.gbest_values) == list(
                    b.result.history.gbest_values
                )

    def test_recovery_overhead_in_summary_and_profile(self, drill_batches):
        _, drilled = drill_batches
        assert drilled.recovery_seconds > 0.0
        assert drilled.lost_seconds >= 0.0
        assert drilled.backoff_seconds > 0.0
        assert "recovery:" in drilled.summary()
        sections = drilled.fleet_profile.sections
        assert "retry_backoff" in sections
        assert "lost_work" in sections

    def test_retries_stretch_the_lanes_not_the_numerics(self, drill_batches):
        clean, drilled = drill_batches
        # Recovery overhead occupies lane time, so the drilled batch can
        # never finish faster than the clean one.
        assert drilled.makespan_seconds >= clean.makespan_seconds
        retried = [o for o in drilled.outcomes if o.attempts > 1]
        for outcome in retried:
            assert outcome.lane_seconds > outcome.solo_seconds

    def test_to_dict_carries_the_recovery_trail(self, drill_batches):
        _, drilled = drill_batches
        payload = drilled.to_dict()
        assert payload["n_failed"] == 0
        assert payload["total_retries"] == drilled.total_retries
        assert payload["recovery_seconds"] == pytest.approx(
            drilled.recovery_seconds
        )
        retried = [j for j in payload["jobs"] if j["attempts"] > 1]
        assert retried and all(j["error"] for j in retried)


class TestExhaustedFleet:
    def test_failed_jobs_reported_not_raised(self):
        jobs = mixed_workload(8, base_seed=7)
        batch = BatchScheduler(
            streams_per_device=2,
            retry=RetryPolicy(max_attempts=1, cpu_fallback=None),
            faults=FaultPlan.drill(8, seed=7),
        ).run(jobs)
        assert not batch.all_succeeded
        assert batch.n_failed >= 1
        table = batch.failure_table()
        assert "attempts" in table and "last error" in table
        assert "FAILED" in batch.summary()
        failed = [j for j in batch.to_dict()["jobs"] if j["status"] == "failed"]
        assert failed and all(j["result"] is None for j in failed)

    def test_reliability_off_keeps_legacy_raise_behavior(self):
        """Without retry/faults/checkpoints, engine errors still propagate."""
        from repro.batch import Job
        from repro.errors import InvalidParameterError

        # One particle cannot be split over the mgpu engine's two devices.
        with pytest.raises(InvalidParameterError):
            BatchScheduler().run(
                [Job("sphere", dim=4, engine="mgpu", n_particles=1)]
            )
